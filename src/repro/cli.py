"""``repro-assemble``: command-line front end for the PPA-assembler.

Three input modes, mirroring how the library is exercised elsewhere:

* ``--dataset NAME`` materialises one of the paper's Table I dataset
  profiles (scaled via ``--scale``);
* ``--fastq PATH`` assembles reads from a FASTQ file;
* ``--simulate LENGTH`` generates a random genome of the given length
  and simulates reads from it (quickstart mode, no input files needed).

The assembly runs on the execution backend chosen with ``--backend``
(serial simulation by default, ``multiprocess`` for real parallelism)
and prints a compact report: per-stage summaries, contig statistics and
wall-clock / simulated-cluster seconds.  ``--output`` additionally
writes the contigs as FASTA.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .assembler import AssemblyConfig, PPAAssembler
from .assembler.config import LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV
from .dna.datasets import get_profile
from .dna.io_fastq import parse_fastq
from .dna.simulator import simulate_dataset
from .errors import ReproError
from .quality.stats import n50_value
from .runtime import available_backends


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assemble",
        description="De novo genome assembly with the PPA-assembler reproduction.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset",
        metavar="NAME",
        help="Table I dataset profile to simulate (e.g. hc2, hcx, hc14, bi)",
    )
    source.add_argument(
        "--fastq",
        metavar="PATH",
        help="assemble reads from a FASTQ file",
    )
    source.add_argument(
        "--simulate",
        metavar="LENGTH",
        type=int,
        help="simulate reads from a random genome of this length",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="genome-length multiplier for --dataset profiles (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed for --simulate (default 0)"
    )
    parser.add_argument("-k", type=int, default=21, help="k-mer size (odd, default 21)")
    parser.add_argument(
        "--coverage-threshold",
        type=int,
        default=1,
        help="drop (k+1)-mers observed at most this many times (default 1)",
    )
    parser.add_argument(
        "--labeling",
        choices=[LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV],
        default=LABELING_LIST_RANKING,
        help="contig-labeling method (default list_ranking)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend for the Pregel stages (default serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="number of Pregel workers (default 4)"
    )
    parser.add_argument(
        "--no-vectorized",
        action="store_true",
        help="disable the NumPy batch kernels and run the scalar "
        "reference path (results are bit-identical, just slower)",
    )
    parser.add_argument(
        "--min-contig",
        type=int,
        default=0,
        help="only count/report contigs at least this long (default 0)",
    )
    parser.add_argument(
        "--output",
        metavar="FASTA",
        help="write the assembled contigs to this FASTA file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final statistics line"
    )
    return parser


def _load_reads(args: argparse.Namespace):
    if args.dataset is not None:
        profile = get_profile(args.dataset, scale=args.scale)
        _reference, reads = profile.generate()
        return reads, f"dataset {profile.name} (scale {args.scale})"
    if args.fastq is not None:
        reads = list(parse_fastq(args.fastq))
        return reads, f"fastq {args.fastq}"
    _genome, reads = simulate_dataset(genome_length=args.simulate, seed=args.seed)
    return reads, f"simulated genome of {args.simulate} bp (seed {args.seed})"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        config = AssemblyConfig(
            k=args.k,
            coverage_threshold=args.coverage_threshold,
            labeling_method=args.labeling,
            num_workers=args.workers,
            backend=args.backend,
            use_vectorized=not args.no_vectorized,
        )
    except ReproError as exc:
        parser.error(str(exc))

    try:
        reads, source = _load_reads(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro-assemble: failed to load reads: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(f"assembling {len(reads)} reads from {source}")
        print(
            f"  k={config.k} workers={config.num_workers} "
            f"backend={config.backend} labeling={config.labeling_method}"
        )

    started = time.perf_counter()
    try:
        result = PPAAssembler(config).assemble(reads)
    except ReproError as exc:
        print(f"repro-assemble: assembly failed: {exc}", file=sys.stderr)
        return 1
    wall_seconds = time.perf_counter() - started

    if not args.quiet:
        for stage in result.stages:
            detail = " ".join(f"{key}={value}" for key, value in stage.detail.items())
            print(f"  [{stage.name}] {detail}")

    contigs = result.contigs_longer_than(args.min_contig)
    lengths = [len(contig) for contig in contigs]
    print(
        f"contigs={len(contigs)} total_bp={sum(lengths)} "
        f"largest={max(lengths, default=0)} n50={n50_value(lengths)} "
        f"wall_seconds={wall_seconds:.2f} "
        f"simulated_seconds={result.estimated_seconds():.2f}"
    )

    if args.output:
        written = result.write_fasta(args.output)
        if not args.quiet:
            print(f"wrote {written} contigs to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    sys.exit(main())
