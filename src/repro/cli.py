"""``repro-assemble``: command-line front end for the PPA-assembler.

Four input modes, mirroring how the library is exercised elsewhere:

* ``--dataset NAME`` materialises one of the paper's Table I dataset
  profiles (scaled via ``--scale``);
* ``--fastq PATH`` assembles reads from a FASTQ file;
* ``--fastq-pair R1 R2`` assembles a paired-end library from two
  parallel FASTQ files (the ``_1.fastq`` / ``_2.fastq`` convention);
* ``--simulate LENGTH`` generates a random genome of the given length
  and simulates reads from it (quickstart mode, no input files needed).

``--scaffold`` runs the paired-end scaffolding stage after assembly;
it needs pairing information, so it combines with ``--fastq-pair`` or
with the simulating modes (which then draw read *pairs* using the
``--insert-size``/``--insert-std`` model).

The assembly runs on the execution backend chosen with ``--backend``
(serial simulation by default, ``multiprocess`` for real parallelism)
and prints a compact report: per-stage summaries, contig statistics and
wall-clock / simulated-cluster seconds.  ``--output`` additionally
writes the contigs as FASTA, ``--scaffold-output`` the scaffolds.

The assembly is a declared workflow (:mod:`repro.workflow`):
``--list-stages`` prints its DAG without running anything,
``--checkpoint-dir`` persists the workflow state after every stage, and
``--resume`` continues a checkpointed run from its last completed stage
(bit-identical to an uninterrupted run).

When the first argument is a service verb (``serve``, ``submit``,
``status``, ``result``, ``cancel``, ``jobs``), the CLI instead drives
the durable assembly job service (:mod:`repro.service`) — see
:mod:`repro.service.cli`.  ``repro-assemble report`` renders a
self-contained HTML ops report from a run's telemetry artefacts
(``trace.json`` / ``timeline.jsonl`` / ``metrics.json``) — see
:mod:`repro.telemetry.report`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import ExitStack
from typing import Dict, List, Optional

from . import __version__
from .assembler import AssemblyConfig, PPAAssembler, build_assembly_workflow
from .assembler.config import LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV
from .errors import ReproError
from .quality.stats import n50_value
from .pregel.partitioner import PARTITIONER_NAMES
from .runtime import available_backends
from .runtime.base import MESSAGE_PLANES
from .workflow import WorkflowHooks


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assemble",
        description="De novo genome assembly with the PPA-assembler reproduction.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-assemble {__version__}",
        help="print the package version and exit",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        metavar="NAME",
        help="Table I dataset profile to simulate (e.g. hc2, hcx, hc14, bi)",
    )
    source.add_argument(
        "--fastq",
        metavar="PATH",
        help="assemble reads from a FASTQ file",
    )
    source.add_argument(
        "--fastq-pair",
        nargs=2,
        metavar=("R1", "R2"),
        help="assemble a paired-end library from two parallel FASTQ files",
    )
    source.add_argument(
        "--simulate",
        metavar="LENGTH",
        type=int,
        help="simulate reads from a random genome of this length",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="genome-length multiplier for --dataset profiles (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed for --simulate (default 0)"
    )
    parser.add_argument("-k", type=int, default=21, help="k-mer size (odd, default 21)")
    parser.add_argument(
        "--coverage-threshold",
        type=int,
        default=1,
        help="drop (k+1)-mers observed at most this many times (default 1)",
    )
    parser.add_argument(
        "--labeling",
        choices=[LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV],
        default=LABELING_LIST_RANKING,
        help="contig-labeling method (default list_ranking)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend for the Pregel stages (default serial)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="number of Pregel workers (default 4)"
    )
    parser.add_argument(
        "--message-plane",
        choices=MESSAGE_PLANES,
        default="shm",
        help="multiprocess data plane: 'shm' exchanges message batches "
        "through shared-memory arenas (default; auto-falls back to "
        "'queue' when /dev/shm is unusable), 'queue' always pickles "
        "batches through the queues; ignored by the serial backend",
    )
    parser.add_argument(
        "--partitioner",
        choices=PARTITIONER_NAMES,
        default="hash",
        help="vertex-to-worker strategy: 'hash' (default) or "
        "'prefix_range' (k-mer-prefix ranges that keep most DBG edges "
        "worker-local, reducing cross-worker messages)",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="bound the assembly's working memory: reads stream in "
        "bounded chunks and idle graph partitions / message batches "
        "spill to disk once the budget is exceeded (results stay "
        "bit-identical; default unlimited)",
    )
    parser.add_argument(
        "--no-vectorized",
        action="store_true",
        help="disable the NumPy batch kernels and run the scalar "
        "reference path (results are bit-identical, just slower)",
    )
    parser.add_argument(
        "--scaffold",
        action="store_true",
        help="run paired-end scaffolding after assembly (needs --fastq-pair, "
        "or a simulating mode which then draws read pairs)",
    )
    parser.add_argument(
        "--insert-size",
        type=float,
        default=None,
        help="paired-end insert size mean: sizes simulated pairs "
        "(default 500) and overrides the scaffolder's own estimate "
        "(default: estimate from same-contig pairs)",
    )
    parser.add_argument(
        "--insert-std",
        type=float,
        default=50.0,
        help="paired-end insert size standard deviation for simulated "
        "pairs (default 50)",
    )
    parser.add_argument(
        "--min-links",
        type=int,
        default=2,
        help="read pairs required to support a scaffold link (default 2)",
    )
    parser.add_argument(
        "--scaffold-output",
        metavar="FASTA",
        help="write the scaffolds to this FASTA file (implies --scaffold)",
    )
    parser.add_argument(
        "--min-contig",
        type=int,
        default=0,
        help="only count/report contigs at least this long (default 0)",
    )
    parser.add_argument(
        "--output",
        metavar="FASTA",
        help="write the assembled contigs to this FASTA file",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the run's quality summary (contig/scaffold N50, NG50 "
        "when the reference length is known, per-stage timings) as JSON — "
        "the same payload the job service's result endpoint returns",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist the workflow state to this directory after every "
        "stage, so an interrupted assembly can be continued with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the last completed stage checkpointed in "
        "--checkpoint-dir (starts fresh when no checkpoint exists yet)",
    )
    parser.add_argument(
        "--list-stages",
        action="store_true",
        help="print the assembly workflow DAG for this configuration and "
        "exit without assembling anything",
    )
    telemetry = parser.add_argument_group(
        "telemetry", "structured logging and tracing (see docs/observability.md)"
    )
    telemetry.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="root log level (debug/info/warning/error); configures "
        "structured logging for the run",
    )
    telemetry.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines (one object per line, with "
        "trace/span ids when tracing is active)",
    )
    telemetry.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace the assembly and write the span tree (workflow -> "
        "stages -> supersteps -> workers) to this JSON file",
    )
    telemetry.add_argument(
        "--timeline-out",
        metavar="PATH",
        help="record a run timeline (periodic RSS/CPU samples plus "
        "superstep and stage boundary events, merged across worker "
        "processes) and write it as JSONL to this file",
    )
    telemetry.add_argument(
        "--profile",
        metavar="PATH",
        help="profile the run with cProfile (per stage, and per worker "
        "process on the multiprocess backend) and write merged "
        "collapsed stacks (flamegraph.pl / speedscope compatible) to "
        "this file; --metrics-json additionally gains a hotspot table",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final statistics line"
    )
    return parser


def _load_input(args: argparse.Namespace):
    """Materialise the input via the job-service spec machinery.

    Returns the :class:`~repro.service.spec.MaterializedInput` —
    reads, optional pairs, the reference length when the mode knows it,
    and a printable description.  Building a :class:`JobSpec` from the
    flags keeps the one-shot CLI and a submitted service job on one
    materialisation path: the same flags always produce the same reads
    on both surfaces.
    """
    from .service.spec import JobSpec, input_block_from_args

    scaffold = bool(args.scaffold or args.scaffold_output)
    spec = JobSpec(
        input=input_block_from_args(args),
        config={"scaffold": True} if scaffold else {},
    )
    return spec.materialize()


#: Mirror of :data:`repro.service.cli.SERVICE_VERBS`, duplicated as a
#: literal so a plain one-shot run (or --help) never imports the
#: serving stack (sqlite3, http.server, urllib); a test asserts the
#: two tuples stay in sync.
_SERVICE_VERBS = ("serve", "submit", "status", "result", "cancel", "jobs")


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SERVICE_VERBS:
        from .service.cli import service_main

        return service_main(argv)
    if argv and argv[0] == "report":
        return _report_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    scaffold = bool(args.scaffold or args.scaffold_output)
    if scaffold and args.fastq is not None:
        parser.error(
            "--scaffold needs pairing information: use --fastq-pair (or a "
            "simulating mode, which then draws read pairs)"
        )
    has_source = any(
        value is not None
        for value in (args.dataset, args.fastq, args.fastq_pair, args.simulate)
    )
    if not has_source and not args.list_stages:
        parser.error(
            "one of --dataset, --fastq, --fastq-pair, --simulate is required "
            "(only --list-stages works without an input)"
        )
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume needs --checkpoint-dir")

    if args.log_json or args.log_level is not None:
        from .telemetry import configure_logging

        try:
            configure_logging(args.log_level or "info", json_lines=args.log_json)
        except ValueError as exc:
            parser.error(str(exc))

    try:
        config = AssemblyConfig(
            k=args.k,
            coverage_threshold=args.coverage_threshold,
            labeling_method=args.labeling,
            num_workers=args.workers,
            backend=args.backend,
            message_plane=args.message_plane,
            partitioner=args.partitioner,
            use_vectorized=not args.no_vectorized,
            scaffold=scaffold,
            scaffold_min_links=args.min_links,
            scaffold_insert_size=args.insert_size,
            memory_budget_mb=args.memory_budget_mb,
        )
    except ReproError as exc:
        parser.error(str(exc))

    if args.list_stages:
        print(build_assembly_workflow(config).describe())
        return 0

    try:
        material = _load_input(args)
    except (OSError, ValueError, ReproError) as exc:
        print(f"repro-assemble: failed to load reads: {exc}", file=sys.stderr)
        return 1
    reads, pairs = material.reads, material.pairs
    reference_length = material.reference_length

    if not args.quiet:
        print(f"assembling {len(reads)} reads from {material.description}")
        print(
            f"  k={config.k} workers={config.num_workers} "
            f"backend={config.backend} labeling={config.labeling_method} "
            f"plane={config.message_plane} partitioner={config.partitioner}"
        )

    stage_seconds: Dict[str, float] = {}
    hooks = None
    verbose_checkpoints = not args.quiet and args.checkpoint_dir
    if verbose_checkpoints or args.metrics_json:
        hooks = WorkflowHooks(
            on_stage_end=lambda stage, index, total, seconds: stage_seconds.update(
                {stage.name: stage_seconds.get(stage.name, 0.0) + seconds}
            ),
            on_stage_skipped=(
                (
                    lambda stage, index, total: print(
                        f"  resume: skipping completed stage {index + 1}/{total} {stage.name}"
                    )
                )
                if verbose_checkpoints
                else None
            ),
            on_checkpoint=(
                (
                    lambda stage, path: print(
                        f"  checkpointed {stage.name} -> {path}"
                    )
                )
                if verbose_checkpoints
                else None
            ),
        )

    # --trace-out installs a real tracer for the run and opens a root
    # span; the tree is written even when the assembly fails, so an
    # aborted run can still be profiled.  --timeline-out and --profile
    # follow the same pattern with the timeline recorder (plus a
    # background resource sampler) and the cProfile collector.
    trace_stack = ExitStack()
    root_span = None
    timeline = None
    sampler = None
    profiler = None
    if args.trace_out:
        from .telemetry import Tracer
        from .telemetry import span as telemetry_span
        from .telemetry import use_tracer

        trace_stack.enter_context(use_tracer(Tracer()))
        root_span = trace_stack.enter_context(
            telemetry_span(
                "assemble",
                reads=len(reads),
                k=config.k,
                backend=config.backend,
                workers=config.num_workers,
            )
        )
    if args.timeline_out:
        from .telemetry import ResourceSampler, TimelineRecorder, use_timeline

        timeline = TimelineRecorder()
        trace_stack.enter_context(use_timeline(timeline))
        sampler = ResourceSampler(timeline).start()
    if args.profile:
        from .telemetry import ProfileCollector, use_profiler

        profiler = ProfileCollector()
        trace_stack.enter_context(use_profiler(profiler))

    from .store.spill import process_spill_stats

    spill_before = process_spill_stats().snapshot()
    started = time.perf_counter()
    try:
        result = PPAAssembler(config).assemble(
            reads,
            pairs=pairs,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            hooks=hooks,
        )
    except ReproError as exc:
        print(f"repro-assemble: assembly failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if sampler is not None:
            sampler.stop()
        trace_stack.close()
        if root_span is not None:
            from .telemetry import write_trace

            write_trace(root_span.finish(), args.trace_out)
            if not args.quiet:
                print(f"wrote trace to {args.trace_out}")
        if timeline is not None:
            from .telemetry import write_timeline

            write_timeline(timeline, args.timeline_out)
            if not args.quiet:
                print(f"wrote timeline to {args.timeline_out}")
        if profiler is not None:
            profiler.write_folded(args.profile)
            if not args.quiet:
                print(f"wrote collapsed profile stacks to {args.profile}")
    wall_seconds = time.perf_counter() - started

    if scaffold and result.scaffolding is None:
        print(
            "repro-assemble: scaffolding skipped: the input contained no read pairs",
            file=sys.stderr,
        )

    if not args.quiet:
        for stage in result.stages:
            detail = " ".join(f"{key}={value}" for key, value in stage.detail.items())
            print(f"  [{stage.name}] {detail}")

    contigs = result.contigs_longer_than(args.min_contig)
    lengths = [len(contig) for contig in contigs]
    summary = (
        f"contigs={len(contigs)} total_bp={sum(lengths)} "
        f"largest={max(lengths, default=0)} n50={n50_value(lengths)}"
    )
    if result.scaffolding is not None:
        scaffold_lengths = [
            len(sequence) for sequence in result.scaffolds_longer_than(args.min_contig)
        ]
        summary += (
            f" scaffolds={len(scaffold_lengths)}"
            f" scaffold_n50={n50_value(scaffold_lengths)}"
        )
    print(
        f"{summary} wall_seconds={wall_seconds:.2f} "
        f"simulated_seconds={result.estimated_seconds():.2f}"
    )

    if args.metrics_json:
        payload = result.metrics_payload(
            min_contig=args.min_contig,
            stage_seconds=stage_seconds,
            wall_seconds=wall_seconds,
            reference_length=reference_length,
        )
        from .telemetry import peak_rss_bytes

        spill = process_spill_stats().delta_since(spill_before)
        payload["memory"] = {
            "memory_budget_mb": config.memory_budget_mb,
            "spill_events_total": spill["spill_events"],
            "spill_bytes_total": spill["spill_bytes"],
            "load_events_total": spill["load_events"],
            "load_bytes_total": spill["load_bytes"],
            "ledger_peak_bytes": spill["ledger_peak_bytes"],
            "peak_rss_bytes": peak_rss_bytes(),
        }
        if profiler is not None:
            payload["profile"] = profiler.payload()
        with open(args.metrics_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print(f"wrote metrics JSON to {args.metrics_json}")

    if args.output:
        written = result.write_fasta(args.output)
        if not args.quiet:
            print(f"wrote {written} contigs to {args.output}")
    if args.scaffold_output and result.scaffolding is not None:
        written = result.write_scaffold_fasta(args.scaffold_output)
        if not args.quiet:
            print(f"wrote {written} scaffolds to {args.scaffold_output}")
    return 0


def _report_main(argv: List[str]) -> int:
    """``repro-assemble report``: render an HTML ops report offline.

    Reads whatever telemetry artefacts a run left behind — either a
    directory (a service job dir, or wherever ``--trace-out`` /
    ``--timeline-out`` / ``--metrics-json`` wrote) or explicit file
    paths — and writes one self-contained HTML page.
    """
    parser = argparse.ArgumentParser(
        prog="repro-assemble report",
        description="Render a self-contained HTML ops report (span "
        "waterfall, RSS/message-rate timelines, hotspot table) from a "
        "run's telemetry artefacts.",
    )
    parser.add_argument(
        "run_dir",
        nargs="?",
        metavar="RUN_DIR",
        help="directory holding trace.json / timeline.jsonl / "
        "metrics.json (any subset); --trace/--timeline/--metrics "
        "override individual files",
    )
    parser.add_argument("--trace", metavar="PATH", help="span tree JSON (trace.json)")
    parser.add_argument(
        "--timeline", metavar="PATH", help="timeline JSONL (timeline.jsonl)"
    )
    parser.add_argument(
        "--metrics", metavar="PATH", help="assembly metrics JSON (metrics.json)"
    )
    parser.add_argument("--title", default=None, help="report heading")
    parser.add_argument(
        "-o",
        "--output",
        metavar="HTML",
        default="report.html",
        help="output file (default report.html)",
    )
    args = parser.parse_args(argv)

    from .telemetry import load_run_artifacts, read_timeline, render_report

    artifacts = (
        load_run_artifacts(args.run_dir)
        if args.run_dir
        else {"trace": None, "timeline": [], "metrics": None}
    )
    try:
        if args.trace:
            with open(args.trace, "r", encoding="utf-8") as handle:
                artifacts["trace"] = json.load(handle)
        if args.timeline:
            artifacts["timeline"] = read_timeline(args.timeline)
        if args.metrics:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                artifacts["metrics"] = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro-assemble report: failed to load artefacts: {exc}", file=sys.stderr)
        return 1
    if (
        artifacts["trace"] is None
        and not artifacts["timeline"]
        and artifacts["metrics"] is None
    ):
        parser.error(
            "nothing to report on: give a RUN_DIR containing trace.json / "
            "timeline.jsonl / metrics.json, or --trace/--timeline/--metrics"
        )

    title = args.title or (
        f"assembly run {args.run_dir}" if args.run_dir else "assembly run"
    )
    html = render_report(
        title,
        trace=artifacts["trace"],
        timeline=artifacts["timeline"],
        metrics=artifacts["metrics"],
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"wrote report to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    sys.exit(main())
