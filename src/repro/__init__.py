"""PPA-Assembler reproduction: scalable de novo genome assembly using Pregel.

Reproduction of Yan et al., "Scalable De Novo Genome Assembly Using
Pregel" (ICDE 2018).  The package is organised by subsystem:

* :mod:`repro.pregel` — the Pregel+ substrate (BSP engine, aggregators,
  combiners, mini-MapReduce, in-memory job chaining, cost model);
* :mod:`repro.workflow` — declarative workflow graphs: typed stage
  descriptors composed into named DAGs, executed on any backend with
  metering, lifecycle hooks and checkpoint/resume;
* :mod:`repro.runtime` — pluggable execution backends for the
  superstep loop (serial simulation | real multiprocess workers);
* :mod:`repro.ppa` — the Practical Pregel Algorithms used as building
  blocks (list ranking, simplified/original S-V, Hash-Min);
* :mod:`repro.dna` — sequences, k-mer encoding, FASTQ IO, single- and
  paired-end read simulation and the Table I dataset profiles;
* :mod:`repro.dbg` — de Bruijn graph data structures (vertex IDs,
  adjacency bitmaps, polarity, k-mer/contig vertices);
* :mod:`repro.assembler` — the five assembly operations and the
  workflow driver (the paper's contribution);
* :mod:`repro.scaffold` — paired-end scaffolding: the PPA toolkit run
  on the contig-link graph, ordering contigs into gap-padded scaffolds;
* :mod:`repro.service` — the durable assembly job service: SQLite job
  queue, bounded worker pool resuming jobs from checkpoints, stdlib
  REST API and HTTP client (``repro-assemble serve``);
* :mod:`repro.baselines` — ABySS/Ray/SWAP/Spaler-style comparison
  assemblers;
* :mod:`repro.quality` — QUAST-style quality assessment;
* :mod:`repro.bench` — shared benchmark harness utilities.

Quickstart::

    from repro import AssemblyConfig, PPAAssembler
    from repro.dna import simulate_dataset

    genome, reads = simulate_dataset(genome_length=20_000, seed=7)
    result = PPAAssembler(AssemblyConfig(k=21)).assemble(reads)
    print(result.num_contigs(), result.largest_contig())
"""

from .assembler import (
    AssemblyConfig,
    AssemblyResult,
    PPAAssembler,
    assemble_paired_reads,
    assemble_reads,
    build_assembly_workflow,
)
from .errors import ReproError
from .workflow import Workflow, WorkflowHooks, WorkflowRunner

__version__ = "1.9.0"

__all__ = [
    "AssemblyConfig",
    "AssemblyResult",
    "PPAAssembler",
    "assemble_paired_reads",
    "assemble_reads",
    "build_assembly_workflow",
    "ReproError",
    "Workflow",
    "WorkflowHooks",
    "WorkflowRunner",
    "__version__",
]
