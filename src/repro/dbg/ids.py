"""Vertex-ID helpers shared by the DBG layer and the assembler jobs.

The raw encoding of Figure 7 lives in :mod:`repro.dna.encoding`; this
module adds the small amount of policy the assembler needs on top of
it: sequential contig-ID allocation per worker and classification
helpers used when a single message stream mixes k-mer IDs, contig IDs,
NULL and flipped contig-end markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..dna.encoding import (
    NULL_ID,
    flip_id,
    is_contig_id,
    is_flipped,
    is_kmer_id,
    is_null,
    make_contig_id,
    split_contig_id,
    unflip_id,
)


@dataclass
class ContigIdAllocator:
    """Allocates the worker-scoped contig IDs of Figure 7(c).

    The i-th worker's j-th contig gets the 64-bit ID ``1 | i | j`` (MSB
    set, 31 bits of worker index, 32 bits of counter).  Counters start
    at 1 because ``worker 0 / contig 0`` would collide with NULL.
    """

    next_order: Dict[int, int] = field(default_factory=dict)

    def allocate(self, worker_id: int) -> int:
        order = self.next_order.get(worker_id, 1)
        self.next_order[worker_id] = order + 1
        return make_contig_id(worker_id, order)

    def allocated_count(self, worker_id: int) -> int:
        return self.next_order.get(worker_id, 1) - 1

    def total_allocated(self) -> int:
        return sum(order - 1 for order in self.next_order.values())


def describe_id(vertex_id: int) -> str:
    """Readable classification of any 64-bit vertex ID (debugging aid)."""
    if is_null(vertex_id):
        return "NULL"
    if is_flipped(vertex_id):
        return f"contig-end-marker({unflip_id(vertex_id):#x})"
    if is_contig_id(vertex_id):
        worker, order = split_contig_id(vertex_id)
        return f"contig(worker={worker}, order={order})"
    if is_kmer_id(vertex_id):
        return f"kmer({vertex_id:#x})"
    return f"unknown({vertex_id:#x})"


__all__ = [
    "ContigIdAllocator",
    "describe_id",
    "NULL_ID",
    "flip_id",
    "unflip_id",
    "is_flipped",
    "is_null",
    "is_contig_id",
    "is_kmer_id",
    "make_contig_id",
    "split_contig_id",
]
