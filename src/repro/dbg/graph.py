"""The de Bruijn graph container.

:class:`DeBruijnGraph` holds the canonical k-mer vertices and (after
contig merging) the contig vertices, and provides the validation and
statistics helpers that tests and benchmarks rely on.  The assembly
operations in :mod:`repro.assembler` read and write this structure;
inside a Pregel job the same information is carried in vertex values,
and the graph object is what the in-memory ``convert`` steps pass from
one job to the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..dna.encoding import is_null
from ..errors import GraphFormatError
from .contig_vertex import ContigVertexData
from .kmer_vertex import (
    TYPE_AMBIGUOUS,
    TYPE_DEAD_END,
    TYPE_UNAMBIGUOUS,
    KmerVertexData,
)
from .polarity import PORT_IN, PORT_OUT


@dataclass
class GraphStatistics:
    """Headline numbers about a de Bruijn graph."""

    k: int
    num_kmer_vertices: int
    num_contig_vertices: int
    num_edges: int
    vertices_by_type: Dict[str, int]
    total_contig_length: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "kmer_vertices": self.num_kmer_vertices,
            "contig_vertices": self.num_contig_vertices,
            "edges": self.num_edges,
            "type_1": self.vertices_by_type.get(TYPE_DEAD_END, 0),
            "type_1_1": self.vertices_by_type.get(TYPE_UNAMBIGUOUS, 0),
            "type_m_n": self.vertices_by_type.get(TYPE_AMBIGUOUS, 0),
            "total_contig_length": self.total_contig_length,
        }


class DeBruijnGraph:
    """Canonical-k-mer de Bruijn graph plus merged contigs."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise GraphFormatError(f"k must be positive, got {k}")
        self.k = k
        self.kmers: Dict[int, KmerVertexData] = {}
        self.contigs: Dict[int, ContigVertexData] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def get_or_create_kmer(self, kmer_id: int) -> KmerVertexData:
        vertex = self.kmers.get(kmer_id)
        if vertex is None:
            vertex = KmerVertexData(kmer_id=kmer_id, k=self.k)
            self.kmers[kmer_id] = vertex
        return vertex

    def add_edge(
        self,
        source_id: int,
        source_port: int,
        target_id: int,
        target_port: int,
        coverage: int = 1,
    ) -> None:
        """Add a bidirected edge between two k-mer vertices (both directions)."""
        source = self.get_or_create_kmer(source_id)
        source.add_adjacency(target_id, source_port, target_port, coverage)
        if source_id == target_id and source_port == target_port:
            # A true self-loop on one port needs only a single entry.
            return
        target = self.get_or_create_kmer(target_id)
        target.add_adjacency(source_id, target_port, source_port, coverage)

    def add_contig(self, contig: ContigVertexData) -> None:
        if contig.contig_id in self.contigs:
            raise GraphFormatError(f"duplicate contig ID {contig.contig_id:#x}")
        self.contigs[contig.contig_id] = contig

    def remove_kmer(self, kmer_id: int) -> None:
        """Delete a k-mer vertex and every adjacency entry pointing at it."""
        self.kmers.pop(kmer_id, None)
        for vertex in self.kmers.values():
            vertex.remove_adjacency(kmer_id)

    def remove_contig(self, contig_id: int) -> None:
        """Delete a contig vertex and the k-mer adjacency entries through it."""
        contig = self.contigs.pop(contig_id, None)
        if contig is None:
            return
        for end in (contig.in_end, contig.out_end):
            if not end.is_dead_end():
                neighbor = self.kmers.get(end.neighbor_id)
                if neighbor is not None:
                    neighbor.remove_contig_adjacency(contig_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, kmer_id: int) -> bool:
        return kmer_id in self.kmers

    def kmer_count(self) -> int:
        return len(self.kmers)

    def contig_count(self) -> int:
        return len(self.contigs)

    def edge_count(self) -> int:
        """Number of distinct bidirected k-mer/k-mer edges."""
        # Each edge appears once in each endpoint's adjacency list
        # (except one-entry self-loops), so halve the directed total.
        directed = 0
        self_loops = 0
        for vertex in self.kmers.values():
            for adjacency in vertex.adjacencies:
                if adjacency.is_dead_end():
                    continue
                if adjacency.neighbor_id == vertex.kmer_id:
                    self_loops += 1
                else:
                    directed += 1
        return directed // 2 + self_loops

    def vertices_of_type(self, vertex_type: str) -> List[int]:
        return [
            kmer_id
            for kmer_id, vertex in self.kmers.items()
            if vertex.vertex_type() == vertex_type
        ]

    def ambiguous_vertices(self) -> List[int]:
        return self.vertices_of_type(TYPE_AMBIGUOUS)

    def unambiguous_vertices(self) -> List[int]:
        return [
            kmer_id
            for kmer_id, vertex in self.kmers.items()
            if vertex.vertex_type() != TYPE_AMBIGUOUS
        ]

    def statistics(self) -> GraphStatistics:
        by_type: Dict[str, int] = {TYPE_DEAD_END: 0, TYPE_UNAMBIGUOUS: 0, TYPE_AMBIGUOUS: 0}
        for vertex in self.kmers.values():
            by_type[vertex.vertex_type()] += 1
        return GraphStatistics(
            k=self.k,
            num_kmer_vertices=len(self.kmers),
            num_contig_vertices=len(self.contigs),
            num_edges=self.edge_count(),
            vertices_by_type=by_type,
            total_contig_length=sum(contig.length for contig in self.contigs.values()),
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphFormatError`.

        Invariants checked:

        * every k-mer adjacency that names another k-mer is mirrored by
          a matching entry on that k-mer (same ports, same coverage);
        * contig ends that name a k-mer point at an existing vertex;
        * contig sequences are at least k long (a contig merges one or
          more k-mers, so it can never be shorter than a single k-mer).
        """
        for kmer_id, vertex in self.kmers.items():
            for adjacency in vertex.adjacencies:
                if adjacency.is_dead_end() or adjacency.via_contig is not None:
                    continue
                neighbor = self.kmers.get(adjacency.neighbor_id)
                if neighbor is None:
                    raise GraphFormatError(
                        f"vertex {kmer_id:#x} references missing neighbour "
                        f"{adjacency.neighbor_id:#x}"
                    )
                mirrored = [
                    other
                    for other in neighbor.adjacencies
                    if other.neighbor_id == kmer_id
                    and other.my_port == adjacency.neighbor_port
                    and other.neighbor_port == adjacency.my_port
                ]
                if not mirrored:
                    raise GraphFormatError(
                        f"edge {kmer_id:#x}->{adjacency.neighbor_id:#x} is not mirrored"
                    )
                if mirrored[0].coverage != adjacency.coverage:
                    raise GraphFormatError(
                        f"edge {kmer_id:#x}<->{adjacency.neighbor_id:#x} has asymmetric "
                        f"coverage {adjacency.coverage} vs {mirrored[0].coverage}"
                    )

        for contig_id, contig in self.contigs.items():
            if contig.length < self.k:
                raise GraphFormatError(
                    f"contig {contig_id:#x} is shorter ({contig.length}) than k={self.k}"
                )
            for end in (contig.in_end, contig.out_end):
                if not end.is_dead_end() and end.neighbor_id not in self.kmers:
                    raise GraphFormatError(
                        f"contig {contig_id:#x} references missing k-mer "
                        f"{end.neighbor_id:#x}"
                    )

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[KmerVertexData]:
        return iter(self.kmers.values())

    def contig_sequences(self) -> List[str]:
        """All contig sequences (unordered)."""
        return [contig.sequence for contig in self.contigs.values()]
