"""Compact adjacency formats of Figure 8.

During DBG construction every vertex is a k-mer and almost all of its
neighbours are k-mers too, so PPA-assembler stores the adjacency list
of a k-mer vertex as a 32-bit bitmap: one bit per combination of

* edge polarity class — ⟨L:L⟩, ⟨L:H⟩, ⟨H:L⟩, ⟨H:H⟩,
* direction — in-neighbour or out-neighbour,
* the nucleotide that is prepended/appended to form the neighbour.

(4 × 2 × 4 = 32 combinations.)  A parallel list of varint coverage
counts stores one count per set bit.  The neighbour's packed ID is
never stored: it is *recomputed* from the vertex's own ID plus the bit
position, which is what makes the format so small.

The module also implements the uncompressed 8-bit adjacency item of
Figure 8(b) (``000 XX Y ZZ``) and the ``10000000`` NULL item.

Base order within each group is A, C, G, T (the 2-bit code order used
throughout the library); the figure displays A/T/G/C, which only
permutes bit positions and does not change the information content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..dna.alphabet import BITS_TO_BASE
from ..dna.encoding import reverse_complement_encoded
from .polarity import LABEL_H, LABEL_L

#: Polarity classes in bit order.
POLARITY_CLASSES: Tuple[str, ...] = ("LL", "LH", "HL", "HH")
_CLASS_INDEX = {polarity: index for index, polarity in enumerate(POLARITY_CLASSES)}

DIRECTION_IN = "in"
DIRECTION_OUT = "out"

#: The 8-bit NULL adjacency item (Figure 8(b), dead-end marker).
NULL_ITEM = 0b1000_0000


def bit_position(polarity: str, direction: str, base_bits: int) -> int:
    """Bit index in the 32-bit bitmap for one neighbour combination."""
    try:
        class_index = _CLASS_INDEX[polarity]
    except KeyError:
        raise ValueError(f"unknown polarity class {polarity!r}") from None
    if direction not in (DIRECTION_IN, DIRECTION_OUT):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    if not 0 <= base_bits <= 3:
        raise ValueError(f"base_bits must be in [0, 3], got {base_bits}")
    direction_offset = 0 if direction == DIRECTION_IN else 4
    return class_index * 8 + direction_offset + base_bits


def split_bit_position(position: int) -> Tuple[str, str, int]:
    """Inverse of :func:`bit_position`: ``(polarity, direction, base_bits)``."""
    if not 0 <= position < 32:
        raise ValueError(f"bit position must be in [0, 32), got {position}")
    class_index, remainder = divmod(position, 8)
    direction = DIRECTION_IN if remainder < 4 else DIRECTION_OUT
    return POLARITY_CLASSES[class_index], direction, remainder % 4


@dataclass
class AdjacencyBitmap:
    """The 32-bit neighbour bitmap plus per-edge coverage counts."""

    bits: int = 0
    _coverage: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._coverage is None:
            self._coverage = {}

    # -- mutation ---------------------------------------------------------
    def add(self, polarity: str, direction: str, base_bits: int, coverage: int = 1) -> None:
        """Record one observed edge (incrementing coverage if already present)."""
        position = bit_position(polarity, direction, base_bits)
        self.bits |= 1 << position
        self._coverage[position] = self._coverage.get(position, 0) + coverage

    def merge(self, other: "AdjacencyBitmap") -> None:
        """Union with another partial bitmap, summing coverage (reduce step)."""
        self.bits |= other.bits
        for position, coverage in other._coverage.items():
            self._coverage[position] = self._coverage.get(position, 0) + coverage

    # -- queries ----------------------------------------------------------
    def has(self, polarity: str, direction: str, base_bits: int) -> bool:
        return bool(self.bits & (1 << bit_position(polarity, direction, base_bits)))

    def coverage_at(self, polarity: str, direction: str, base_bits: int) -> int:
        return self._coverage.get(bit_position(polarity, direction, base_bits), 0)

    def degree(self) -> int:
        """Number of set bits (distinct neighbour combinations)."""
        return bin(self.bits).count("1")

    def entries(self) -> Iterator[Tuple[str, str, int, int]]:
        """Yield ``(polarity, direction, base_bits, coverage)`` per set bit."""
        bits = self.bits
        position = 0
        while bits:
            if bits & 1:
                polarity, direction, base_bits = split_bit_position(position)
                yield polarity, direction, base_bits, self._coverage.get(position, 0)
            bits >>= 1
            position += 1

    def coverage_list(self) -> List[int]:
        """Coverage counts in bit order (matches the varint list on disk)."""
        return [self._coverage.get(position, 0) for position in sorted(self._coverage)]

    def copy(self) -> "AdjacencyBitmap":
        clone = AdjacencyBitmap(bits=self.bits)
        clone._coverage = dict(self._coverage)
        return clone

    @classmethod
    def from_positions(cls, positions, coverages) -> "AdjacencyBitmap":
        """Build a bitmap from parallel bit-position / coverage sequences.

        ``positions`` must be distinct (pre-aggregated) bit indices;
        used by the vectorized construction path, whose segment-reduce
        already summed coverage per position.
        """
        bitmap = cls()
        bits = 0
        for position, coverage in zip(positions, coverages):
            bits |= 1 << position
            bitmap._coverage[position] = coverage
        bitmap.bits = bits
        return bitmap


# ----------------------------------------------------------------------
# neighbour reconstruction
# ----------------------------------------------------------------------
def neighbor_kmer_id(vertex_id: int, k: int, polarity: str, direction: str, base_bits: int) -> int:
    """Recompute a neighbour's canonical packed ID from a bitmap entry.

    Follows the recipe in Section IV-A: orient the current k-mer
    according to the polarity label on *our* side of the edge, prepend
    or append the recorded base to obtain the neighbour's observed
    sequence, then reverse-complement if the label on the *neighbour's*
    side is H.
    """
    if len(polarity) != 2:
        raise ValueError(f"polarity must be two characters, got {polarity!r}")
    source_label, target_label = polarity[0], polarity[1]
    k_mask = (1 << (2 * k)) - 1
    tail_mask = (1 << (2 * (k - 1))) - 1

    if direction == DIRECTION_OUT:
        # We are the edge source (prefix); our label is the source label.
        my_label, neighbor_label = source_label, target_label
        observed = vertex_id if my_label == LABEL_L else reverse_complement_encoded(vertex_id, k)
        neighbor_observed = ((observed & tail_mask) << 2) | base_bits
    elif direction == DIRECTION_IN:
        # We are the edge target (suffix); our label is the target label.
        my_label, neighbor_label = target_label, source_label
        observed = vertex_id if my_label == LABEL_L else reverse_complement_encoded(vertex_id, k)
        neighbor_observed = (base_bits << (2 * (k - 1))) | (observed >> 2)
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")

    neighbor_observed &= k_mask
    if neighbor_label == LABEL_H:
        return reverse_complement_encoded(neighbor_observed, k)
    return neighbor_observed


def expand_bitmap(vertex_id: int, k: int, bitmap: AdjacencyBitmap) -> List[Tuple[int, str, str, int, int]]:
    """Expand a bitmap into ``(neighbor_id, polarity, direction, base_bits, coverage)``."""
    expanded = []
    for polarity, direction, base_bits, coverage in bitmap.entries():
        neighbor = neighbor_kmer_id(vertex_id, k, polarity, direction, base_bits)
        expanded.append((neighbor, polarity, direction, base_bits, coverage))
    return expanded


# ----------------------------------------------------------------------
# 8-bit adjacency items (Figure 8(b))
# ----------------------------------------------------------------------
def encode_item(base_bits: int, direction: str, polarity: str) -> int:
    """Pack one uncompressed adjacency item into the 8-bit format."""
    if not 0 <= base_bits <= 3:
        raise ValueError(f"base_bits must be in [0, 3], got {base_bits}")
    direction_bit = 0 if direction == DIRECTION_IN else 1
    try:
        class_index = _CLASS_INDEX[polarity]
    except KeyError:
        raise ValueError(f"unknown polarity class {polarity!r}") from None
    return (base_bits << 3) | (direction_bit << 2) | class_index


def decode_item(item: int) -> Tuple[int, str, str]:
    """Unpack an 8-bit adjacency item into ``(base_bits, direction, polarity)``."""
    if item == NULL_ITEM:
        raise ValueError("cannot decode the NULL adjacency item")
    if item & 0b1110_0000:
        raise ValueError(f"invalid adjacency item {item:#010b}")
    base_bits = (item >> 3) & 0b11
    direction = DIRECTION_OUT if item & 0b100 else DIRECTION_IN
    polarity = POLARITY_CLASSES[item & 0b11]
    return base_bits, direction, polarity


def is_null_item(item: int) -> bool:
    """True for the dead-end marker item."""
    return item == NULL_ITEM


def describe_entry(polarity: str, direction: str, base_bits: int) -> str:
    """Human-readable description of one bitmap entry (debugging aid)."""
    base = BITS_TO_BASE[base_bits]
    return f"{direction}-neighbour via base {base} with polarity ⟨{polarity[0]}:{polarity[1]}⟩"
