"""The k-mer vertex: the work-horse record of the de Bruijn graph.

Section IV-A of the paper distinguishes three vertex types:

* ``⟨1⟩`` — one neighbour only (a dead-end, tip candidate),
* ``⟨1-1⟩`` — exactly two neighbours, one on each side of the k-mer
  after polarity labels are normalised with Property 1 (unambiguous),
* ``⟨m-n⟩`` — anything else with two or more neighbours (ambiguous).

Adjacency entries are stored in the *port* view (see
:mod:`repro.dbg.polarity`): each entry records which side of this
canonical k-mer the edge attaches to (``my_port``), which side of the
neighbour it attaches to (``neighbor_port``), the edge coverage, and —
after contig merging — an optional :class:`ContigLink` describing the
contig that now materialises the connection ("treat it as a label on
the edge connecting the two ambiguous k-mers", Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..dna.encoding import NULL_ID, decode_kmer, is_null
from .bitmap import AdjacencyBitmap, expand_bitmap
from .polarity import (
    PORT_IN,
    PORT_OUT,
    source_port,
    target_port,
)

#: Vertex type constants (paper notation).
TYPE_DEAD_END = "1"
TYPE_UNAMBIGUOUS = "1-1"
TYPE_AMBIGUOUS = "m-n"


@dataclass(frozen=True)
class ContigLink:
    """Information a k-mer vertex keeps about an adjacent contig."""

    contig_id: int
    length: int
    coverage: int


@dataclass(frozen=True)
class KmerAdjacency:
    """One bidirected adjacency entry of a k-mer vertex."""

    neighbor_id: int
    my_port: int
    neighbor_port: int
    coverage: int = 1
    via_contig: Optional[ContigLink] = None

    def key(self) -> Tuple[int, int, int, Optional[int]]:
        """Deduplication key for edge observations.

        The two strand observations of one (k+1)-mer edge collide here
        and have their coverage summed.  Adjacencies that run through a
        contig keep the contig identity in the key so that parallel
        contigs between the same pair of ambiguous vertices (bubbles)
        remain distinct entries.
        """
        contig_id = self.via_contig.contig_id if self.via_contig is not None else None
        return (self.neighbor_id, self.my_port, self.neighbor_port, contig_id)

    def is_dead_end(self) -> bool:
        return is_null(self.neighbor_id)

    def with_coverage(self, coverage: int) -> "KmerAdjacency":
        return replace(self, coverage=coverage)


@dataclass
class KmerVertexData:
    """Mutable state of one canonical k-mer vertex."""

    kmer_id: int
    k: int
    adjacencies: List[KmerAdjacency] = field(default_factory=list)

    # -- construction ------------------------------------------------------
    def add_adjacency(
        self,
        neighbor_id: int,
        my_port: int,
        neighbor_port: int,
        coverage: int = 1,
        via_contig: Optional[ContigLink] = None,
    ) -> None:
        """Add an edge observation, merging duplicates by summing coverage."""
        key = (
            neighbor_id,
            my_port,
            neighbor_port,
            via_contig.contig_id if via_contig is not None else None,
        )
        for index, existing in enumerate(self.adjacencies):
            if existing.key() == key:
                merged = KmerAdjacency(
                    neighbor_id=neighbor_id,
                    my_port=my_port,
                    neighbor_port=neighbor_port,
                    coverage=existing.coverage + coverage,
                    via_contig=via_contig if via_contig is not None else existing.via_contig,
                )
                self.adjacencies[index] = merged
                return
        self.adjacencies.append(
            KmerAdjacency(
                neighbor_id=neighbor_id,
                my_port=my_port,
                neighbor_port=neighbor_port,
                coverage=coverage,
                via_contig=via_contig,
            )
        )

    def remove_adjacency(self, neighbor_id: int, my_port: Optional[int] = None) -> int:
        """Remove adjacency entries to ``neighbor_id`` (optionally on one port).

        Returns the number of entries removed.  Used by tip removal and
        bubble filtering when an edge (or the contig it carries) is
        deleted.
        """
        kept: List[KmerAdjacency] = []
        removed = 0
        for adjacency in self.adjacencies:
            matches = adjacency.neighbor_id == neighbor_id and (
                my_port is None or adjacency.my_port == my_port
            )
            if matches:
                removed += 1
            else:
                kept.append(adjacency)
        self.adjacencies = kept
        return removed

    def remove_contig_adjacency(self, contig_id: int) -> int:
        """Remove the adjacency entries that go through ``contig_id``."""
        kept = []
        removed = 0
        for adjacency in self.adjacencies:
            if adjacency.via_contig is not None and adjacency.via_contig.contig_id == contig_id:
                removed += 1
            else:
                kept.append(adjacency)
        self.adjacencies = kept
        return removed

    @classmethod
    def from_bitmap(cls, kmer_id: int, k: int, bitmap: AdjacencyBitmap) -> "KmerVertexData":
        """Expand a construction-time 32-bit bitmap into the port view."""
        vertex = cls(kmer_id=kmer_id, k=k)
        for neighbor_id, polarity, direction, _base_bits, coverage in expand_bitmap(
            kmer_id, k, bitmap
        ):
            if direction == "out":
                my_port = source_port(polarity[0])
                neighbor_port = target_port(polarity[1])
            else:
                my_port = target_port(polarity[1])
                neighbor_port = source_port(polarity[0])
            vertex.add_adjacency(neighbor_id, my_port, neighbor_port, coverage)
        return vertex

    # -- queries -------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Number of distinct bidirected adjacency entries."""
        return len(self.adjacencies)

    def entries_on_port(self, port: int) -> List[KmerAdjacency]:
        return [adjacency for adjacency in self.adjacencies if adjacency.my_port == port]

    def vertex_type(self) -> str:
        """Classify as ⟨1⟩, ⟨1-1⟩ or ⟨m-n⟩ (Section IV-A, "Vertex Types")."""
        degree = self.degree
        if degree <= 1:
            return TYPE_DEAD_END
        if degree == 2:
            ports = {adjacency.my_port for adjacency in self.adjacencies}
            if ports == {PORT_OUT, PORT_IN}:
                return TYPE_UNAMBIGUOUS
        return TYPE_AMBIGUOUS

    def is_ambiguous(self) -> bool:
        return self.vertex_type() == TYPE_AMBIGUOUS

    def is_unambiguous(self) -> bool:
        return self.vertex_type() in (TYPE_DEAD_END, TYPE_UNAMBIGUOUS)

    def neighbor_ids(self, include_null: bool = False) -> List[int]:
        """IDs of all neighbours (k-mers on the other end of each adjacency)."""
        ids = []
        for adjacency in self.adjacencies:
            if include_null or not adjacency.is_dead_end():
                ids.append(adjacency.neighbor_id)
        return ids

    def adjacency_to(self, neighbor_id: int) -> Optional[KmerAdjacency]:
        """First adjacency entry towards ``neighbor_id`` (None if absent)."""
        for adjacency in self.adjacencies:
            if adjacency.neighbor_id == neighbor_id:
                return adjacency
        return None

    def other_adjacency(self, excluding_neighbor: int) -> Optional[KmerAdjacency]:
        """The adjacency entry *not* pointing at ``excluding_neighbor``.

        Only meaningful for ⟨1-1⟩ vertices; used when relaying a walk
        through an unambiguous vertex.
        """
        for adjacency in self.adjacencies:
            if adjacency.neighbor_id != excluding_neighbor:
                return adjacency
        return None

    def min_coverage(self) -> int:
        """Smallest edge coverage among the adjacency entries (0 if none)."""
        if not self.adjacencies:
            return 0
        return min(adjacency.coverage for adjacency in self.adjacencies)

    def sequence(self) -> str:
        """The canonical k-mer as a string (decoded from the packed ID)."""
        return decode_kmer(self.kmer_id, self.k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KmerVertexData {self.sequence()} type={self.vertex_type()} "
            f"degree={self.degree}>"
        )
