"""De Bruijn graph data structures (Section IV-A of the paper).

Vertex-ID formats (Figure 7), compact adjacency bitmaps (Figure 8),
edge polarity and Property 1, k-mer and contig vertex records, and the
graph container with validation.
"""

from .bitmap import (
    DIRECTION_IN,
    DIRECTION_OUT,
    NULL_ITEM,
    POLARITY_CLASSES,
    AdjacencyBitmap,
    bit_position,
    decode_item,
    describe_entry,
    encode_item,
    expand_bitmap,
    is_null_item,
    neighbor_kmer_id,
    split_bit_position,
)
from .contig_vertex import END_IN, END_OUT, ContigEnd, ContigVertexData
from .graph import DeBruijnGraph, GraphStatistics
from .ids import ContigIdAllocator, describe_id
from .kmer_vertex import (
    TYPE_AMBIGUOUS,
    TYPE_DEAD_END,
    TYPE_UNAMBIGUOUS,
    ContigLink,
    KmerAdjacency,
    KmerVertexData,
)
from .polarity import (
    LABEL_H,
    LABEL_L,
    PORT_IN,
    PORT_OUT,
    PolarizedEdge,
    complement_label,
    label_for_source_port,
    label_for_target_port,
    other_port,
    reverse_polarity,
    source_port,
    target_port,
)

__all__ = [
    "DIRECTION_IN",
    "DIRECTION_OUT",
    "NULL_ITEM",
    "POLARITY_CLASSES",
    "AdjacencyBitmap",
    "bit_position",
    "decode_item",
    "describe_entry",
    "encode_item",
    "expand_bitmap",
    "is_null_item",
    "neighbor_kmer_id",
    "split_bit_position",
    "END_IN",
    "END_OUT",
    "ContigEnd",
    "ContigVertexData",
    "DeBruijnGraph",
    "GraphStatistics",
    "ContigIdAllocator",
    "describe_id",
    "TYPE_AMBIGUOUS",
    "TYPE_DEAD_END",
    "TYPE_UNAMBIGUOUS",
    "ContigLink",
    "KmerAdjacency",
    "KmerVertexData",
    "LABEL_H",
    "LABEL_L",
    "PORT_IN",
    "PORT_OUT",
    "PolarizedEdge",
    "complement_label",
    "label_for_source_port",
    "label_for_target_port",
    "other_port",
    "reverse_polarity",
    "source_port",
    "target_port",
]
