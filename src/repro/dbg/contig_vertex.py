"""The contig vertex (Section IV-A, "Format of a Contig").

A contig is produced by merging the k-mers of a maximal unambiguous
path.  Its stored sequence is always written in the orientation the
paper calls "contig-side polarity L" (strand 1, 5'→3'), so a contig has
a well-defined *in* end (the 5' end of the stored sequence) and *out*
end (the 3' end).  Each end either dangles (NULL) or attaches to an
ambiguous k-mer vertex; the attachment records which port of that k-mer
the contig plugs into and the coverage of the connecting (k+1)-mer
edge.  The contig also carries its own coverage — the minimum edge
coverage over all the (k+1)-mers it merged — which bubble filtering
compares between alternative paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dna.encoding import NULL_ID, is_null
from ..dna.sequence import gc_content, reverse_complement
from .kmer_vertex import TYPE_DEAD_END, TYPE_UNAMBIGUOUS

#: Contig end identifiers.
END_IN = "in"  #: the 5' end of the stored sequence
END_OUT = "out"  #: the 3' end of the stored sequence


@dataclass(frozen=True)
class ContigEnd:
    """Attachment of one contig end to the rest of the graph."""

    neighbor_id: int = NULL_ID
    neighbor_port: int = 0
    edge_coverage: int = 0

    def is_dead_end(self) -> bool:
        return is_null(self.neighbor_id)


@dataclass
class ContigVertexData:
    """Mutable state of one contig vertex."""

    contig_id: int
    sequence: str
    coverage: int
    in_end: ContigEnd = field(default_factory=ContigEnd)
    out_end: ContigEnd = field(default_factory=ContigEnd)
    #: IDs of the k-mer vertices merged into this contig (kept for
    #: bookkeeping/tests; a space-conscious implementation would drop it).
    member_kmers: List[int] = field(default_factory=list)

    # -- basic properties --------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.sequence)

    def gc_fraction(self) -> float:
        return gc_content(self.sequence)

    def reverse_complement_sequence(self) -> str:
        return reverse_complement(self.sequence)

    # -- ends ---------------------------------------------------------------
    def end(self, which: str) -> ContigEnd:
        if which == END_IN:
            return self.in_end
        if which == END_OUT:
            return self.out_end
        raise ValueError(f"contig end must be 'in' or 'out', got {which!r}")

    def set_end(self, which: str, end: ContigEnd) -> None:
        if which == END_IN:
            self.in_end = end
        elif which == END_OUT:
            self.out_end = end
        else:
            raise ValueError(f"contig end must be 'in' or 'out', got {which!r}")

    def neighbor_ids(self) -> List[int]:
        """Non-NULL k-mer neighbours of this contig (0, 1 or 2 of them)."""
        ids = []
        for end in (self.in_end, self.out_end):
            if not end.is_dead_end():
                ids.append(end.neighbor_id)
        return ids

    def ordered_neighbor_pair(self) -> Optional[Tuple[int, int]]:
        """``(smaller, larger)`` neighbour IDs if both ends attach to k-mers.

        Bubble filtering groups contigs by this pair: two contigs that
        share both ambiguous endpoints are alternative paths between the
        same positions, i.e. a bubble candidate.
        """
        if self.in_end.is_dead_end() or self.out_end.is_dead_end():
            return None
        a, b = self.in_end.neighbor_id, self.out_end.neighbor_id
        return (a, b) if a <= b else (b, a)

    def vertex_type(self) -> str:
        """⟨1⟩ if at least one end dangles, else ⟨1-1⟩ (Section IV-A)."""
        if self.in_end.is_dead_end() or self.out_end.is_dead_end():
            return TYPE_DEAD_END
        return TYPE_UNAMBIGUOUS

    def is_isolated(self) -> bool:
        """True when both ends dangle (no ambiguous neighbours at all)."""
        return self.in_end.is_dead_end() and self.out_end.is_dead_end()

    def is_tip_candidate(self, length_threshold: int) -> bool:
        """Dangling and short: the definition of a tip (Section III)."""
        return self.vertex_type() == TYPE_DEAD_END and self.length <= length_threshold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ContigVertexData id={self.contig_id:#x} length={self.length} "
            f"coverage={self.coverage} type={self.vertex_type()}>"
        )
