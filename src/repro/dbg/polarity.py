"""Edge polarity: the L/H labels of Section III and Property 1.

Reads come from both strands, so a DBG vertex is a *canonical* k-mer
and each end of an edge carries a polarity label:

* ``L`` — the observed k-mer at that end was already canonical;
* ``H`` — the observed k-mer was the reverse complement of the
  canonical form.

Property 1 of the paper states that edge ``(u, v)`` with polarity
``⟨X:Y⟩`` is equivalent to edge ``(v, u)`` with polarity ``⟨Ȳ:X̄⟩``;
this is what allows k-mers generated from different strands to be
stitched consistently.

Internally the library maps each (direction, label) pair onto one of
two *ports* of the canonical k-mer — the 3' end of the canonical
orientation (``PORT_OUT``) or its 5' end (``PORT_IN``).  The port view
is the standard bidirected-DBG formulation; it is exactly equivalent to
the paper's polarity labels (the mapping is implemented and tested
here) and makes the traversal logic of contig merging and tip removal
direction-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

LABEL_L = "L"
LABEL_H = "H"

#: Port constants: the two sides of a canonical k-mer.
PORT_OUT = 0  #: the 3' end of the canonical orientation (extension by appending)
PORT_IN = 1  #: the 5' end of the canonical orientation (extension by prepending)


def complement_label(label: str) -> str:
    """``H̄ = L`` and ``L̄ = H`` (paper notation)."""
    if label == LABEL_L:
        return LABEL_H
    if label == LABEL_H:
        return LABEL_L
    raise ValueError(f"polarity label must be 'L' or 'H', got {label!r}")


def reverse_polarity(polarity: str) -> str:
    """Apply Property 1: ``⟨X:Y⟩`` on (u,v) ≡ ``⟨Ȳ:X̄⟩`` on (v,u)."""
    if len(polarity) != 2:
        raise ValueError(f"polarity must be two characters, got {polarity!r}")
    source_label, target_label = polarity[0], polarity[1]
    return complement_label(target_label) + complement_label(source_label)


def source_port(label: str) -> int:
    """Port used on the *source* (prefix) side of an edge with label ``label``.

    The edge extends the observed prefix at its 3' end; if the observed
    orientation is canonical (L) that is the canonical 3' end
    (``PORT_OUT``), otherwise the canonical 5' end (``PORT_IN``).
    """
    return PORT_OUT if label == LABEL_L else PORT_IN


def target_port(label: str) -> int:
    """Port used on the *target* (suffix) side of an edge with label ``label``.

    The edge enters the observed suffix at its 5' end; for a canonical
    observation that is ``PORT_IN``, otherwise ``PORT_OUT``.
    """
    return PORT_IN if label == LABEL_L else PORT_OUT


def label_for_source_port(port: int) -> str:
    """Inverse of :func:`source_port`."""
    return LABEL_L if port == PORT_OUT else LABEL_H


def label_for_target_port(port: int) -> str:
    """Inverse of :func:`target_port`."""
    return LABEL_L if port == PORT_IN else LABEL_H


def other_port(port: int) -> int:
    """The opposite side of a k-mer (walking *through* a ⟨1-1⟩ vertex)."""
    if port not in (PORT_OUT, PORT_IN):
        raise ValueError(f"port must be {PORT_OUT} or {PORT_IN}, got {port}")
    return PORT_IN if port == PORT_OUT else PORT_OUT


@dataclass(frozen=True)
class PolarizedEdge:
    """A DBG edge in the paper's source→target + polarity notation."""

    source: int
    target: int
    polarity: str
    coverage: int = 1

    def reversed(self) -> "PolarizedEdge":
        """The equivalent edge written in the other direction (Property 1)."""
        return PolarizedEdge(
            source=self.target,
            target=self.source,
            polarity=reverse_polarity(self.polarity),
            coverage=self.coverage,
        )

    def ports(self) -> Tuple[int, int]:
        """``(source_port, target_port)`` of this edge."""
        return source_port(self.polarity[0]), target_port(self.polarity[1])

    def canonical_form(self) -> "PolarizedEdge":
        """Deterministic representative among the two equivalent writings.

        The edge and its reverse describe the same adjacency; tests and
        deduplication use the writing with the smaller source ID (ties
        broken by polarity string).
        """
        reversed_edge = self.reversed()
        own_key = (self.source, self.target, self.polarity)
        other_key = (reversed_edge.source, reversed_edge.target, reversed_edge.polarity)
        return self if own_key <= other_key else reversed_edge
