"""Assembly results: what an end user gets back from the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dbg.graph import DeBruijnGraph
from ..dna.io_fastq import FastaRecord, write_fasta
from ..pregel.cost_model import ClusterProfile, CostModel
from ..pregel.metrics import JobMetrics, PipelineMetrics
from ..scaffold.scaffolder import ScaffoldingResult
from .config import AssemblyConfig


@dataclass
class StageSummary:
    """One pipeline stage's headline numbers (shown by examples/reports)."""

    name: str
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class AssemblyResult:
    """Everything produced by one :class:`~repro.assembler.pipeline.PPAAssembler` run."""

    config: AssemblyConfig
    graph: DeBruijnGraph
    metrics: PipelineMetrics
    stages: List[StageSummary] = field(default_factory=list)
    labeling_metrics: Dict[str, List[JobMetrics]] = field(default_factory=dict)
    scaffolding: Optional[ScaffoldingResult] = None

    # ------------------------------------------------------------------
    # contig access
    # ------------------------------------------------------------------
    @property
    def contigs(self) -> List[str]:
        """All assembled contig sequences, longest first."""
        return sorted(self.graph.contig_sequences(), key=len, reverse=True)

    def contigs_longer_than(self, min_length: int) -> List[str]:
        """Contigs above a length cutoff (QUAST uses 500 bp by default)."""
        return [sequence for sequence in self.contigs if len(sequence) >= min_length]

    def num_contigs(self, min_length: int = 0) -> int:
        return len(self.contigs_longer_than(min_length))

    def total_length(self, min_length: int = 0) -> int:
        return sum(len(sequence) for sequence in self.contigs_longer_than(min_length))

    def largest_contig(self) -> int:
        contigs = self.contigs
        return len(contigs[0]) if contigs else 0

    def write_fasta(self, path) -> int:
        """Write the contigs to a FASTA file; returns the record count."""
        records = [
            FastaRecord(name=f"contig_{index}_len_{len(sequence)}", sequence=sequence)
            for index, sequence in enumerate(self.contigs)
        ]
        return write_fasta(records, path)

    # ------------------------------------------------------------------
    # scaffold access (populated when config.scaffold ran on read pairs)
    # ------------------------------------------------------------------
    @property
    def scaffolds(self) -> List[str]:
        """All scaffold sequences, longest first (empty if the stage didn't run)."""
        if self.scaffolding is None:
            return []
        return self.scaffolding.sequences

    def scaffolds_longer_than(self, min_length: int) -> List[str]:
        return [sequence for sequence in self.scaffolds if len(sequence) >= min_length]

    def write_scaffold_fasta(self, path) -> int:
        """Write the scaffolds to a FASTA file; returns the record count."""
        if self.scaffolding is None:
            raise ValueError(
                "no scaffolds to write: the scaffolding stage did not run "
                "(enable AssemblyConfig.scaffold and assemble read pairs)"
            )
        return self.scaffolding.write_fasta(path)

    # ------------------------------------------------------------------
    # cost model hooks
    # ------------------------------------------------------------------
    def estimated_seconds(self, profile: Optional[ClusterProfile] = None) -> float:
        """Simulated end-to-end execution time (Figure 12's measurement)."""
        return CostModel(profile).pipeline_seconds(self.metrics)

    def estimated_breakdown(self, profile: Optional[ClusterProfile] = None) -> Dict[str, float]:
        """Per-job simulated seconds."""
        return CostModel(profile).breakdown(self.metrics)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def stage(self, name: str) -> Optional[StageSummary]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def add_stage(self, name: str, **detail: object) -> None:
        self.stages.append(StageSummary(name=name, detail=dict(detail)))

    def metrics_payload(
        self,
        min_contig: int = 0,
        stage_seconds: Optional[Dict[str, float]] = None,
        wall_seconds: Optional[float] = None,
        reference_length: Optional[int] = None,
    ) -> Dict[str, object]:
        """The run's quality summary as a machine-readable JSON document.

        This is the single shape shared by the CLI's ``--metrics-json``
        flag and the job service's result endpoint: contig (and, when
        scaffolding ran, scaffold) contiguity statistics, the per-stage
        summaries, measured per-stage wall-clock seconds when the caller
        collected them via :class:`~repro.workflow.WorkflowHooks`, and
        the cost model's simulated cluster seconds.  ``*_ng50`` fields
        appear only when the reference length is known.
        """
        from dataclasses import asdict

        from ..quality.stats import l50_value, n50_value, ng50_value

        def contiguity(lengths: List[int]) -> Dict[str, object]:
            block: Dict[str, object] = {
                "count": len(lengths),
                "total_bp": sum(lengths),
                "largest": max(lengths, default=0),
                "n50": n50_value(lengths),
                "l50": l50_value(lengths),
            }
            if reference_length:
                block["ng50"] = ng50_value(lengths, reference_length)
            return block

        contig_lengths = [len(s) for s in self.contigs_longer_than(min_contig)]
        payload: Dict[str, object] = {
            "schema_version": 1,
            "min_contig": min_contig,
            "config": asdict(self.config),
            "contigs": contiguity(contig_lengths),
            "scaffolds": (
                contiguity(
                    [len(s) for s in self.scaffolds_longer_than(min_contig)]
                )
                if self.scaffolding is not None
                else None
            ),
            "stages": [
                {"name": stage.name, **stage.detail} for stage in self.stages
            ],
            "estimated_cluster_seconds": round(self.estimated_seconds(), 6),
        }
        if reference_length:
            payload["reference_length"] = reference_length
        if stage_seconds is not None:
            payload["stage_seconds"] = {
                name: round(seconds, 6) for name, seconds in stage_seconds.items()
            }
        if wall_seconds is not None:
            payload["wall_seconds"] = round(wall_seconds, 6)
        return payload

    def labeling_summary(self, which: str) -> Dict[str, int]:
        """Supersteps/messages/runtime proxy for one labeling invocation.

        ``which`` is ``"kmers"`` (the first ② of the workflow, Table II)
        or ``"contigs"`` (the second ②, Table III).
        """
        jobs = self.labeling_metrics.get(which, [])
        return {
            "supersteps": sum(job.num_supersteps for job in jobs),
            "messages": sum(job.total_messages for job in jobs),
            "estimated_seconds": sum(CostModel().job_seconds(job) for job in jobs),
        }
