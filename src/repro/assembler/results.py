"""Assembly results: what an end user gets back from the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dbg.graph import DeBruijnGraph
from ..dna.io_fastq import FastaRecord, write_fasta
from ..pregel.cost_model import ClusterProfile, CostModel
from ..pregel.metrics import JobMetrics, PipelineMetrics
from ..scaffold.scaffolder import ScaffoldingResult
from .config import AssemblyConfig


@dataclass
class StageSummary:
    """One pipeline stage's headline numbers (shown by examples/reports)."""

    name: str
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class AssemblyResult:
    """Everything produced by one :class:`~repro.assembler.pipeline.PPAAssembler` run."""

    config: AssemblyConfig
    graph: DeBruijnGraph
    metrics: PipelineMetrics
    stages: List[StageSummary] = field(default_factory=list)
    labeling_metrics: Dict[str, List[JobMetrics]] = field(default_factory=dict)
    scaffolding: Optional[ScaffoldingResult] = None

    # ------------------------------------------------------------------
    # contig access
    # ------------------------------------------------------------------
    @property
    def contigs(self) -> List[str]:
        """All assembled contig sequences, longest first."""
        return sorted(self.graph.contig_sequences(), key=len, reverse=True)

    def contigs_longer_than(self, min_length: int) -> List[str]:
        """Contigs above a length cutoff (QUAST uses 500 bp by default)."""
        return [sequence for sequence in self.contigs if len(sequence) >= min_length]

    def num_contigs(self, min_length: int = 0) -> int:
        return len(self.contigs_longer_than(min_length))

    def total_length(self, min_length: int = 0) -> int:
        return sum(len(sequence) for sequence in self.contigs_longer_than(min_length))

    def largest_contig(self) -> int:
        contigs = self.contigs
        return len(contigs[0]) if contigs else 0

    def write_fasta(self, path) -> int:
        """Write the contigs to a FASTA file; returns the record count."""
        records = [
            FastaRecord(name=f"contig_{index}_len_{len(sequence)}", sequence=sequence)
            for index, sequence in enumerate(self.contigs)
        ]
        return write_fasta(records, path)

    # ------------------------------------------------------------------
    # scaffold access (populated when config.scaffold ran on read pairs)
    # ------------------------------------------------------------------
    @property
    def scaffolds(self) -> List[str]:
        """All scaffold sequences, longest first (empty if the stage didn't run)."""
        if self.scaffolding is None:
            return []
        return self.scaffolding.sequences

    def scaffolds_longer_than(self, min_length: int) -> List[str]:
        return [sequence for sequence in self.scaffolds if len(sequence) >= min_length]

    def write_scaffold_fasta(self, path) -> int:
        """Write the scaffolds to a FASTA file; returns the record count."""
        if self.scaffolding is None:
            raise ValueError(
                "no scaffolds to write: the scaffolding stage did not run "
                "(enable AssemblyConfig.scaffold and assemble read pairs)"
            )
        return self.scaffolding.write_fasta(path)

    # ------------------------------------------------------------------
    # cost model hooks
    # ------------------------------------------------------------------
    def estimated_seconds(self, profile: Optional[ClusterProfile] = None) -> float:
        """Simulated end-to-end execution time (Figure 12's measurement)."""
        return CostModel(profile).pipeline_seconds(self.metrics)

    def estimated_breakdown(self, profile: Optional[ClusterProfile] = None) -> Dict[str, float]:
        """Per-job simulated seconds."""
        return CostModel(profile).breakdown(self.metrics)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def stage(self, name: str) -> Optional[StageSummary]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def add_stage(self, name: str, **detail: object) -> None:
        self.stages.append(StageSummary(name=name, detail=dict(detail)))

    def labeling_summary(self, which: str) -> Dict[str, int]:
        """Supersteps/messages/runtime proxy for one labeling invocation.

        ``which`` is ``"kmers"`` (the first ② of the workflow, Table II)
        or ``"contigs"`` (the second ②, Table III).
        """
        jobs = self.labeling_metrics.get(which, [])
        return {
            "supersteps": sum(job.num_supersteps for job in jobs),
            "messages": sum(job.total_messages for job in jobs),
            "estimated_seconds": sum(CostModel().job_seconds(job) for job in jobs),
        }
