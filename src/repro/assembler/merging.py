"""Operation ③ — contig merging (Section IV-B).

Takes the labelled unambiguous vertices (chain nodes) and merges each
label group into one contig through a mini-MapReduce procedure: the
map side keys every chain node by its contig label, the reduce side
builds a hash table over the group, orders the vertices by walking from
a contig end, and stitches their sequences (respecting orientation and
the (k-1)-character overlap between consecutive elements).

The reduce side also implements the paper's merge-time tip check: if
the path dangles (one of its ends is a dead end) and its total length
is not above the tip-length threshold, the contig is discarded
instead of emitted.

After the groups are merged the operation rewires the de Bruijn graph:
merged chain nodes disappear, the new contig vertices are added, and
every ambiguous k-mer that used to border a merged path now stores a
"via contig" adjacency pointing at the ambiguous k-mer on the other end
of the new contig (Section IV-A's contig-neighbour triplet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..dbg.contig_vertex import ContigEnd, ContigVertexData
from ..dbg.graph import DeBruijnGraph
from ..dbg.ids import ContigIdAllocator
from ..dbg.kmer_vertex import ContigLink
from ..dbg.polarity import PORT_IN, PORT_OUT, other_port
from ..dna.encoding import NULL_ID
from ..dna.sequence import reverse_complement
from ..errors import GraphFormatError
from ..workflow.executor import StageExecutor
from ..pregel.partitioner import HashPartitioner
from .chain import ChainGraph, ChainLink, ChainNode, KIND_CONTIG
from .config import AssemblyConfig
from .labeling import LabelingResult


@dataclass
class MergeBoundary:
    """How one end of a freshly merged contig attaches to the graph."""

    ambiguous_kmer: Optional[int]  # None for a dead end
    ambiguous_port: Optional[int]
    edge_coverage: int
    terminal_node: int  # the chain node at this end of the path


@dataclass
class MergedContig:
    """One stitched contig before it is written back into the graph."""

    sequence: str
    coverage: int
    member_nodes: List[int]
    start: MergeBoundary
    end: MergeBoundary
    is_cycle: bool = False


@dataclass
class DroppedTip:
    """A dangling path that the merge-time tip check discarded."""

    member_nodes: List[int]
    length: int
    boundaries: List[MergeBoundary] = field(default_factory=list)


@dataclass
class MergingResult:
    """Output of operation ③."""

    contigs_created: List[int]
    tips_dropped: int
    cycles_merged: int


# ----------------------------------------------------------------------
# stitching one group
# ----------------------------------------------------------------------
def _oriented_sequence(node: ChainNode, entry_port: int) -> str:
    """Node sequence read in the direction of the walk.

    Entering through the node's 5' side (``PORT_IN``) means the walk
    reads the stored sequence forward; entering through the 3' side
    means the walk reads its reverse complement.
    """
    if entry_port == PORT_IN:
        return node.sequence
    return reverse_complement(node.sequence)


def _boundary_from_link(link: Optional[ChainLink], terminal_node: int) -> MergeBoundary:
    if link is None:
        return MergeBoundary(
            ambiguous_kmer=None, ambiguous_port=None, edge_coverage=0, terminal_node=terminal_node
        )
    return MergeBoundary(
        ambiguous_kmer=link.boundary_kmer,
        ambiguous_port=link.boundary_port,
        edge_coverage=link.edge_coverage,
        terminal_node=terminal_node,
    )


def _stitch_group(
    group_nodes: List[ChainNode],
    k: int,
) -> Tuple[Optional[MergedContig], Optional[str]]:
    """Order and stitch one label group.

    Returns ``(merged contig, error)``; ``error`` is a description when
    the group is structurally inconsistent (which indicates a labeling
    bug and is surfaced loudly by the caller).
    """
    by_id = {node.node_id: node for node in group_nodes}

    # Pick the starting vertex: a path end if one exists, otherwise the
    # group is a cycle and any vertex will do (paper: "we start
    # stitching from an arbitrary vertex").
    start_node = None
    start_entry_port = None
    for node in sorted(group_nodes, key=lambda item: item.node_id):
        for port in (PORT_IN, PORT_OUT):
            link = node.link(port)
            is_external = (
                link is None
                or link.is_boundary
                or link.neighbor_id not in by_id
            )
            if is_external:
                start_node = node
                start_entry_port = port
                break
        if start_node is not None:
            break

    # No external entry anywhere means the group is a pure cycle; the
    # distinction matters again when the walk revisits a node below.
    pure_cycle = start_node is None
    is_cycle = pure_cycle
    if pure_cycle:
        start_node = min(group_nodes, key=lambda item: item.node_id)
        start_entry_port = PORT_IN

    # Walk the path, collecting oriented sequences.
    sequence_parts: List[str] = []
    member_nodes: List[int] = []
    coverages: List[int] = []
    visited = set()

    current = start_node
    entry_port = start_entry_port
    previous_node: Optional[ChainNode] = None
    final_exit_link: Optional[ChainLink] = None

    while True:
        if current.node_id in visited:
            # Returned to an already stitched vertex.  For a pure cycle
            # this closes the loop; a walk that *started* at an external
            # boundary can only get here through a self-loop (a hairpin
            # whose far port links back to itself), which terminates the
            # contig like a dead end — it must stay a path so the start
            # boundary is still rewired, otherwise the bordering
            # ambiguous k-mer keeps a dangling edge into the merged
            # (and deleted) node.
            is_cycle = pure_cycle
            break
        visited.add(current.node_id)
        member_nodes.append(current.node_id)
        coverages.append(current.coverage)
        sequence_parts.append(_oriented_sequence(current, entry_port))

        exit_port = other_port(entry_port)
        exit_link = current.link(exit_port)
        leaves_group = (
            exit_link is None
            or exit_link.is_boundary
            or exit_link.neighbor_id not in by_id
        )
        if leaves_group:
            final_exit_link = exit_link
            break

        coverages.append(exit_link.edge_coverage)
        next_node = by_id[exit_link.neighbor_id]
        next_entry = next_node.port_towards(current.node_id)
        if next_entry is None:
            return None, (
                f"chain node {exit_link.neighbor_id:#x} has no link back to "
                f"{current.node_id:#x}"
            )
        previous_node = current
        current = next_node
        entry_port = next_entry

    if len(member_nodes) != len(by_id) and not is_cycle:
        return None, (
            f"walk visited {len(member_nodes)} of {len(by_id)} nodes in the group"
        )

    # Stitch the oriented sequences; consecutive elements overlap by k-1.
    overlap = k - 1
    stitched = sequence_parts[0]
    for part in sequence_parts[1:]:
        if overlap and stitched[-overlap:] != part[:overlap]:
            return None, "consecutive chain elements do not overlap by k-1 characters"
        stitched += part[overlap:]

    coverage = min(coverages) if coverages else 0
    start_link = start_node.link(start_entry_port)
    start_boundary = _boundary_from_link(
        None if is_cycle else start_link, start_node.node_id
    )
    end_boundary = _boundary_from_link(
        None if is_cycle else final_exit_link, member_nodes[-1]
    )

    return (
        MergedContig(
            sequence=stitched,
            coverage=coverage,
            member_nodes=member_nodes,
            start=start_boundary,
            end=end_boundary,
            is_cycle=is_cycle,
        ),
        None,
    )


# ----------------------------------------------------------------------
# the operation
# ----------------------------------------------------------------------
def merge_contigs(
    graph: DeBruijnGraph,
    labeling: LabelingResult,
    config: AssemblyConfig,
    job_chain: StageExecutor,
    allocator: Optional[ContigIdAllocator] = None,
) -> MergingResult:
    """Run operation ③: group by label, stitch, and rewire the graph."""
    allocator = allocator or ContigIdAllocator()
    chain = labeling.chain
    partitioner = HashPartitioner(config.num_workers)

    def map_node(node_id: int) -> Iterable[Tuple[int, int]]:
        label = labeling.labels.get(node_id)
        if label is None:
            return
        yield label, node_id

    stitched_groups: List[MergedContig] = []
    dropped: List[DroppedTip] = []
    errors: List[str] = []

    def reduce_group(label: int, node_ids: List[int]) -> Iterable[MergedContig]:
        nodes = [chain.nodes[node_id] for node_id in node_ids if node_id in chain.nodes]
        if not nodes:
            return
        merged, error = _stitch_group(nodes, graph.k)
        if error is not None:
            errors.append(f"label {label:#x}: {error}")
            return
        # Merge-time tip check (Section IV-B, op ③): a dangling short
        # path is a tip and is not emitted as a contig.
        dangles = merged.start.ambiguous_kmer is None or merged.end.ambiguous_kmer is None
        if (
            not merged.is_cycle
            and dangles
            and len(merged.sequence) <= config.tip_length_threshold
        ):
            dropped.append(
                DroppedTip(
                    member_nodes=merged.member_nodes,
                    length=len(merged.sequence),
                    boundaries=[merged.start, merged.end],
                )
            )
            return
        yield merged

    mapreduce = job_chain.run_mapreduce(
        name="contig-merging/group-and-stitch",
        records=list(chain.nodes),
        map_fn=map_node,
        reduce_fn=reduce_group,
    )
    stitched_groups = list(mapreduce.outputs)

    if errors:
        raise GraphFormatError(
            "contig merging found inconsistent label groups: " + "; ".join(errors[:5])
        )

    created_ids = _apply_to_graph(graph, stitched_groups, dropped, allocator, partitioner)
    return MergingResult(
        contigs_created=created_ids,
        tips_dropped=len(dropped),
        cycles_merged=sum(1 for merged in stitched_groups if merged.is_cycle),
    )


def _apply_to_graph(
    graph: DeBruijnGraph,
    merged_contigs: List[MergedContig],
    dropped: List[DroppedTip],
    allocator: ContigIdAllocator,
    partitioner: HashPartitioner,
) -> List[int]:
    """Write merged contigs into the graph and clean up merged/dropped nodes."""
    created: List[int] = []

    for merged in merged_contigs:
        worker = partitioner.worker_for(merged.member_nodes[0])
        contig_id = allocator.allocate(worker)
        created.append(contig_id)

        in_end = _contig_end(merged.start)
        out_end = _contig_end(merged.end)
        contig = ContigVertexData(
            contig_id=contig_id,
            sequence=merged.sequence,
            coverage=merged.coverage,
            in_end=in_end,
            out_end=out_end,
            member_kmers=list(merged.member_nodes),
        )

        _remove_members(graph, merged.member_nodes)
        graph.add_contig(contig)

        # Rewire the two bordering ambiguous k-mers (if any) so they see
        # the new contig as a labelled edge to the k-mer on its far end.
        _attach_boundary(
            graph,
            boundary=merged.start,
            far_boundary=merged.end,
            contig=contig,
        )
        _attach_boundary(
            graph,
            boundary=merged.end,
            far_boundary=merged.start,
            contig=contig,
        )

    for tip in dropped:
        _remove_members(graph, tip.member_nodes)
        for boundary in tip.boundaries:
            _detach_boundary(graph, boundary)

    return created


def _contig_end(boundary: MergeBoundary) -> ContigEnd:
    if boundary.ambiguous_kmer is None:
        return ContigEnd(neighbor_id=NULL_ID, neighbor_port=0, edge_coverage=boundary.edge_coverage)
    return ContigEnd(
        neighbor_id=boundary.ambiguous_kmer,
        neighbor_port=boundary.ambiguous_port if boundary.ambiguous_port is not None else 0,
        edge_coverage=boundary.edge_coverage,
    )


def _remove_members(graph: DeBruijnGraph, member_nodes: List[int]) -> None:
    """Delete merged chain nodes (k-mers or earlier contigs) from the graph."""
    for node_id in member_nodes:
        if node_id in graph.kmers:
            del graph.kmers[node_id]
        elif node_id in graph.contigs:
            del graph.contigs[node_id]


def _attach_boundary(
    graph: DeBruijnGraph,
    boundary: MergeBoundary,
    far_boundary: MergeBoundary,
    contig: ContigVertexData,
) -> None:
    """Give a bordering ambiguous k-mer its via-contig adjacency entry."""
    if boundary.ambiguous_kmer is None:
        return
    ambiguous = graph.kmers.get(boundary.ambiguous_kmer)
    if ambiguous is None:
        return
    # Drop the old adjacency entry that pointed into the merged path.
    # The terminal node is a k-mer in the first round (direct adjacency)
    # and may be an earlier contig in later rounds (via-contig adjacency).
    ambiguous.remove_adjacency(boundary.terminal_node)
    ambiguous.remove_contig_adjacency(boundary.terminal_node)
    far_kmer = far_boundary.ambiguous_kmer if far_boundary.ambiguous_kmer is not None else NULL_ID
    far_port = far_boundary.ambiguous_port if far_boundary.ambiguous_port is not None else 0
    my_port = boundary.ambiguous_port if boundary.ambiguous_port is not None else 0
    ambiguous.add_adjacency(
        neighbor_id=far_kmer,
        my_port=my_port,
        neighbor_port=far_port,
        coverage=boundary.edge_coverage,
        via_contig=ContigLink(
            contig_id=contig.contig_id,
            length=contig.length,
            coverage=contig.coverage,
        ),
    )


def _detach_boundary(graph: DeBruijnGraph, boundary: MergeBoundary) -> None:
    """Remove the edge a dropped tip used to have into an ambiguous k-mer."""
    if boundary.ambiguous_kmer is None:
        return
    ambiguous = graph.kmers.get(boundary.ambiguous_kmer)
    if ambiguous is None:
        return
    ambiguous.remove_adjacency(boundary.terminal_node)
    ambiguous.remove_contig_adjacency(boundary.terminal_node)
