"""The PPA-assembler workflow driver.

The paper's experiments use the workflow ① ② ③ ④ ⑤ ⑥ ② ③ of Figure 10:
build the de Bruijn graph, label and merge contigs, correct errors
(bubble filtering then tip removing), and finally label and merge once
more so that contigs grow across junctions that error correction
resolved.  :class:`PPAAssembler` implements exactly that workflow; the
individual operations remain available as functions for users who want
to compose their own strategy (the toolkit spirit of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..dbg.ids import ContigIdAllocator
from ..dna.io_fastq import Read, ReadPair, reads_from_pairs
from ..pregel.job import JobChain
from ..scaffold.scaffolder import scaffold_contigs
from .bubble import filter_bubbles
from .config import AssemblyConfig
from .construction import build_dbg
from .labeling import label_contigs
from .merging import merge_contigs
from .results import AssemblyResult
from .tips import remove_tips


class PPAAssembler:
    """End-to-end assembler implementing the paper's default workflow."""

    def __init__(self, config: Optional[AssemblyConfig] = None) -> None:
        self.config = config or AssemblyConfig()

    def assemble(
        self,
        reads: Iterable[Read],
        pairs: Optional[List[ReadPair]] = None,
    ) -> AssemblyResult:
        """Assemble ``reads`` into contigs using workflow ①②③④⑤(⑥②③)*.

        When ``config.scaffold`` is set and ``pairs`` carries the reads'
        pairing (normally supplied via :meth:`assemble_paired`), the
        paired-end scaffolding stage runs after the final merge.
        """
        config = self.config
        job_chain = JobChain(
            num_workers=config.num_workers,
            backend=config.backend,
            columnar_messages=config.use_vectorized,
        )
        allocator = ContigIdAllocator()

        result = AssemblyResult(
            config=config,
            graph=None,  # type: ignore[arg-type]  # filled in below
            metrics=job_chain.pipeline_metrics,
        )

        # ── ① DBG construction ──────────────────────────────────────────
        construction = build_dbg(reads, config, job_chain)
        graph = construction.graph
        result.graph = graph
        result.add_stage(
            "dbg-construction",
            kmer_vertices=graph.kmer_count(),
            distinct_kplus1mers=construction.distinct_kplus1mers,
            filtered_kplus1mers=construction.filtered_kplus1mers,
        )

        # ── ② contig labeling + ③ contig merging (first round) ───────────
        labeling = label_contigs(graph, config, job_chain, include_contigs=False)
        result.labeling_metrics["kmers"] = labeling.metrics
        result.add_stage(
            "contig-labeling/kmers",
            method=labeling.method,
            labelled_vertices=len(labeling.labels),
            supersteps=labeling.num_supersteps,
            messages=labeling.num_messages,
            cycle_fallback=labeling.used_cycle_fallback,
        )

        merging = merge_contigs(graph, labeling, config, job_chain, allocator)
        result.add_stage(
            "contig-merging/first-round",
            contigs=len(merging.contigs_created),
            tips_dropped=merging.tips_dropped,
            cycles=merging.cycles_merged,
        )

        # ── ④ bubble filtering + ⑤ tip removing, then regrow (⑥ ② ③) ────
        for round_index in range(config.error_correction_rounds):
            bubbles = filter_bubbles(graph, config, job_chain)
            tips = remove_tips(graph, config, job_chain)
            result.add_stage(
                f"error-correction/round-{round_index + 1}",
                bubbles_pruned=bubbles.num_pruned,
                tip_phases=tips.phases,
                tips_removed=tips.tips_removed,
            )

            relabeling = label_contigs(graph, config, job_chain, include_contigs=True)
            if round_index == 0:
                result.labeling_metrics["contigs"] = relabeling.metrics
            result.add_stage(
                f"contig-labeling/contigs-round-{round_index + 1}",
                method=relabeling.method,
                labelled_vertices=len(relabeling.labels),
                supersteps=relabeling.num_supersteps,
                messages=relabeling.num_messages,
                cycle_fallback=relabeling.used_cycle_fallback,
            )

            remerging = merge_contigs(graph, relabeling, config, job_chain, allocator)
            result.add_stage(
                f"contig-merging/round-{round_index + 2}",
                contigs=len(remerging.contigs_created),
                tips_dropped=remerging.tips_dropped,
                cycles=remerging.cycles_merged,
            )

        # ── optional paired-end scaffolding (post-merge) ────────────────
        if config.scaffold and pairs:
            scaffolding = scaffold_contigs(
                result.contigs,
                pairs,
                job_chain,
                seed_k=config.k,
                min_links=config.scaffold_min_links,
                insert_size=config.scaffold_insert_size,
            )
            result.scaffolding = scaffolding
            result.add_stage(
                "scaffolding",
                contigs=len(scaffolding.contigs),
                scaffolds=len(scaffolding.scaffolds),
                joined=scaffolding.num_joined(),
                links_used=scaffolding.num_links_used,
                pairs_mapped=scaffolding.num_pairs_mapped,
                insert_size=round(scaffolding.insert_size, 1),
            )

        return result

    def assemble_paired(self, pairs: Iterable[ReadPair]) -> AssemblyResult:
        """Assemble a paired-end library.

        Both mates feed the de Bruijn graph exactly as unpaired reads
        would (the paper's workflow is pairing-agnostic); the pairing
        itself is kept aside and consumed by the scaffolding stage when
        ``config.scaffold`` is enabled.
        """
        pair_list = list(pairs)
        return self.assemble(reads_from_pairs(pair_list), pairs=pair_list)


def assemble_reads(
    reads: Iterable[Read],
    config: Optional[AssemblyConfig] = None,
) -> AssemblyResult:
    """One-call convenience wrapper around :class:`PPAAssembler`."""
    return PPAAssembler(config).assemble(reads)


def assemble_paired_reads(
    pairs: Iterable[ReadPair],
    config: Optional[AssemblyConfig] = None,
) -> AssemblyResult:
    """One-call convenience wrapper for paired-end libraries."""
    return PPAAssembler(config).assemble_paired(pairs)
