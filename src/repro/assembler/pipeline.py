"""The PPA-assembler workflow driver.

The paper's experiments use the workflow ① ② ③ ④ ⑤ ⑥ ② ③ of Figure 10:
build the de Bruijn graph, label and merge contigs, correct errors
(bubble filtering then tip removing), and finally label and merge once
more so that contigs grow across junctions that error correction
resolved.  :func:`build_assembly_workflow` declares exactly that
workflow as a :class:`~repro.workflow.Workflow` — the five operations
as named stages, with paired-end scaffolding as a conditional branch —
and :class:`PPAAssembler` executes it through a
:class:`~repro.workflow.WorkflowRunner`, which is where backend
selection, progress hooks, and checkpoint/resume come from.  The
individual operations remain available as functions for users who want
to compose their own strategy (the toolkit spirit of the paper).
"""

from __future__ import annotations

from functools import partial
from typing import Iterable, List, Optional

from ..dbg.ids import ContigIdAllocator
from ..dna.io_fastq import Read, ReadPair, reads_from_pairs
from ..scaffold.scaffolder import scaffold_contigs
from ..workflow import BranchStage, ConvertStage, Workflow, WorkflowHooks, WorkflowRunner
from .bubble import filter_bubbles
from .config import AssemblyConfig
from .construction import build_dbg
from .labeling import label_contigs
from .merging import merge_contigs
from .results import AssemblyResult
from .tips import remove_tips

#: Name of the declared assembly workflow (used in checkpoint files).
ASSEMBLY_WORKFLOW_NAME = "ppa-assembly"


# ----------------------------------------------------------------------
# the five operations as workflow stage bodies
#
# Every function reads and writes the workflow context: inputs and
# intermediate products live in ``ctx.state`` (which is what gets
# checkpointed), metered sub-jobs run through the context's executor
# services, and the growing AssemblyResult carries the user-facing
# stage summaries.
# ----------------------------------------------------------------------
def _stage_construction(ctx) -> None:
    """① DBG construction; also seeds the result and the id allocator."""
    config: AssemblyConfig = ctx.require("config")
    construction = build_dbg(ctx.require("reads"), config, ctx)
    # No later stage reads the raw reads (scaffolding uses ``pairs``),
    # so drop them: keeps peak memory at pre-workflow levels and keeps
    # every per-stage checkpoint from re-pickling the whole library.
    ctx.state.pop("reads", None)
    graph = construction.graph
    result = AssemblyResult(config=config, graph=graph, metrics=ctx.pipeline_metrics)
    ctx.state["result"] = result
    ctx.state["allocator"] = ContigIdAllocator()
    result.add_stage(
        "dbg-construction",
        kmer_vertices=graph.kmer_count(),
        distinct_kplus1mers=construction.distinct_kplus1mers,
        filtered_kplus1mers=construction.filtered_kplus1mers,
    )


def _stage_label_kmers(ctx) -> None:
    """② contig labeling over the k-mer chains (first round)."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    labeling = label_contigs(result.graph, config, ctx, include_contigs=False)
    ctx.state["labeling"] = labeling
    result.labeling_metrics["kmers"] = labeling.metrics
    result.add_stage(
        "contig-labeling/kmers",
        method=labeling.method,
        labelled_vertices=len(labeling.labels),
        supersteps=labeling.num_supersteps,
        messages=labeling.num_messages,
        cycle_fallback=labeling.used_cycle_fallback,
    )


def _stage_merge_first(ctx) -> None:
    """③ contig merging (first round)."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    merging = merge_contigs(
        result.graph, ctx.require("labeling"), config, ctx, ctx.require("allocator")
    )
    result.add_stage(
        "contig-merging/first-round",
        contigs=len(merging.contigs_created),
        tips_dropped=merging.tips_dropped,
        cycles=merging.cycles_merged,
    )


def _stage_bubbles(ctx) -> None:
    """④ bubble filtering (the summary is emitted with ⑤'s numbers)."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    ctx.state["bubbles"] = filter_bubbles(result.graph, config, ctx)


def _stage_tips(ctx, round_index: int) -> None:
    """⑤ tip removing; emits the round's combined error-correction summary."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    tips = remove_tips(result.graph, config, ctx)
    bubbles = ctx.state.pop("bubbles")
    result.add_stage(
        f"error-correction/round-{round_index}",
        bubbles_pruned=bubbles.num_pruned,
        tip_phases=tips.phases,
        tips_removed=tips.tips_removed,
    )


def _stage_relabel(ctx, round_index: int) -> None:
    """⑥② contig labeling with existing contigs participating."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    relabeling = label_contigs(result.graph, config, ctx, include_contigs=True)
    ctx.state["labeling"] = relabeling
    if round_index == 1:
        result.labeling_metrics["contigs"] = relabeling.metrics
    result.add_stage(
        f"contig-labeling/contigs-round-{round_index}",
        method=relabeling.method,
        labelled_vertices=len(relabeling.labels),
        supersteps=relabeling.num_supersteps,
        messages=relabeling.num_messages,
        cycle_fallback=relabeling.used_cycle_fallback,
    )


def _stage_remerge(ctx, round_index: int) -> None:
    """③ contig merging after error correction."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    remerging = merge_contigs(
        result.graph, ctx.require("labeling"), config, ctx, ctx.require("allocator")
    )
    result.add_stage(
        f"contig-merging/round-{round_index + 1}",
        contigs=len(remerging.contigs_created),
        tips_dropped=remerging.tips_dropped,
        cycles=remerging.cycles_merged,
    )


def _has_pairs(ctx) -> bool:
    """Scaffolding branch condition: did the caller supply read pairs?"""
    return bool(ctx.state.get("pairs"))


def _stage_scaffold(ctx) -> None:
    """Paired-end scaffolding over the final contigs."""
    config: AssemblyConfig = ctx.require("config")
    result: AssemblyResult = ctx.require("result")
    scaffolding = scaffold_contigs(
        result.contigs,
        ctx.require("pairs"),
        ctx,
        seed_k=config.k,
        min_links=config.scaffold_min_links,
        insert_size=config.scaffold_insert_size,
    )
    result.scaffolding = scaffolding
    result.add_stage(
        "scaffolding",
        contigs=len(scaffolding.contigs),
        scaffolds=len(scaffolding.scaffolds),
        joined=scaffolding.num_joined(),
        links_used=scaffolding.num_links_used,
        pairs_mapped=scaffolding.num_pairs_mapped,
        insert_size=round(scaffolding.insert_size, 1),
    )


def build_assembly_workflow(config: AssemblyConfig) -> Workflow:
    """Declare the paper's default workflow ①②③(④⑤⑥②③)* for ``config``.

    The returned DAG is linear — exactly Figure 10's arrows — with one
    group of four stages per error-correction round, plus a
    :class:`~repro.workflow.BranchStage` for scaffolding when
    ``config.scaffold`` is set (taken only when read pairs are
    present).  The workflow is data-free: execute it with a
    :class:`~repro.workflow.WorkflowRunner` and a state holding
    ``reads`` (and optionally ``pairs``), or just inspect/print it
    (``repro-assemble --list-stages``).
    """
    workflow = Workflow(
        ASSEMBLY_WORKFLOW_NAME,
        description="PPA-assembler default workflow ①②③(④⑤⑥②③)* of Figure 10",
    )
    workflow.add(ConvertStage("dbg-construction", _stage_construction))
    workflow.add(ConvertStage("contig-labeling/kmers", _stage_label_kmers))
    workflow.add(ConvertStage("contig-merging/first-round", _stage_merge_first))
    for round_index in range(1, config.error_correction_rounds + 1):
        workflow.add(
            ConvertStage(f"bubble-filtering/round-{round_index}", _stage_bubbles)
        )
        workflow.add(
            ConvertStage(
                f"tip-removing/round-{round_index}",
                partial(_stage_tips, round_index=round_index),
            )
        )
        workflow.add(
            ConvertStage(
                f"contig-labeling/contigs-round-{round_index}",
                partial(_stage_relabel, round_index=round_index),
            )
        )
        workflow.add(
            ConvertStage(
                f"contig-merging/round-{round_index + 1}",
                partial(_stage_remerge, round_index=round_index),
            )
        )
    if config.scaffold:
        workflow.add(
            BranchStage(
                "scaffolding",
                condition=_has_pairs,
                then_stages=[ConvertStage("scaffolding/paired-end", _stage_scaffold)],
            )
        )
    return workflow


class PPAAssembler:
    """End-to-end assembler implementing the paper's default workflow."""

    def __init__(self, config: Optional[AssemblyConfig] = None) -> None:
        self.config = config or AssemblyConfig()

    def workflow(self) -> Workflow:
        """The declared assembly workflow for this assembler's config."""
        return build_assembly_workflow(self.config)

    def runner(
        self,
        checkpoint_dir=None,
        hooks: Optional[WorkflowHooks] = None,
    ) -> WorkflowRunner:
        """A runner configured the way this assembler executes workflows."""
        return WorkflowRunner(
            num_workers=self.config.num_workers,
            backend=self.config.backend,
            columnar_messages=self.config.use_vectorized,
            partitioner=self.config.partitioner,
            message_plane=self.config.message_plane,
            memory_budget_mb=self.config.memory_budget_mb,
            checkpoint_dir=checkpoint_dir,
            hooks=hooks,
        )

    def assemble(
        self,
        reads: Iterable[Read],
        pairs: Optional[List[ReadPair]] = None,
        checkpoint_dir=None,
        resume: bool = False,
        hooks: Optional[WorkflowHooks] = None,
    ) -> AssemblyResult:
        """Assemble ``reads`` into contigs using workflow ①②③④⑤(⑥②③)*.

        When ``config.scaffold`` is set and ``pairs`` carries the reads'
        pairing (normally supplied via :meth:`assemble_paired`), the
        paired-end scaffolding branch runs after the final merge.

        ``checkpoint_dir`` persists the workflow state after every
        stage; ``resume=True`` then continues a previous run from its
        last completed stage (bit-identically), or starts fresh when no
        checkpoint exists yet.
        """
        workflow = build_assembly_workflow(self.config)
        runner = self.runner(checkpoint_dir=checkpoint_dir, hooks=hooks)
        state = {
            "config": self.config,
            "reads": list(reads),
            "pairs": list(pairs) if pairs is not None else None,
        }
        ctx = runner.run(workflow, state=state, resume=resume)
        return ctx.state["result"]

    def assemble_paired(
        self,
        pairs: Iterable[ReadPair],
        checkpoint_dir=None,
        resume: bool = False,
        hooks: Optional[WorkflowHooks] = None,
    ) -> AssemblyResult:
        """Assemble a paired-end library.

        Both mates feed the de Bruijn graph exactly as unpaired reads
        would (the paper's workflow is pairing-agnostic); the pairing
        itself is kept aside and consumed by the scaffolding branch
        when ``config.scaffold`` is enabled.
        """
        pair_list = list(pairs)
        return self.assemble(
            reads_from_pairs(pair_list),
            pairs=pair_list,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            hooks=hooks,
        )


def assemble_reads(
    reads: Iterable[Read],
    config: Optional[AssemblyConfig] = None,
) -> AssemblyResult:
    """One-call convenience wrapper around :class:`PPAAssembler`."""
    return PPAAssembler(config).assemble(reads)


def assemble_paired_reads(
    pairs: Iterable[ReadPair],
    config: Optional[AssemblyConfig] = None,
) -> AssemblyResult:
    """One-call convenience wrapper for paired-end libraries."""
    return PPAAssembler(config).assemble_paired(pairs)
