"""Assembly configuration.

The knobs collected here are exactly the ones the paper exposes in its
experiment section: ``k`` (31 in the paper), the coverage threshold θ
used to drop low-coverage (k+1)-mers during DBG construction, the edit
distance threshold for bubble filtering (5 in the paper), the length
threshold for tip removing (80 in the paper), the contig-labeling
method (bidirectional list ranking or simplified S-V), and the number
of simulated workers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..dna.encoding import MAX_K
from ..errors import PipelineConfigError, UnknownBackendError
from ..pregel.partitioner import ensure_partitioner
from ..runtime import ensure_backend
from ..runtime.base import ensure_message_plane

#: Contig-labeling method names.
LABELING_LIST_RANKING = "list_ranking"
LABELING_SIMPLIFIED_SV = "sv"


@dataclass(frozen=True)
class AssemblyConfig:
    """Parameters of one assembly run.

    Attributes
    ----------
    k:
        k-mer size; the DBG is built from (k+1)-mers.  The paper uses
        31; the scaled-down benchmark datasets use smaller values so
        that repeats still occur at laptop scale.
    coverage_threshold:
        θ — (k+1)-mers observed at most this many times are discarded
        during DBG construction (they are almost certainly errors).
    tip_length_threshold:
        Dangling paths at most this long are removed as tips.
    bubble_edit_distance:
        Alternative paths between the same pair of ambiguous vertices
        are collapsed when their edit distance is below this value.
    labeling_method:
        ``"list_ranking"`` (default, the paper's preferred method) or
        ``"sv"`` for the simplified S-V alternative.
    error_correction_rounds:
        How many times to run the ④⑤ error-correction pair followed by
        re-labeling/merging (the paper's workflow uses one round:
        ①②③④⑤⑥②③).
    num_workers:
        Pregel workers (simulated slots under the serial backend, real
        worker processes under the multiprocess backend).
    backend:
        Execution runtime for every Pregel stage: ``"serial"`` (default,
        the exact in-process cluster simulation the paper's tables are
        reproduced from) or ``"multiprocess"`` (shared-nothing worker
        processes for wall-clock parallelism).  Both produce identical
        contigs and metrics.
    message_plane:
        Data plane for multiprocess superstep exchange: ``"shm"``
        (default) writes columnar message batches into shared-memory
        arenas and ships only descriptors through the queues, falling
        back to ``"queue"`` automatically when ``/dev/shm`` is unusable;
        ``"queue"`` always pickles batches through the queues.  Results
        are bit-identical either way; the serial backend ignores the
        flag (it has no process boundary).
    partitioner:
        Vertex-to-worker strategy for every Pregel stage: ``"hash"``
        (default, the multiplicative hash the paper's numbers assume)
        or ``"prefix_range"`` (contiguous k-mer-prefix ranges that keep
        most DBG edges worker-local, shrinking the
        ``cross_worker_messages`` counter).  Contig IDs embed the worker
        that minted them, so runs with *different* partitioners label
        contigs differently; serial and multiprocess runs with the
        *same* partitioner stay bit-identical.
    use_vectorized:
        Run the NumPy batch kernels for the hot paths (DBG-construction
        phases and the columnar message plane).  Default on; contigs,
        aggregate histories and metrics are bit-identical either way,
        and the flag silently falls back to the scalar reference path
        when NumPy is unavailable.
    scaffold:
        Run the paired-end scaffolding stage (:mod:`repro.scaffold`)
        after the final contig merge.  Off by default — it only has
        evidence to work with when the assembler is fed read *pairs*
        (:meth:`~repro.assembler.pipeline.PPAAssembler.assemble_paired`).
    scaffold_min_links:
        Minimum number of read pairs that must support a contig link
        before scaffolding trusts it (2 by default; 1 admits chimeric
        single-pair joins).
    scaffold_insert_size:
        The paired-end library's insert size.  ``None`` (default) lets
        the stage estimate it from pairs whose mates map to the same
        contig, which is what real scaffolders do.
    memory_budget_mb:
        Soft cap, in megabytes, on the live bytes the assembly holds in
        memory at once.  ``None`` (default) is unlimited.  When set,
        DBG construction streams reads in bounded chunks and spills
        sorted k-mer runs, and the Pregel runtime spills idle worker
        partitions and staged message batches to disk
        (:mod:`repro.store`).  Results are bit-identical at any budget;
        only peak memory and wall-clock change.  A float so tests can
        force heavy spilling on tiny datasets (e.g. ``0.05``).
    """

    k: int = 21
    coverage_threshold: int = 1
    tip_length_threshold: int = 80
    bubble_edit_distance: int = 5
    labeling_method: str = LABELING_LIST_RANKING
    error_correction_rounds: int = 1
    num_workers: int = 4
    backend: str = "serial"
    message_plane: str = "shm"
    partitioner: str = "hash"
    use_vectorized: bool = True
    scaffold: bool = False
    scaffold_min_links: int = 2
    scaffold_insert_size: Optional[float] = None
    memory_budget_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if not 1 <= self.k <= MAX_K:
            raise PipelineConfigError(f"k must be in [1, {MAX_K}], got {self.k}")
        if self.k % 2 == 0:
            # Even k allows palindromic k-mers (a k-mer equal to its own
            # reverse complement), which makes the canonical-vertex DBG
            # ill-defined; assemblers — including the paper's k = 31 —
            # therefore use odd k only.
            raise PipelineConfigError(f"k must be odd to avoid palindromic k-mers, got {self.k}")
        if self.coverage_threshold < 0:
            raise PipelineConfigError(
                f"coverage_threshold must be non-negative, got {self.coverage_threshold}"
            )
        if self.tip_length_threshold < 0:
            raise PipelineConfigError(
                f"tip_length_threshold must be non-negative, got {self.tip_length_threshold}"
            )
        if self.bubble_edit_distance < 0:
            raise PipelineConfigError(
                f"bubble_edit_distance must be non-negative, got {self.bubble_edit_distance}"
            )
        if self.labeling_method not in (LABELING_LIST_RANKING, LABELING_SIMPLIFIED_SV):
            raise PipelineConfigError(
                f"labeling_method must be {LABELING_LIST_RANKING!r} or "
                f"{LABELING_SIMPLIFIED_SV!r}, got {self.labeling_method!r}"
            )
        if self.error_correction_rounds < 0:
            raise PipelineConfigError(
                f"error_correction_rounds must be non-negative, got {self.error_correction_rounds}"
            )
        if self.num_workers < 1:
            raise PipelineConfigError(f"num_workers must be positive, got {self.num_workers}")
        if self.scaffold_min_links < 1:
            raise PipelineConfigError(
                f"scaffold_min_links must be at least 1, got {self.scaffold_min_links}"
            )
        if self.scaffold_insert_size is not None and self.scaffold_insert_size <= 0:
            raise PipelineConfigError(
                f"scaffold_insert_size must be positive, got {self.scaffold_insert_size}"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise PipelineConfigError(
                f"memory_budget_mb must be positive, got {self.memory_budget_mb}"
            )
        try:
            ensure_backend(self.backend)
        except UnknownBackendError as exc:
            raise PipelineConfigError(str(exc)) from None
        try:
            ensure_message_plane(self.message_plane)
            ensure_partitioner(self.partitioner)
        except ValueError as exc:
            raise PipelineConfigError(str(exc)) from None

    def paper_defaults(self) -> "AssemblyConfig":
        """The exact parameter values used in the paper's experiments."""
        return replace(
            self,
            k=31,
            bubble_edit_distance=5,
            tip_length_threshold=80,
        )

    def with_workers(self, num_workers: int) -> "AssemblyConfig":
        """Copy of this config with a different simulated worker count."""
        return replace(self, num_workers=num_workers)

    def with_labeling(self, labeling_method: str) -> "AssemblyConfig":
        """Copy of this config with a different contig-labeling method."""
        return replace(self, labeling_method=labeling_method)

    def with_backend(self, backend: str) -> "AssemblyConfig":
        """Copy of this config with a different execution backend."""
        return replace(self, backend=backend)

    def with_message_plane(self, message_plane: str) -> "AssemblyConfig":
        """Copy of this config with a different multiprocess data plane."""
        return replace(self, message_plane=message_plane)

    def with_partitioner(self, partitioner: str) -> "AssemblyConfig":
        """Copy of this config with a different vertex partitioner."""
        return replace(self, partitioner=partitioner)

    def with_vectorized(self, use_vectorized: bool) -> "AssemblyConfig":
        """Copy of this config toggling the NumPy batch kernels."""
        return replace(self, use_vectorized=use_vectorized)

    def with_memory_budget(
        self, memory_budget_mb: Optional[float]
    ) -> "AssemblyConfig":
        """Copy of this config with a different memory budget (MB)."""
        return replace(self, memory_budget_mb=memory_budget_mb)

    @property
    def memory_budget_bytes(self) -> Optional[int]:
        """The budget in bytes, or None when unlimited."""
        if self.memory_budget_mb is None:
            return None
        return int(self.memory_budget_mb * 1024 * 1024)

    def with_scaffolding(
        self,
        scaffold: bool = True,
        min_links: Optional[int] = None,
        insert_size: Optional[float] = None,
    ) -> "AssemblyConfig":
        """Copy of this config with the scaffolding stage toggled/tuned."""
        return replace(
            self,
            scaffold=scaffold,
            scaffold_min_links=(
                self.scaffold_min_links if min_links is None else min_links
            ),
            scaffold_insert_size=(
                self.scaffold_insert_size if insert_size is None else insert_size
            ),
        )
