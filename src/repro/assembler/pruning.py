"""Optional operation — coverage-threshold contig pruning.

Section V of the paper points out that users may extend the toolkit,
giving "add coverage-threshold pruning to bubble filtering" as the
concrete example.  This module provides that extension as a standalone
operation so it can be slotted into a custom workflow (see
``examples/custom_workflow.py`` for how operations compose): contigs
whose coverage is below an absolute threshold — or below a fraction of
the median contig coverage — are removed together with the adjacency
entries of their bordering ambiguous k-mers.

Low-coverage contigs that survive bubble filtering are usually either
sequencing-error artefacts that did not form a clean bubble (no
alternative path with both endpoints shared) or contamination; pruning
them trades a little genome fraction for fewer spurious contigs, which
is exactly the trade-off the paper leaves to the user.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..dbg.graph import DeBruijnGraph
from ..workflow.executor import StageExecutor
from .config import AssemblyConfig


@dataclass
class PruningResult:
    """Output of the coverage-pruning operation."""

    contigs_pruned: List[int]
    median_coverage: float
    threshold_used: float

    @property
    def num_pruned(self) -> int:
        return len(self.contigs_pruned)


def prune_low_coverage_contigs(
    graph: DeBruijnGraph,
    config: AssemblyConfig,
    job_chain: StageExecutor,
    absolute_threshold: Optional[int] = None,
    relative_threshold: Optional[float] = 0.1,
    protect_length: int = 1_000,
) -> PruningResult:
    """Remove contigs whose coverage marks them as likely artefacts.

    Parameters
    ----------
    absolute_threshold:
        Contigs with coverage strictly below this value are pruned.
        ``None`` disables the absolute test.
    relative_threshold:
        Contigs with coverage below ``relative_threshold × median
        contig coverage`` are pruned.  ``None`` disables the relative
        test.  The default (0.1) only removes clear outliers.
    protect_length:
        Contigs at least this long are never pruned, regardless of
        coverage — a long low-coverage contig is more plausibly a
        genuine low-coverage region than an artefact.
    """
    coverages = [contig.coverage for contig in graph.contigs.values()]
    if not coverages:
        return PruningResult(contigs_pruned=[], median_coverage=0.0, threshold_used=0.0)

    median_coverage = float(statistics.median(coverages))
    thresholds = []
    if absolute_threshold is not None:
        thresholds.append(float(absolute_threshold))
    if relative_threshold is not None:
        thresholds.append(relative_threshold * median_coverage)
    threshold = max(thresholds) if thresholds else 0.0

    def map_contig(contig_id: int) -> Iterable[Tuple[int, int]]:
        contig = graph.contigs.get(contig_id)
        if contig is None:
            return
        if contig.length >= protect_length:
            return
        if contig.coverage < threshold:
            yield contig_id, contig.coverage

    def reduce_contig(contig_id: int, _coverages: List[int]) -> Iterable[int]:
        yield contig_id

    mapreduce = job_chain.run_mapreduce(
        name="coverage-pruning/select-and-drop",
        records=list(graph.contigs),
        map_fn=map_contig,
        reduce_fn=reduce_contig,
    )
    pruned = list(mapreduce.outputs)
    for contig_id in pruned:
        graph.remove_contig(contig_id)

    return PruningResult(
        contigs_pruned=pruned,
        median_coverage=median_coverage,
        threshold_used=threshold,
    )
