"""PPA-assembler: the paper's primary contribution.

The five operations of Figure 10 (DBG construction, contig labeling,
contig merging, bubble filtering, tip removing) plus the workflow
driver that chains them the way the paper's experiments do
(①②③④⑤⑥②③).  Each operation takes a
:class:`~repro.workflow.executor.StageExecutor` (or a workflow context) so its Pregel / mini-MapReduce cost
is recorded for the Figure 12 cost model, and users can compose the
operations into their own strategies.
"""

from .bubble import BubbleResult, filter_bubbles
from .chain import ChainGraph, ChainLink, ChainNode, build_chain_graph
from .config import (
    LABELING_LIST_RANKING,
    LABELING_SIMPLIFIED_SV,
    AssemblyConfig,
)
from .construction import ConstructionResult, build_dbg
from .labeling import LabelingResult, label_contigs
from .merging import MergingResult, merge_contigs
from .pipeline import (
    PPAAssembler,
    assemble_paired_reads,
    assemble_reads,
    build_assembly_workflow,
)
from .pruning import PruningResult, prune_low_coverage_contigs
from .results import AssemblyResult, StageSummary
from .tips import TipRemovalResult, remove_tips

__all__ = [
    "BubbleResult",
    "filter_bubbles",
    "ChainGraph",
    "ChainLink",
    "ChainNode",
    "build_chain_graph",
    "LABELING_LIST_RANKING",
    "LABELING_SIMPLIFIED_SV",
    "AssemblyConfig",
    "ConstructionResult",
    "build_dbg",
    "LabelingResult",
    "label_contigs",
    "MergingResult",
    "merge_contigs",
    "PPAAssembler",
    "assemble_paired_reads",
    "assemble_reads",
    "build_assembly_workflow",
    "PruningResult",
    "prune_low_coverage_contigs",
    "AssemblyResult",
    "StageSummary",
    "TipRemovalResult",
    "remove_tips",
]
