"""Operation ② — contig labeling (Section IV-B).

The operation marks every vertex of a maximal unambiguous path with a
label that uniquely identifies the path, so that operation ③ can group
the vertices and merge them into a contig.  It runs as Pregel jobs:

1. **Contig-end recognition** (2 supersteps) — every ⟨m-n⟩-typed vertex
   broadcasts its ID to its neighbours and votes to halt forever; a
   ⟨1⟩-typed vertex, or a ⟨1-1⟩-typed vertex that hears from an
   ambiguous neighbour, recognises itself as a contig end and replaces
   the offending edge with a self-loop whose target is its own ID with
   the second-most-significant bit flipped (Figure 7).
2. **Path labeling** — either *bidirectional list ranking* (the paper's
   preferred method: pointer doubling over the ID pair, two supersteps
   per round) or the *simplified S-V* algorithm run over the
   unambiguous subgraph.  Bidirectional list ranking cannot make
   progress on cycles of ⟨1-1⟩ vertices, so when the number of active
   vertices stops decreasing the operation falls back to simplified S-V
   on the remaining active vertices — exactly the paper's cycle
   handling.

The resulting label of a non-cycle path is the smaller of its two
contig-end vertex IDs; vertices on cycles get the smallest vertex ID in
the cycle.  Either way, a label uniquely identifies one maximal
unambiguous path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import TYPE_AMBIGUOUS
from ..dbg.polarity import PORT_IN, PORT_OUT
from ..dna.encoding import flip_id, is_flipped, unflip_id
from ..pregel import (
    ComputeContext,
    JobMetrics,
    PregelEngine,
    PregelJob,
    Vertex,
    sum_aggregator,
)
from ..workflow.executor import StageExecutor
from ..ppa.sv import GraphInput, components_from_result, run_simplified_sv
from .chain import ChainGraph, build_chain_graph
from .config import (
    LABELING_LIST_RANKING,
    LABELING_SIMPLIFIED_SV,
    AssemblyConfig,
)

_REQUEST = "req"
_RESPONSE = "resp"


@dataclass
class LabelingResult:
    """Output of operation ②."""

    labels: Dict[int, int]
    chain: ChainGraph
    method: str
    metrics: List[JobMetrics] = field(default_factory=list)
    used_cycle_fallback: bool = False

    @property
    def num_supersteps(self) -> int:
        return sum(job.num_supersteps for job in self.metrics)

    @property
    def num_messages(self) -> int:
        return sum(job.total_messages for job in self.metrics)

    def groups(self) -> Dict[int, List[int]]:
        """Invert the labels: ``label -> [node ids]``."""
        grouped: Dict[int, List[int]] = {}
        for node_id, label in self.labels.items():
            grouped.setdefault(label, []).append(node_id)
        return grouped


# ----------------------------------------------------------------------
# contig-end recognition (two supersteps)
# ----------------------------------------------------------------------
class _EndRecognitionVertex(Vertex):
    """Vertex program for the two-superstep contig-end recognition job.

    ``value`` is a dict with ``kind`` (``"ambiguous"`` or ``"chain"``)
    and, for chain nodes, the pair of chain-neighbour IDs (``None``
    meaning "boundary").  Ambiguous vertices broadcast their ID in
    superstep 0 and never participate again; chain nodes finalise their
    ID pair in superstep 1 (replacing boundary sides with their own
    flipped ID).
    """

    def compute(self, messages: List, ctx: ComputeContext) -> None:
        if ctx.superstep == 0:
            if self.value["kind"] == "ambiguous":
                # Broadcast our ID so neighbouring unambiguous vertices
                # recognise themselves as contig ends; never wake again.
                for neighbor in self.edges:
                    ctx.send(neighbor, self.vertex_id)
            else:
                # The chain view already records which sides border an
                # ambiguous vertex or a dead end, so the pair can be
                # finalised immediately: boundary sides become the
                # vertex's own flipped ID (the self-loop of Figure 11).
                self.value["pair"] = tuple(
                    flip_id(self.vertex_id) if side is None else side
                    for side in self.value["pair"]
                )
            self.vote_to_halt()
            return
        # Superstep 1: chain nodes woken by an ambiguous neighbour's
        # broadcast simply absorb the message (their pair is already
        # final) and halt again.
        self.vote_to_halt()


def _run_end_recognition(
    graph: DeBruijnGraph,
    chain: ChainGraph,
    job_chain: StageExecutor,
) -> Dict[int, Tuple[int, int]]:
    """Run the recognition job; returns the initial ID pair per chain node."""
    vertices: List[Vertex] = []
    chain_ids = set(chain.nodes)

    for kmer_id, vertex in graph.kmers.items():
        if vertex.vertex_type() != TYPE_AMBIGUOUS:
            continue
        # An ambiguous vertex notifies the chain element on the other
        # side of each of its adjacency entries (a k-mer, or the contig
        # materialising the edge).
        targets = []
        for adjacency in vertex.adjacencies:
            if adjacency.via_contig is not None:
                target = adjacency.via_contig.contig_id
            else:
                target = adjacency.neighbor_id
            if target in chain_ids:
                targets.append(target)
        vertices.append(
            _EndRecognitionVertex(kmer_id, value={"kind": "ambiguous"}, edges=targets)
        )

    pair_view = chain.pair_view()
    for node_id, pair in pair_view.items():
        vertices.append(
            _EndRecognitionVertex(node_id, value={"kind": "chain", "pair": pair}, edges=[])
        )

    if not vertices:
        return {}

    result = job_chain.run_pregel(
        PregelJob(name="contig-labeling/end-recognition", vertices=vertices)
    )
    pairs: Dict[int, Tuple[int, int]] = {}
    for node_id in chain.nodes:
        pairs[node_id] = tuple(result.vertices[node_id].value["pair"])
    return pairs


# ----------------------------------------------------------------------
# bidirectional list ranking
# ----------------------------------------------------------------------
class _BidirectionalLRVertex(Vertex):
    """Pointer-doubling over the ID pair (Figure 11).

    ``value``: ``{"pair": [a, b], "done": [bool, bool]}`` where a slot
    is done once it holds a flipped contig-end ID.  One round takes two
    supersteps: an even "ask" superstep in which every unfinished slot
    sends the vertex's own ID to the slot's current target, and an odd
    "answer" superstep in which each vertex answers every request with
    the pair element that is *not* the requester (tagged with its own
    ID so the requester knows which slot to update).
    """

    def compute(self, messages: List, ctx: ComputeContext) -> None:
        if ctx.superstep % 2 == 1:
            self._answer(messages, ctx)
            self.vote_to_halt()
            return
        self._apply_and_ask(messages, ctx)

    # -- odd supersteps ---------------------------------------------------
    def _answer(self, messages: List, ctx: ComputeContext) -> None:
        answered = set()
        pair = self.value["pair"]
        for kind, sender in messages:
            if kind != _REQUEST or sender in answered:
                continue
            answered.add(sender)
            away = self._element_away_from(sender)
            ctx.send(sender, (_RESPONSE, self.vertex_id, away))

    def _element_away_from(self, sender: int) -> int:
        pair = self.value["pair"]
        if pair[0] == sender and pair[1] == sender:
            # Both directions lead back to the requester: only possible
            # on a cycle; answering either element keeps the cycle
            # spinning until the fallback kicks in.
            return pair[0]
        if pair[0] == sender:
            return pair[1]
        if pair[1] == sender:
            return pair[0]
        # The requester is not (or no longer) one of our pair elements.
        # This only happens on cycles whose vertices advance at
        # different speeds; reply with the first element — correctness
        # for cycles is restored by the S-V fallback.
        return pair[0]

    # -- even supersteps ---------------------------------------------------
    def _apply_and_ask(self, messages: List, ctx: ComputeContext) -> None:
        pair = list(self.value["pair"])
        done = list(self.value["done"])

        for message in messages:
            if message[0] != _RESPONSE:
                continue
            _, responder, away = message
            for slot in (0, 1):
                if not done[slot] and pair[slot] == responder:
                    pair[slot] = away
                    if is_flipped(away):
                        done[slot] = True
                    break

        for slot in (0, 1):
            if not done[slot] and is_flipped(pair[slot]):
                done[slot] = True

        self.value["pair"] = pair
        self.value["done"] = done

        if done[0] and done[1]:
            self.vote_to_halt()
            return

        ctx.aggregate("active", 1)
        for slot in (0, 1):
            if not done[slot]:
                ctx.send(pair[slot], (_REQUEST, self.vertex_id))


class _RoundLimit:
    """Stops the LR job once cycles are the only possible survivors.

    Bidirectional list ranking finishes every non-cycle path within
    ``ceil(log2(n)) + 1`` rounds (distances double each round and no
    path has more than ``n`` vertices), so any vertex still active
    after that many rounds must lie on a cycle of ⟨1-1⟩ vertices.  The
    paper detects the same situation by watching whether the active
    count stops decreasing; the explicit round bound is equivalent for
    cycles but cannot mis-fire on long paths whose early rounds finish
    no vertex at all.
    """

    def __init__(self, num_nodes: int) -> None:
        rounds = max(1, num_nodes - 1).bit_length() + 1
        self._superstep_limit = 2 * rounds
        self._superstep = -1

    def __call__(self, snapshot: Dict[str, object]) -> bool:
        self._superstep += 1
        if (self._superstep + 1) < self._superstep_limit:
            return False
        active = int(snapshot.get("active") or 0)
        return active > 0


def _run_bidirectional_list_ranking(
    pairs: Dict[int, Tuple[int, int]],
    job_chain: StageExecutor,
) -> Tuple[Dict[int, int], List[int]]:
    """Run LR; returns (labels for finished nodes, node IDs still unfinished)."""
    vertices = [
        _BidirectionalLRVertex(
            node_id,
            value={
                "pair": list(pair),
                "done": [is_flipped(pair[0]), is_flipped(pair[1])],
            },
        )
        for node_id, pair in pairs.items()
    ]
    if not vertices:
        return {}, []

    result = job_chain.run_pregel(
        PregelJob(
            name="contig-labeling/bidirectional-list-ranking",
            vertices=vertices,
            aggregators=[sum_aggregator("active")],
            halt_condition=_RoundLimit(len(vertices)),
        )
    )

    labels: Dict[int, int] = {}
    unfinished: List[int] = []
    for node_id, vertex in result.vertices.items():
        done = vertex.value["done"]
        pair = vertex.value["pair"]
        if done[0] and done[1]:
            end_a = unflip_id(pair[0])
            end_b = unflip_id(pair[1])
            labels[node_id] = min(end_a, end_b)
        else:
            unfinished.append(node_id)
    return labels, unfinished


# ----------------------------------------------------------------------
# simplified S-V over the chain graph
# ----------------------------------------------------------------------
def _chain_graph_input(chain: ChainGraph, restrict_to: Optional[set] = None) -> GraphInput:
    adjacency: Dict[int, List[int]] = {}
    for node_id, node in chain.nodes.items():
        if restrict_to is not None and node_id not in restrict_to:
            continue
        neighbors = []
        for neighbor_id in node.neighbor_ids():
            if restrict_to is not None and neighbor_id not in restrict_to:
                continue
            neighbors.append(neighbor_id)
        adjacency[node_id] = neighbors
    return GraphInput(adjacency)


def _run_sv_labeling(
    chain: ChainGraph,
    job_chain: StageExecutor,
    restrict_to: Optional[set] = None,
    job_suffix: str = "",
) -> Dict[int, int]:
    graph_input = _chain_graph_input(chain, restrict_to)
    if not graph_input.adjacency:
        return {}
    engine = PregelEngine(num_workers=job_chain.num_workers)
    result = run_simplified_sv(graph_input, engine=engine)
    result.metrics.job_name = f"contig-labeling/simplified-sv{job_suffix}"
    job_chain.pipeline_metrics.add(result.metrics)
    return components_from_result(result)


# ----------------------------------------------------------------------
# the operation
# ----------------------------------------------------------------------
def label_contigs(
    graph: DeBruijnGraph,
    config: AssemblyConfig,
    job_chain: StageExecutor,
    include_contigs: bool = False,
) -> LabelingResult:
    """Run operation ② and return per-node contig labels.

    ``include_contigs`` selects the second-round behaviour (arrow ⑥ of
    Figure 10) where existing contigs take part in the chains.
    """
    chain = build_chain_graph(graph, include_contigs=include_contigs)
    metrics_before = len(job_chain.pipeline_metrics.jobs)

    labels: Dict[int, int] = {}
    used_fallback = False

    if not chain.nodes:
        return LabelingResult(labels={}, chain=chain, method=config.labeling_method)

    pairs = _run_end_recognition(graph, chain, job_chain)

    if config.labeling_method == LABELING_LIST_RANKING:
        labels, unfinished = _run_bidirectional_list_ranking(pairs, job_chain)
        if unfinished:
            # Cycles of ⟨1-1⟩ vertices: label them with simplified S-V
            # restricted to the still-active vertices.
            used_fallback = True
            cycle_labels = _run_sv_labeling(
                chain, job_chain, restrict_to=set(unfinished), job_suffix="-cycle-fallback"
            )
            labels.update(cycle_labels)
    elif config.labeling_method == LABELING_SIMPLIFIED_SV:
        labels = _run_sv_labeling(chain, job_chain)
    else:  # pragma: no cover - config validation prevents this
        raise ValueError(f"unknown labeling method {config.labeling_method!r}")

    new_metrics = job_chain.pipeline_metrics.jobs[metrics_before:]
    return LabelingResult(
        labels=labels,
        chain=chain,
        method=config.labeling_method,
        metrics=list(new_metrics),
        used_cycle_fallback=used_fallback,
    )
