"""The chain-graph view used by contig labeling and contig merging.

Both labeling rounds of the paper's workflow operate on the same
abstract structure: a graph whose nodes are the *unambiguous* elements
(⟨1⟩- and ⟨1-1⟩-typed k-mers in the first round; now-unambiguous k-mers
plus existing contigs in the second round) and whose edges connect
elements that are adjacent in the de Bruijn graph.  Every node has at
most one neighbour on each of its two sides, so connected components of
this graph are simple paths (or cycles), each of which becomes one
contig.

:func:`build_chain_graph` derives this view from a
:class:`~repro.dbg.graph.DeBruijnGraph`; the labeling operation runs a
Pregel job over it and the merging operation stitches each labelled
group back into a contig sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dbg.contig_vertex import ContigVertexData, END_IN, END_OUT
from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import KmerVertexData, TYPE_AMBIGUOUS
from ..dbg.polarity import PORT_IN, PORT_OUT, other_port
from ..errors import GraphFormatError

KIND_KMER = "kmer"
KIND_CONTIG = "contig"


@dataclass(frozen=True)
class ChainLink:
    """What lies on one side of a chain node.

    ``neighbor_id`` is another chain node when the path continues, or
    ``None`` when this side is a path boundary.  Boundaries remember
    the ambiguous k-mer (or ``None`` for a dead end) they attach to —
    merging needs it to wire the finished contig's ends — plus the port
    of that ambiguous k-mer and the coverage of the connecting edge.
    """

    neighbor_id: Optional[int]
    neighbor_port: Optional[int] = None
    edge_coverage: int = 0
    boundary_kmer: Optional[int] = None
    boundary_port: Optional[int] = None
    via_contig: Optional[int] = None

    @property
    def is_boundary(self) -> bool:
        return self.neighbor_id is None


@dataclass
class ChainNode:
    """One node of the chain graph (an unambiguous k-mer or a contig)."""

    node_id: int
    kind: str
    sequence: str
    coverage: int
    links: Dict[int, Optional[ChainLink]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.links.setdefault(PORT_IN, None)
        self.links.setdefault(PORT_OUT, None)

    def link(self, port: int) -> Optional[ChainLink]:
        return self.links.get(port)

    def set_link(self, port: int, link: ChainLink) -> None:
        if port not in (PORT_IN, PORT_OUT):
            raise GraphFormatError(f"invalid chain port {port}")
        self.links[port] = link

    def neighbor_ids(self) -> List[int]:
        """Chain-internal neighbours (excludes boundaries)."""
        return [
            link.neighbor_id
            for link in self.links.values()
            if link is not None and link.neighbor_id is not None
        ]

    def port_towards(self, neighbor_id: int) -> Optional[int]:
        """Which of our ports points at ``neighbor_id`` (None if neither)."""
        for port, link in self.links.items():
            if link is not None and link.neighbor_id == neighbor_id:
                return port
        return None

    def boundary_ports(self) -> List[int]:
        """Ports whose link is a boundary (or missing entirely)."""
        ports = []
        for port in (PORT_IN, PORT_OUT):
            link = self.links.get(port)
            if link is None or link.is_boundary:
                ports.append(port)
        return ports

    def is_path_end(self) -> bool:
        """True if at least one side is a boundary: the node ends a path."""
        return bool(self.boundary_ports())


class ChainGraph:
    """Container for chain nodes with a few convenience queries."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.nodes: Dict[int, ChainNode] = {}

    def add(self, node: ChainNode) -> None:
        self.nodes[node.node_id] = node

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def get(self, node_id: int) -> Optional[ChainNode]:
        return self.nodes.get(node_id)

    def pair_view(self) -> Dict[int, Tuple[Optional[int], Optional[int]]]:
        """``node_id -> (neighbor-or-None on PORT_IN, on PORT_OUT)``.

        This is the "ID pair" the labeling job initialises from
        (Section IV-B, op ②); ``None`` marks a contig-end side.
        """
        pairs: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        for node_id, node in self.nodes.items():
            in_link = node.link(PORT_IN)
            out_link = node.link(PORT_OUT)
            pairs[node_id] = (
                in_link.neighbor_id if in_link is not None else None,
                out_link.neighbor_id if out_link is not None else None,
            )
        return pairs


def _kmer_chain_node(graph: DeBruijnGraph, vertex: KmerVertexData) -> ChainNode:
    """Chain node for an unambiguous k-mer vertex."""
    node = ChainNode(
        node_id=vertex.kmer_id,
        kind=KIND_KMER,
        sequence=vertex.sequence(),
        coverage=vertex.min_coverage(),
    )
    for adjacency in vertex.adjacencies:
        neighbor_id = adjacency.neighbor_id
        link: ChainLink
        if adjacency.via_contig is not None:
            # Second-round case: the adjacency is materialised by a
            # contig; the chain neighbour is that contig vertex.  This
            # takes priority over the dead-end check because the
            # entry's ``neighbor_id`` describes what lies *beyond* the
            # contig (possibly NULL), not the immediate neighbour.
            link = ChainLink(
                neighbor_id=adjacency.via_contig.contig_id,
                neighbor_port=None,
                edge_coverage=adjacency.coverage,
                via_contig=adjacency.via_contig.contig_id,
            )
        elif adjacency.is_dead_end():
            link = ChainLink(neighbor_id=None, edge_coverage=adjacency.coverage)
        else:
            neighbor = graph.kmers.get(neighbor_id)
            if neighbor is not None and neighbor.vertex_type() == TYPE_AMBIGUOUS:
                # Boundary: the path stops against an ambiguous k-mer.
                link = ChainLink(
                    neighbor_id=None,
                    edge_coverage=adjacency.coverage,
                    boundary_kmer=neighbor_id,
                    boundary_port=adjacency.neighbor_port,
                )
            else:
                link = ChainLink(
                    neighbor_id=neighbor_id,
                    neighbor_port=adjacency.neighbor_port,
                    edge_coverage=adjacency.coverage,
                )
        node.set_link(adjacency.my_port, link)
    return node


def _contig_chain_node(graph: DeBruijnGraph, contig: ContigVertexData) -> ChainNode:
    """Chain node for an existing contig vertex (second labeling round)."""
    node = ChainNode(
        node_id=contig.contig_id,
        kind=KIND_CONTIG,
        sequence=contig.sequence,
        coverage=contig.coverage,
    )
    for port, end in ((PORT_IN, contig.in_end), (PORT_OUT, contig.out_end)):
        if end.is_dead_end():
            node.set_link(port, ChainLink(neighbor_id=None, edge_coverage=end.edge_coverage))
            continue
        neighbor = graph.kmers.get(end.neighbor_id)
        if neighbor is None or neighbor.vertex_type() == TYPE_AMBIGUOUS:
            node.set_link(
                port,
                ChainLink(
                    neighbor_id=None,
                    edge_coverage=end.edge_coverage,
                    boundary_kmer=end.neighbor_id,
                    boundary_port=end.neighbor_port,
                ),
            )
        else:
            node.set_link(
                port,
                ChainLink(
                    neighbor_id=end.neighbor_id,
                    neighbor_port=end.neighbor_port,
                    edge_coverage=end.edge_coverage,
                ),
            )
    return node


def build_chain_graph(graph: DeBruijnGraph, include_contigs: bool = False) -> ChainGraph:
    """Derive the chain graph of unambiguous elements from ``graph``.

    ``include_contigs`` should be False for the first labeling round
    (all vertices are k-mers) and True after error correction, when the
    chain mixes contigs and formerly-ambiguous k-mers (arrow ⑥ of
    Figure 10).
    """
    chain = ChainGraph(graph.k)
    for vertex in graph.kmers.values():
        if vertex.vertex_type() == TYPE_AMBIGUOUS:
            continue
        chain.add(_kmer_chain_node(graph, vertex))
    if include_contigs:
        for contig in graph.contigs.values():
            chain.add(_contig_chain_node(graph, contig))
    _fix_dangling_references(chain)
    return chain


def _fix_dangling_references(chain: ChainGraph) -> None:
    """Turn links that point outside the chain graph into boundaries.

    A k-mer link can name a neighbour that is not itself part of the
    chain (e.g. it was deleted by error correction); labeling must treat
    such a side as a path boundary rather than chase a missing node.
    """
    for node in chain.nodes.values():
        for port in (PORT_IN, PORT_OUT):
            link = node.link(port)
            if link is None or link.is_boundary:
                continue
            if link.neighbor_id not in chain.nodes:
                node.set_link(
                    port,
                    ChainLink(
                        neighbor_id=None,
                        edge_coverage=link.edge_coverage,
                        boundary_kmer=link.neighbor_id,
                        boundary_port=link.neighbor_port,
                    ),
                )
