"""Operation ① — DBG construction (Section IV-B).

The operation loads reads and builds the canonical-k-mer de Bruijn
graph through two mini-MapReduce phases, exactly as the paper
describes:

* **Phase (i)** — each read is split on ``N`` and cut into (k+1)-mers
  with a sliding window; the packed (k+1)-mer ID is the shuffle key;
  the reduce side sums per-worker counts and *discards* (k+1)-mers
  whose total coverage is not above the user threshold θ, because such
  edges are almost certainly the product of read errors.
* **Phase (ii)** — each surviving (k+1)-mer emits two
  ``(k-mer ID, partial adjacency)`` pairs, one for its prefix and one
  for its suffix; the reduce side merges the partial 32-bit adjacency
  bitmaps (Figure 8) into complete k-mer vertices.

Both phases run through :class:`~repro.pregel.job.JobChain`, so the
shuffle volume and per-worker load feed the Figure 12 cost model.

(k+1)-mers are canonicalised before counting so that the same physical
edge observed from the two strands contributes to a single coverage
counter; the prefix/suffix polarity labels are derived from the
canonical writing, which keeps them consistent with Property 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..dbg.bitmap import AdjacencyBitmap
from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import KmerVertexData
from ..dna.encoding import canonical_encoded
from ..dna.io_fastq import Read
from ..dna.kmer import extract_kplus1mers, validate_k
from ..pregel.job import JobChain
from .config import AssemblyConfig


@dataclass
class ConstructionResult:
    """Output of operation ①."""

    graph: DeBruijnGraph
    total_kplus1mers: int
    distinct_kplus1mers: int
    surviving_kplus1mers: int
    filtered_kplus1mers: int


def _phase1_map_factory(k: int):
    """Map UDF of phase (i): read → [(canonical (k+1)-mer ID, 1), ...]."""

    def map_read(read: Read) -> Iterable[Tuple[int, int]]:
        for kp1 in extract_kplus1mers(read.sequence, k):
            canonical_edge, _ = canonical_encoded(kp1.edge_id, k + 1)
            yield canonical_edge, 1
        return

    return map_read


def _phase1_reduce_factory(coverage_threshold: int):
    """Reduce UDF of phase (i): keep (ID, total count) if count > θ."""

    def reduce_edge(edge_id: int, counts: List[int]) -> Iterable[Tuple[int, int]]:
        total = sum(counts)
        if total > coverage_threshold:
            yield edge_id, total
        return

    return reduce_edge


def _phase2_map_factory(k: int):
    """Map UDF of phase (ii): (k+1)-mer → two partial adjacency bitmaps."""

    def map_edge(record: Tuple[int, int]) -> Iterable[Tuple[int, Tuple[str, str, int, int]]]:
        edge_id, coverage = record
        kmer_mask = (1 << (2 * k)) - 1
        prefix_observed = edge_id >> 2
        suffix_observed = edge_id & kmer_mask
        appended_base = edge_id & 0b11
        prepended_base = (edge_id >> (2 * k)) & 0b11

        prefix_id, prefix_rc = canonical_encoded(prefix_observed, k)
        suffix_id, suffix_rc = canonical_encoded(suffix_observed, k)
        polarity = ("H" if prefix_rc else "L") + ("H" if suffix_rc else "L")

        # The prefix vertex gains an out-neighbour reached by appending
        # the edge's last base; the suffix vertex gains an in-neighbour
        # reached by prepending the edge's first base (Figure 8).
        yield prefix_id, (polarity, "out", appended_base, coverage)
        yield suffix_id, (polarity, "in", prepended_base, coverage)

    return map_edge


def _phase2_reduce_factory(k: int):
    """Reduce UDF of phase (ii): merge partial bitmaps into one vertex."""

    def reduce_kmer(
        kmer_id: int, partials: List[Tuple[str, str, int, int]]
    ) -> Iterable[KmerVertexData]:
        bitmap = AdjacencyBitmap()
        for polarity, direction, base_bits, coverage in partials:
            bitmap.add(polarity, direction, base_bits, coverage)
        yield KmerVertexData.from_bitmap(kmer_id, k, bitmap)

    return reduce_kmer


def build_dbg(
    reads: Iterable[Read],
    config: AssemblyConfig,
    chain: JobChain,
) -> ConstructionResult:
    """Run operation ① over ``reads`` and return the de Bruijn graph."""
    validate_k(config.k)
    reads = list(reads)

    phase1 = chain.run_mapreduce(
        name="dbg-construction/phase1-count-kplus1mers",
        records=reads,
        map_fn=_phase1_map_factory(config.k),
        reduce_fn=_phase1_reduce_factory(config.coverage_threshold),
    )
    surviving: List[Tuple[int, int]] = phase1.outputs
    total_kplus1mers = phase1.metrics.supersteps[0].messages_sent
    distinct = phase1.groups

    phase2 = chain.run_mapreduce(
        name="dbg-construction/phase2-build-vertices",
        records=surviving,
        map_fn=_phase2_map_factory(config.k),
        reduce_fn=_phase2_reduce_factory(config.k),
    )

    graph = DeBruijnGraph(config.k)
    for vertex in phase2.outputs:
        graph.kmers[vertex.kmer_id] = vertex

    return ConstructionResult(
        graph=graph,
        total_kplus1mers=total_kplus1mers,
        distinct_kplus1mers=distinct,
        surviving_kplus1mers=len(surviving),
        filtered_kplus1mers=distinct - len(surviving),
    )
