"""Operation ① — DBG construction (Section IV-B).

The operation loads reads and builds the canonical-k-mer de Bruijn
graph through two mini-MapReduce phases, exactly as the paper
describes:

* **Phase (i)** — each read is split on ``N`` and cut into (k+1)-mers
  with a sliding window; the packed (k+1)-mer ID is the shuffle key;
  the reduce side sums per-worker counts and *discards* (k+1)-mers
  whose total coverage is not above the user threshold θ, because such
  edges are almost certainly the product of read errors.
* **Phase (ii)** — each surviving (k+1)-mer emits two
  ``(k-mer ID, partial adjacency)`` pairs, one for its prefix and one
  for its suffix; the reduce side merges the partial 32-bit adjacency
  bitmaps (Figure 8) into complete k-mer vertices.

Both phases run through :class:`~repro.workflow.executor.StageExecutor`, so the
shuffle volume and per-worker load feed the Figure 12 cost model.

(k+1)-mers are canonicalised before counting so that the same physical
edge observed from the two strands contributes to a single coverage
counter; the prefix/suffix polarity labels are derived from the
canonical writing, which keeps them consistent with Property 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from ..dbg.bitmap import AdjacencyBitmap
from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import KmerVertexData
from ..dna import vectorized
from ..dna.encoding import canonical_encoded
from ..dna.io_fastq import Read, read_chunks
from ..dna.kmer import extract_kplus1mers, validate_k
from ..store.ledger import MemoryLedger, estimate_nbytes
from ..store.spill import SpillManager, process_spill_stats
from ..workflow.executor import StageExecutor
from ..pregel.metrics import JobMetrics, SuperstepMetrics
from .config import AssemblyConfig


@dataclass
class ConstructionResult:
    """Output of operation ①."""

    graph: DeBruijnGraph
    total_kplus1mers: int
    distinct_kplus1mers: int
    surviving_kplus1mers: int
    filtered_kplus1mers: int


def _phase1_map_factory(k: int):
    """Map UDF of phase (i): read → [(canonical (k+1)-mer ID, 1), ...]."""

    def map_read(read: Read) -> Iterable[Tuple[int, int]]:
        for kp1 in extract_kplus1mers(read.sequence, k):
            canonical_edge, _ = canonical_encoded(kp1.edge_id, k + 1)
            yield canonical_edge, 1
        return

    return map_read


def _phase1_reduce_factory(coverage_threshold: int):
    """Reduce UDF of phase (i): keep (ID, total count) if count > θ."""

    def reduce_edge(edge_id: int, counts: List[int]) -> Iterable[Tuple[int, int]]:
        total = sum(counts)
        if total > coverage_threshold:
            yield edge_id, total
        return

    return reduce_edge


def _phase2_map_factory(k: int):
    """Map UDF of phase (ii): (k+1)-mer → two partial adjacency bitmaps."""

    def map_edge(record: Tuple[int, int]) -> Iterable[Tuple[int, Tuple[str, str, int, int]]]:
        edge_id, coverage = record
        kmer_mask = (1 << (2 * k)) - 1
        prefix_observed = edge_id >> 2
        suffix_observed = edge_id & kmer_mask
        appended_base = edge_id & 0b11
        prepended_base = (edge_id >> (2 * k)) & 0b11

        prefix_id, prefix_rc = canonical_encoded(prefix_observed, k)
        suffix_id, suffix_rc = canonical_encoded(suffix_observed, k)
        polarity = ("H" if prefix_rc else "L") + ("H" if suffix_rc else "L")

        # The prefix vertex gains an out-neighbour reached by appending
        # the edge's last base; the suffix vertex gains an in-neighbour
        # reached by prepending the edge's first base (Figure 8).
        yield prefix_id, (polarity, "out", appended_base, coverage)
        yield suffix_id, (polarity, "in", prepended_base, coverage)

    return map_edge


def _phase2_reduce_factory(k: int):
    """Reduce UDF of phase (ii): merge partial bitmaps into one vertex."""

    def reduce_kmer(
        kmer_id: int, partials: List[Tuple[str, str, int, int]]
    ) -> Iterable[KmerVertexData]:
        bitmap = AdjacencyBitmap()
        for polarity, direction, base_bits, coverage in partials:
            bitmap.add(polarity, direction, base_bits, coverage)
        yield KmerVertexData.from_bitmap(kmer_id, k, bitmap)

    return reduce_kmer


def build_dbg(
    reads: Iterable[Read],
    config: AssemblyConfig,
    chain: StageExecutor,
) -> ConstructionResult:
    """Run operation ① over ``reads`` and return the de Bruijn graph.

    With ``config.use_vectorized`` (and NumPy present) the two
    mini-MapReduce phases run as NumPy batch kernels; contigs, graph
    contents and metrics are bit-identical to the scalar path either
    way (asserted by ``tests/dna/test_vectorized_parity.py``).
    """
    validate_k(config.k)

    # The vectorized path streams the reads in bounded chunks and never
    # needs the whole dataset at once; only the scalar path (whose
    # MapReduce harness indexes records) materialises a list.
    if config.use_vectorized and vectorized.numpy_available():
        return _build_dbg_vectorized(reads, config, chain)
    reads = list(reads)

    phase1 = chain.run_mapreduce(
        name="dbg-construction/phase1-count-kplus1mers",
        records=reads,
        map_fn=_phase1_map_factory(config.k),
        reduce_fn=_phase1_reduce_factory(config.coverage_threshold),
    )
    surviving: List[Tuple[int, int]] = phase1.outputs
    total_kplus1mers = phase1.metrics.supersteps[0].messages_sent
    distinct = phase1.groups

    phase2 = chain.run_mapreduce(
        name="dbg-construction/phase2-build-vertices",
        records=surviving,
        map_fn=_phase2_map_factory(config.k),
        reduce_fn=_phase2_reduce_factory(config.k),
    )

    graph = DeBruijnGraph(config.k)
    for vertex in phase2.outputs:
        graph.kmers[vertex.kmer_id] = vertex

    return ConstructionResult(
        graph=graph,
        total_kplus1mers=total_kplus1mers,
        distinct_kplus1mers=distinct,
        surviving_kplus1mers=len(surviving),
        filtered_kplus1mers=distinct - len(surviving),
    )


# ----------------------------------------------------------------------
# vectorized path
# ----------------------------------------------------------------------
# The kernels below reproduce the two mini-MapReduce phases as NumPy
# batch operations.  Per-read map UDF calls become one batched window
# extraction; per-key dict accumulation becomes an ``np.unique``
# segment-reduce.  The shuffle/compute counters the cost model consumes
# are recomputed from array lengths with the exact formulas
# :class:`~repro.pregel.mapreduce.MiniMapReduce` charges, so the
# resulting :class:`~repro.pregel.metrics.JobMetrics` compare equal to
# the scalar path's field by field.

#: _estimate_size of the phase-(ii) map values: a 4-byte tuple header,
#: the 2-char polarity string, "out"/"in", and two 8-byte ints.
_PHASE2_OUT_BYTES = 4 + 2 + 3 + 8 + 8
_PHASE2_IN_BYTES = 4 + 2 + 2 + 8 + 8

#: Bounds on the streaming-ingest chunk size (reads per batch).  The
#: upper bound is also the default when no memory budget is set; the
#: lower bound keeps the per-chunk numpy kernels from degenerating
#: into per-read calls under tiny test budgets.
_MIN_CHUNK_READS = 256
_MAX_CHUNK_READS = 8192

#: Rough working-set cost of one read inside the window-extraction
#: kernels (codes + window IDs + canonical copy for a short read).
#: Only the chunk-size derivation uses this; results never depend on it.
_CHUNK_BYTES_PER_READ = 4096


def _chunk_reads_for_budget(budget_bytes) -> int:
    """Reads per ingest chunk under ``budget_bytes`` (None = unlimited)."""
    if budget_bytes is None:
        return _MAX_CHUNK_READS
    derived = int(budget_bytes) // _CHUNK_BYTES_PER_READ
    return max(_MIN_CHUNK_READS, min(_MAX_CHUNK_READS, derived))


def _merge_sorted_runs(np, runs):
    """External merge of per-chunk ``np.unique`` runs.

    Each run is a ``(edges, counts)`` pair with ``edges`` sorted and
    unique within the run.  Concatenating the runs, stable-sorting, and
    segment-summing counts at key boundaries reproduces exactly what
    one global ``np.unique(..., return_counts=True)`` over the full
    window stream would return.
    """
    if not runs:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    if len(runs) == 1:
        edges, counts = runs[0]
        return edges, counts.astype(np.int64, copy=False)
    all_edges = np.concatenate([edges for edges, _ in runs])
    all_counts = np.concatenate([counts for _, counts in runs]).astype(np.int64)
    order = np.argsort(all_edges, kind="stable")
    sorted_edges = all_edges[order]
    sorted_counts = all_counts[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_edges[1:] != sorted_edges[:-1]))
    )
    return sorted_edges[starts], np.add.reduceat(sorted_counts, starts)


def _worker_sums(np, workers, num_workers, weights=None):
    """Exact per-worker integer sums (bincount; float weights are exact
    here because every count stays far below 2**53)."""
    if weights is None:
        return np.bincount(workers, minlength=num_workers).astype(np.int64)
    summed = np.bincount(workers, weights=weights.astype(np.float64), minlength=num_workers)
    return summed.astype(np.int64)


def _mapreduce_metrics(
    np,
    name: str,
    num_workers: int,
    map_ops,
    shuffle_bytes,
    total_pairs: int,
    reduce_ops,
) -> JobMetrics:
    """Assemble a JobMetrics identical to MiniMapReduce's accounting."""
    metrics = JobMetrics(job_name=name, num_workers=num_workers)

    map_step = SuperstepMetrics(superstep=0)
    map_step.compute_ops = int(map_ops.sum())
    map_step.worker_compute_ops = [int(ops) for ops in map_ops]
    map_step.worker_bytes_sent = [int(size) for size in shuffle_bytes]
    map_step.worker_bytes_received = [int(size) for size in shuffle_bytes]
    map_step.bytes_sent = int(shuffle_bytes.sum())
    map_step.messages_sent = total_pairs
    metrics.add(map_step)

    reduce_step = SuperstepMetrics(superstep=1)
    reduce_step.compute_ops = int(reduce_ops.sum())
    reduce_step.worker_compute_ops = [int(ops) for ops in reduce_ops]
    reduce_step.worker_bytes_sent = [0] * num_workers
    reduce_step.worker_bytes_received = [0] * num_workers
    metrics.add(reduce_step)

    metrics.loading_ops = map_step.compute_ops + reduce_step.compute_ops
    metrics.loading_bytes_shuffled = map_step.bytes_sent
    return metrics


def _build_dbg_vectorized(
    reads: Iterable[Read],
    config: AssemblyConfig,
    chain: StageExecutor,
) -> ConstructionResult:
    """Operation ① with both phases as batch kernels.

    Phase (i) is *streaming*: reads arrive in bounded chunks, each
    chunk is pre-aggregated with a local ``np.unique``, and the sorted
    runs are merged at the end — under a memory budget the idle runs
    spill to disk, so peak memory is bounded by the chunk size plus
    the distinct-edge working set rather than the raw read volume.
    """
    import numpy as np

    k = config.k
    num_workers = chain.num_workers
    partitioner = chain.partitioner
    budget_bytes = config.memory_budget_bytes

    # ---- phase (i): count canonical (k+1)-mers ------------------------
    total_pairs = 0
    read_index = 0
    map_ops = np.zeros(num_workers, dtype=np.int64)
    shuffle_counts = np.zeros(num_workers, dtype=np.int64)
    runs: List[Tuple[Any, Any]] = []
    spilled_runs: Dict[int, None] = {}
    ledger = MemoryLedger(budget_bytes, name="construction")
    manager = SpillManager(owner="construction")
    try:
        for chunk in read_chunks(reads, _chunk_reads_for_budget(budget_bytes)):
            sequences = [read.sequence for read in chunk]
            observed, per_read = vectorized.extract_window_ids(sequences, k + 1)
            canonical, _ = vectorized.canonical_ids(observed, k + 1)
            total_pairs += int(observed.size)

            sources = (
                np.arange(read_index, read_index + len(sequences), dtype=np.int64)
                % num_workers
            )
            read_index += len(sequences)
            map_ops += _worker_sums(np, sources, num_workers) + _worker_sums(
                np, sources, num_workers, weights=per_read
            )
            destinations = partitioner.worker_for_array(canonical)
            shuffle_counts += _worker_sums(np, destinations, num_workers)

            run = np.unique(canonical, return_counts=True)
            run_id = len(runs)
            runs.append(run)
            ledger.track(f"run:{run_id}", estimate_nbytes(run))
            # Spill older runs (LRU) until back under budget; the run
            # just built stays resident — it is the merge frontier.
            if ledger.over_budget:
                for name, _ in ledger.victims({f"run:{run_id}"}):
                    if not ledger.over_budget:
                        break
                    victim = int(name.split(":", 1)[1])
                    if manager.spill(name, runs[victim]):
                        runs[victim] = None
                        spilled_runs[victim] = None
                        ledger.release(name)

        for victim in spilled_runs:
            runs[victim] = manager.load(f"run:{victim}")
        unique_edges, edge_counts = _merge_sorted_runs(np, runs)
    finally:
        process_spill_stats().record_ledger_peak(ledger.peak_bytes)
        manager.close()
    shuffle_bytes = 8 * shuffle_counts
    unique_destinations = partitioner.worker_for_array(unique_edges)
    survives = edge_counts > config.coverage_threshold
    reduce_ops = _worker_sums(
        np,
        unique_destinations,
        num_workers,
        weights=1 + edge_counts + survives,
    )

    # Outputs ordered like the scalar reduce: by destination worker,
    # then ascending key (np.unique already sorted the keys).
    surviving_order = np.argsort(unique_destinations[survives], kind="stable")
    surviving_edges = unique_edges[survives][surviving_order]
    surviving_coverage = edge_counts[survives][surviving_order]

    chain.add_metrics(
        _mapreduce_metrics(
            np,
            "dbg-construction/phase1-count-kplus1mers",
            num_workers,
            map_ops,
            shuffle_bytes,
            total_pairs,
            reduce_ops,
        )
    )
    distinct = int(unique_edges.size)
    surviving_count = int(surviving_edges.size)

    # ---- phase (ii): build k-mer vertices -----------------------------
    fields = vectorized.edge_vertex_fields(surviving_edges, k)
    sources2 = np.arange(surviving_count, dtype=np.int64) % num_workers
    map_ops2 = 3 * _worker_sums(np, sources2, num_workers)
    prefix_destinations = partitioner.worker_for_array(fields["prefix_id"])
    suffix_destinations = partitioner.worker_for_array(fields["suffix_id"])
    shuffle_bytes2 = _PHASE2_OUT_BYTES * _worker_sums(
        np, prefix_destinations, num_workers
    ) + _PHASE2_IN_BYTES * _worker_sums(np, suffix_destinations, num_workers)

    # One shuffle pair per edge endpoint: the bitmap slot is
    # class_index * 8 + (4 for out-neighbours) + base, exactly
    # bit_position() with class_index = 2 * prefix_rc + suffix_rc.
    class_index = 2 * fields["prefix_rc"].astype(np.int64) + fields["suffix_rc"].astype(
        np.int64
    )
    out_positions = class_index * 8 + 4 + fields["appended_base"]
    in_positions = class_index * 8 + fields["prepended_base"]
    pair_keys = np.concatenate((fields["prefix_id"], fields["suffix_id"]))
    pair_positions = np.concatenate((out_positions, in_positions))
    pair_coverage = np.concatenate((surviving_coverage, surviving_coverage)).astype(
        np.int64
    )

    # Segment-reduce coverage per (k-mer, bitmap slot).
    order = np.lexsort((pair_positions, pair_keys))
    sorted_keys = pair_keys[order]
    sorted_positions = pair_positions[order]
    sorted_coverage = pair_coverage[order]
    if sorted_keys.size:
        slot_starts = np.flatnonzero(
            np.concatenate(
                (
                    [True],
                    (sorted_keys[1:] != sorted_keys[:-1])
                    | (sorted_positions[1:] != sorted_positions[:-1]),
                )
            )
        )
        slot_keys = sorted_keys[slot_starts]
        slot_positions = sorted_positions[slot_starts]
        slot_coverage = np.add.reduceat(sorted_coverage, slot_starts)
    else:
        slot_keys = sorted_keys
        slot_positions = sorted_positions
        slot_coverage = sorted_coverage

    unique_kmers, pair_counts = np.unique(pair_keys, return_counts=True)
    kmer_destinations = partitioner.worker_for_array(unique_kmers)
    # Scalar reduce charges 1 + len(values) + 1 per group (one vertex out).
    reduce_ops2 = _worker_sums(np, kmer_destinations, num_workers, weights=2 + pair_counts)

    chain.add_metrics(
        _mapreduce_metrics(
            np,
            "dbg-construction/phase2-build-vertices",
            num_workers,
            map_ops2,
            shuffle_bytes2,
            2 * surviving_count,
            reduce_ops2,
        )
    )

    # Expand each k-mer's slots into a vertex, in the scalar output
    # order (destination worker, then ascending k-mer ID).
    key_starts = np.searchsorted(slot_keys, unique_kmers, side="left")
    key_ends = np.searchsorted(slot_keys, unique_kmers, side="right")
    graph = DeBruijnGraph(k)
    positions_list = slot_positions.tolist()
    coverage_list = slot_coverage.tolist()
    for index in np.argsort(kmer_destinations, kind="stable").tolist():
        start, end = int(key_starts[index]), int(key_ends[index])
        bitmap = AdjacencyBitmap.from_positions(
            positions_list[start:end], coverage_list[start:end]
        )
        vertex = KmerVertexData.from_bitmap(int(unique_kmers[index]), k, bitmap)
        graph.kmers[vertex.kmer_id] = vertex

    return ConstructionResult(
        graph=graph,
        total_kplus1mers=total_pairs,
        distinct_kplus1mers=distinct,
        surviving_kplus1mers=surviving_count,
        filtered_kplus1mers=distinct - surviving_count,
    )
