"""Operation ④ — bubble filtering (Section IV-B).

A bubble is a pair (or small set) of alternative paths between the same
two ambiguous vertices, typically created by a read error in the middle
of an otherwise well-covered region (Figure 5).  After contig merging
every such alternative path is a single contig, so bubble detection
becomes a mini-MapReduce grouping:

* **map** — every contig whose two ends attach to ambiguous vertices
  ``nb1 < nb2`` keys itself by ``(nb1, nb2)``;
* **reduce** — contigs sharing both endpoints are compared pairwise;
  when two sequences are within the user-defined edit distance (taking
  orientation into account), the one with lower coverage is pruned.

Pruned contigs are removed from the graph together with the adjacency
entries of their bordering ambiguous k-mers, which may in turn change
those vertices' types and enable further contig growth in the second
labeling round (arrow ⑥ of Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..dbg.contig_vertex import ContigVertexData
from ..dbg.graph import DeBruijnGraph
from ..dna.sequence import edit_distance, reverse_complement
from ..workflow.executor import StageExecutor
from .config import AssemblyConfig


@dataclass
class BubbleResult:
    """Output of operation ④."""

    bubbles_examined: int
    contigs_pruned: List[int]

    @property
    def num_pruned(self) -> int:
        return len(self.contigs_pruned)


def _same_orientation(left: ContigVertexData, right: ContigVertexData) -> bool:
    """True if the two contigs run between their shared endpoints the same way.

    Both contigs attach to the same pair of ambiguous vertices; they
    are directly comparable when their ``in`` ends attach to the same
    vertex, otherwise one must be reverse-complemented first.
    """
    return left.in_end.neighbor_id == right.in_end.neighbor_id


def _prunable(
    left: ContigVertexData,
    right: ContigVertexData,
    max_edit_distance: int,
) -> Optional[int]:
    """Return the contig ID to prune when the two form a bubble, else None."""
    right_sequence = (
        right.sequence if _same_orientation(left, right) else reverse_complement(right.sequence)
    )
    distance = edit_distance(left.sequence, right_sequence, upper_bound=max_edit_distance)
    if distance >= max_edit_distance:
        return None
    # Prune the lower-coverage side; ties keep the longer contig so the
    # decision is deterministic.
    if left.coverage < right.coverage:
        return left.contig_id
    if right.coverage < left.coverage:
        return right.contig_id
    return left.contig_id if left.length < right.length else right.contig_id


def filter_bubbles(
    graph: DeBruijnGraph,
    config: AssemblyConfig,
    job_chain: StageExecutor,
) -> BubbleResult:
    """Run operation ④ and remove pruned contigs from ``graph``."""

    def map_contig(contig_id: int) -> Iterable[Tuple[Tuple[int, int], int]]:
        contig = graph.contigs.get(contig_id)
        if contig is None:
            return
        endpoints = contig.ordered_neighbor_pair()
        if endpoints is None:
            return
        yield endpoints, contig_id

    pruned: List[int] = []
    groups_with_candidates = 0

    def reduce_group(
        endpoints: Tuple[int, int], contig_ids: List[int]
    ) -> Iterable[int]:
        nonlocal groups_with_candidates
        if len(contig_ids) < 2:
            return
        groups_with_candidates += 1
        contigs = [graph.contigs[contig_id] for contig_id in sorted(contig_ids)]
        already_pruned = set()
        for index, left in enumerate(contigs):
            if left.contig_id in already_pruned:
                continue
            for right in contigs[index + 1 :]:
                if right.contig_id in already_pruned:
                    continue
                victim = _prunable(left, right, config.bubble_edit_distance)
                if victim is not None:
                    already_pruned.add(victim)
                    yield victim
                    if victim == left.contig_id:
                        break
        return

    mapreduce = job_chain.run_mapreduce(
        name="bubble-filtering/group-by-endpoints",
        records=list(graph.contigs),
        map_fn=map_contig,
        reduce_fn=reduce_group,
    )
    pruned = list(mapreduce.outputs)

    for contig_id in pruned:
        graph.remove_contig(contig_id)

    return BubbleResult(bubbles_examined=groups_with_candidates, contigs_pruned=pruned)
