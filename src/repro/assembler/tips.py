"""Operation ⑤ — tip removing (Section IV-B).

A tip is a short dangling path: it starts at a dead end (a ⟨1⟩-typed
vertex) and runs through ⟨1-1⟩-typed vertices until it meets an
ambiguous vertex (or another dead end).  Short tips are almost always
the product of a read error near the end of a read (Figure 5), so they
are removed; long dangling paths are kept because they are most likely
genuine contigs whose continuation simply was not covered by any read.

The paper implements the operation as a vertex-centric message-passing
procedure: ⟨1⟩-typed vertices send a REQUEST carrying the cumulative
sequence length, ⟨1-1⟩-typed vertices relay it (adding their own base
plus the length of any contig on the traversed edge), and the
⟨m-n⟩-typed (or opposite ⟨1⟩-typed) vertex at the far end decides
whether the accumulated length is below the tip threshold, in which
case a DELETE message walks back and removes the path.  Removing a tip
can turn an ⟨m-n⟩ vertex into a new ⟨1⟩ vertex, so the procedure runs
in *phases* until no new dead end appears.

This module performs the same computation as a direct traversal over
the post-merging graph (ambiguous k-mers connected directly or through
contig-labelled edges): each phase finds the current dead ends, walks
each dangling path accumulating exactly the length the REQUEST message
would accumulate, and applies the same deletion decision.  The phase
and message counts the vertex-centric version would incur are recorded
in a synthetic :class:`~repro.pregel.metrics.JobMetrics` so the
Figure 12 cost model can charge for the operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import (
    TYPE_AMBIGUOUS,
    TYPE_DEAD_END,
    TYPE_UNAMBIGUOUS,
    KmerAdjacency,
    KmerVertexData,
)
from ..workflow.executor import StageExecutor
from ..pregel.metrics import JobMetrics, SuperstepMetrics
from ..pregel.partitioner import HashPartitioner
from .config import AssemblyConfig


@dataclass
class TipRemovalResult:
    """Output of operation ⑤."""

    phases: int
    tips_removed: int
    kmers_deleted: int
    contigs_deleted: int


@dataclass
class _WalkOutcome:
    """One dangling path walked from a dead-end vertex."""

    path_kmers: List[int]
    traversed_contigs: List[int]
    cumulative_length: int
    terminal_kmer: Optional[int]
    terminal_is_junction: bool
    hops: int


def _path_length_contribution(adjacency: KmerAdjacency, k: int) -> int:
    """Length added when a walk traverses one edge (Section IV-B, op ⑤).

    A plain k-mer → k-mer edge adds one base (the k-mers overlap by
    k-1); an edge that carries a contig adds the contig length minus
    the (k-1)-base overlap on top of that.
    """
    contribution = 1
    if adjacency.via_contig is not None:
        contribution += max(adjacency.via_contig.length - (k - 1), 0)
    return contribution


def _walk_dangling_path(
    graph: DeBruijnGraph,
    start_kmer: int,
    tip_threshold: int,
) -> Optional[_WalkOutcome]:
    """Walk from a ⟨1⟩-typed k-mer until a junction, a dead end or a cycle."""
    start = graph.kmers.get(start_kmer)
    if start is None or start.vertex_type() != TYPE_DEAD_END:
        return None
    if not start.adjacencies:
        # Fully isolated vertex: treat as a zero-neighbour tip of length k.
        return _WalkOutcome(
            path_kmers=[start_kmer],
            traversed_contigs=[],
            cumulative_length=graph.k,
            terminal_kmer=None,
            terminal_is_junction=False,
            hops=0,
        )

    cumulative = graph.k
    path = [start_kmer]
    contigs: List[int] = []
    visited: Set[int] = {start_kmer}
    hops = 0

    current = start
    incoming_from: Optional[int] = None
    adjacency = start.adjacencies[0]

    while True:
        cumulative += _path_length_contribution(adjacency, graph.k)
        if adjacency.via_contig is not None:
            contigs.append(adjacency.via_contig.contig_id)
        hops += 1
        next_id = adjacency.neighbor_id

        if adjacency.is_dead_end():
            # The path runs into NULL: it dangles on both sides.
            return _WalkOutcome(path, contigs, cumulative, None, False, hops)

        next_vertex = graph.kmers.get(next_id)
        if next_vertex is None:
            return _WalkOutcome(path, contigs, cumulative, None, False, hops)
        if next_id in visited:
            # A cycle is not a tip.
            return None

        next_type = next_vertex.vertex_type()
        if next_type == TYPE_AMBIGUOUS:
            return _WalkOutcome(path, contigs, cumulative, next_id, True, hops)
        if next_type == TYPE_DEAD_END:
            # The whole component is one dangling path with two dead ends.
            path.append(next_id)
            return _WalkOutcome(path, contigs, cumulative, None, False, hops)

        # ⟨1-1⟩: relay through it.
        visited.add(next_id)
        path.append(next_id)
        onward = next_vertex.other_adjacency(excluding_neighbor=current.kmer_id)
        if onward is None:
            return _WalkOutcome(path, contigs, cumulative, None, False, hops)
        incoming_from = current.kmer_id
        current = next_vertex
        adjacency = onward


def _delete_tip(graph: DeBruijnGraph, outcome: _WalkOutcome) -> Tuple[int, int]:
    """Remove the walked path; returns (k-mers deleted, contigs deleted)."""
    contigs_deleted = 0
    for contig_id in outcome.traversed_contigs:
        if contig_id in graph.contigs:
            graph.remove_contig(contig_id)
            contigs_deleted += 1
    # Also drop contigs that dangle off the deleted k-mers (their contig
    # neighbours die with them).
    for kmer_id in outcome.path_kmers:
        vertex = graph.kmers.get(kmer_id)
        if vertex is None:
            continue
        for adjacency in list(vertex.adjacencies):
            if adjacency.via_contig is not None and adjacency.via_contig.contig_id in graph.contigs:
                graph.remove_contig(adjacency.via_contig.contig_id)
                contigs_deleted += 1

    kmers_deleted = 0
    for kmer_id in outcome.path_kmers:
        if kmer_id in graph.kmers:
            graph.remove_kmer(kmer_id)
            kmers_deleted += 1
    return kmers_deleted, contigs_deleted


def _synthetic_phase_metrics(
    phase_index: int,
    num_workers: int,
    walk_outcomes: List[_WalkOutcome],
    partitioner: HashPartitioner,
) -> JobMetrics:
    """Estimate what the vertex-centric phase would have cost.

    One phase of the paper's procedure needs roughly two supersteps per
    hop of the longest dangling path (REQUEST out, DELETE back); every
    hop of every walked path is one message in each direction.
    """
    metrics = JobMetrics(job_name=f"tip-removing/phase-{phase_index}", num_workers=num_workers)
    longest = max((outcome.hops for outcome in walk_outcomes), default=0)
    supersteps = max(2, 2 * max(longest, 1))
    total_hops = sum(outcome.hops for outcome in walk_outcomes)

    for step_index in range(supersteps):
        step = SuperstepMetrics(superstep=step_index)
        step.worker_compute_ops = [0] * num_workers
        step.worker_bytes_sent = [0] * num_workers
        step.worker_bytes_received = [0] * num_workers
        step.worker_messages_sent = [0] * num_workers
        step.worker_messages_received = [0] * num_workers
        metrics.add(step)

    # Spread the message volume over the walked vertices' workers.
    per_step_messages = (2 * total_hops) // max(supersteps, 1)
    for outcome in walk_outcomes:
        for kmer_id in outcome.path_kmers:
            worker = partitioner.worker_for(kmer_id)
            for step in metrics.supersteps:
                step.worker_compute_ops[worker] += 1
    for step in metrics.supersteps:
        step.compute_ops = sum(step.worker_compute_ops)
        step.messages_sent = per_step_messages
        step.bytes_sent = per_step_messages * 24
        for worker in range(num_workers):
            share = step.worker_compute_ops[worker]
            step.worker_messages_sent[worker] = share
            step.worker_bytes_sent[worker] = share * 24
            step.worker_bytes_received[worker] = share * 24
    return metrics


def _remove_dangling_contig_tips(graph: DeBruijnGraph, threshold: int) -> int:
    """Delete short contigs that dangle (≤ threshold, at least one NULL end).

    A dangling contig is a ⟨1⟩-typed vertex in the paper's terminology
    ("a contig vertex is of type ⟨1⟩ iff at least one of its two
    neighbours is NULL ... and will be regarded as a tip unless it is
    long").  Removing one may turn its bordering ambiguous k-mer into a
    new dead end, which the phase loop then follows up on.
    """
    removed = 0
    for contig_id, contig in list(graph.contigs.items()):
        if contig.vertex_type() != TYPE_DEAD_END:
            continue
        if contig.length > threshold:
            continue
        graph.remove_contig(contig_id)
        removed += 1
    return removed


def remove_tips(
    graph: DeBruijnGraph,
    config: AssemblyConfig,
    job_chain: StageExecutor,
) -> TipRemovalResult:
    """Run operation ⑤ until no new dead-end vertex appears."""
    partitioner = HashPartitioner(config.num_workers)
    phases = 0
    tips_removed = 0
    kmers_deleted = 0
    contigs_deleted = 0

    while True:
        dangling_contigs_removed = _remove_dangling_contig_tips(
            graph, config.tip_length_threshold
        )
        contigs_deleted += dangling_contigs_removed
        tips_removed += dangling_contigs_removed

        dead_ends = [
            kmer_id
            for kmer_id, vertex in graph.kmers.items()
            if vertex.vertex_type() == TYPE_DEAD_END
        ]
        if not dead_ends:
            if dangling_contigs_removed:
                phases += 1
                job_chain.pipeline_metrics.add(
                    _synthetic_phase_metrics(phases, config.num_workers, [], partitioner)
                )
                continue
            if phases == 0:
                # The operation always runs at least one (possibly empty)
                # phase; record it so the cost model charges for the scan.
                phases = 1
                job_chain.pipeline_metrics.add(
                    _synthetic_phase_metrics(phases, config.num_workers, [], partitioner)
                )
            break

        phase_outcomes: List[_WalkOutcome] = []
        removed_this_phase = 0
        already_deleted: Set[int] = set()

        for kmer_id in sorted(dead_ends):
            if kmer_id in already_deleted or kmer_id not in graph.kmers:
                continue
            outcome = _walk_dangling_path(graph, kmer_id, config.tip_length_threshold)
            if outcome is None:
                continue
            phase_outcomes.append(outcome)
            if outcome.cumulative_length <= config.tip_length_threshold:
                deleted_kmers, deleted_contigs = _delete_tip(graph, outcome)
                kmers_deleted += deleted_kmers
                contigs_deleted += deleted_contigs
                already_deleted.update(outcome.path_kmers)
                removed_this_phase += 1

        phases += 1
        tips_removed += removed_this_phase
        job_chain.pipeline_metrics.add(
            _synthetic_phase_metrics(phases, config.num_workers, phase_outcomes, partitioner)
        )
        if removed_this_phase == 0:
            break

    return TipRemovalResult(
        phases=phases,
        tips_removed=tips_removed,
        kmers_deleted=kmers_deleted,
        contigs_deleted=contigs_deleted,
    )
