"""Practical Pregel Algorithms (PPAs) used as building blocks.

The paper builds its contig-labeling operation from two PPAs published
in the authors' earlier PVLDB work and reviewed in Section II:

* **list ranking** (:mod:`repro.ppa.list_ranking`) — pointer doubling
  over a linked list, O(log n) rounds;
* **simplified S-V** (:mod:`repro.ppa.sv`) — Shiloach-Vishkin connected
  components without the star-hooking step.

The original S-V (with star hooking) and Hash-Min are included for the
ablation benchmarks.
"""

from .hash_min import HashMinVertex, run_hash_min
from .hash_min import components_from_result as hash_min_components
from .list_ranking import (
    ListNode,
    ListRankingVertex,
    ranks_from_result,
    run_list_ranking,
    sequential_list_ranking,
)
from .sv import (
    GraphInput,
    OriginalSVVertex,
    SimplifiedSVVertex,
    components_from_result,
    run_original_sv,
    run_simplified_sv,
    sequential_connected_components,
)

__all__ = [
    "HashMinVertex",
    "run_hash_min",
    "hash_min_components",
    "ListNode",
    "ListRankingVertex",
    "ranks_from_result",
    "run_list_ranking",
    "sequential_list_ranking",
    "GraphInput",
    "OriginalSVVertex",
    "SimplifiedSVVertex",
    "components_from_result",
    "run_original_sv",
    "run_simplified_sv",
    "sequential_connected_components",
]
