"""Hash-Min connected components: the non-PPA baseline.

Hash-Min floods the smallest known vertex ID through the graph: every
vertex keeps the minimum label it has seen and forwards improvements to
its neighbours.  It needs O(δ) supersteps (graph diameter), which for
the long path-like components of a de Bruijn graph is far worse than
the O(log n) bound of list ranking or S-V — this is why the paper's
contig labeling never uses it.  It is included as an ablation baseline
and as a simple oracle for tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..pregel import (
    ComputeContext,
    JobResult,
    PregelEngine,
    PregelJob,
    Vertex,
    min_combiner,
)
from .sv import GraphInput


class HashMinVertex(Vertex):
    """``value`` is the smallest component label seen so far."""

    # State is (int label, [int neighbour IDs]): partitions ship as
    # arrays between multiprocess workers and the master.
    columnar_state = True

    def compute(self, messages: List[int], ctx: ComputeContext) -> None:
        if ctx.superstep == 0:
            # Seed the flood with our own ID.
            for neighbor in self.edges:
                ctx.send(neighbor, self.value)
            self.vote_to_halt()
            return

        best = min(messages) if messages else self.value
        if best < self.value:
            self.value = best
            for neighbor in self.edges:
                ctx.send(neighbor, best)
        self.vote_to_halt()


def run_hash_min(
    graph: GraphInput,
    num_workers: int = 4,
    engine: Optional[PregelEngine] = None,
) -> JobResult:
    """Label components by flooding minima; labels end up in ``vertex.value``."""
    vertices = [
        HashMinVertex(vertex_id, value=vertex_id, edges=list(neighbors))
        for vertex_id, neighbors in graph.adjacency.items()
    ]
    job = PregelJob(name="hash-min", vertices=vertices, combiner=min_combiner())
    if engine is None:
        engine = PregelEngine(num_workers=num_workers)
    return engine.run(job)


def components_from_result(result: JobResult) -> Dict[int, int]:
    """Extract ``vertex_id -> component label`` from a finished job."""
    return {vertex_id: vertex.value for vertex_id, vertex in result.vertices.items()}
