"""BPPA for list ranking (Section II of the paper, Figure 1).

Given a linked list where each vertex ``v`` stores a value ``val(v)``
and a predecessor pointer ``pred(v)`` (``None`` at the head), list
ranking computes for every vertex the sum of values from the head up to
and including ``v``.  The algorithm is the classic pointer-doubling
scheme: in every round each vertex adds its predecessor's running sum
to its own and replaces its predecessor pointer with the predecessor's
predecessor, so the distance covered doubles each round and the whole
list finishes in ``O(log n)`` rounds.

Because Pregel is push-based, each round takes two supersteps:

1. every vertex that still has a predecessor sends it a *request*;
2. the predecessor *responds* with its ``(sum, pred)`` pair, after
   which the requester folds the response into its own state.

This is a *balanced* PPA: every vertex sends/receives O(1) messages per
superstep, uses O(1) state, and the algorithm ends after O(log n)
supersteps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..pregel import (
    ComputeContext,
    JobResult,
    PregelEngine,
    PregelJob,
    Request,
    RequestRespondMixin,
    Response,
    Vertex,
    split_responses,
)


@dataclass
class ListNode:
    """Input record for list ranking: one linked-list vertex."""

    node_id: int
    value: float
    predecessor: Optional[int]


class ListRankingVertex(RequestRespondMixin, Vertex):
    """Vertex state: ``value`` is a dict with ``sum`` and ``pred``."""

    def __init__(self, vertex_id: int, value=None, edges=None) -> None:
        super().__init__(vertex_id, value, edges)

    # -- request-respond payload ---------------------------------------
    def request_payload(self, tag) -> Tuple[float, Optional[int]]:
        return (self.value["sum"], self.value["pred"])

    # -- compute ---------------------------------------------------------
    def compute(self, messages: List, ctx: ComputeContext) -> None:
        """One of the two supersteps that make up a pointer-doubling round.

        Even supersteps ("jump"): fold the predecessor's response into
        our running sum, replace the predecessor pointer with the
        predecessor's predecessor, and — if the head has not been
        reached — ask the new predecessor for its state.

        Odd supersteps ("serve"): answer the requests received from
        successors with a consistent ``(sum, pred)`` snapshot.

        Requests are only emitted on even supersteps and responses only
        on odd ones, so every vertex folds in exactly one predecessor
        snapshot per round; this is what makes the distance covered
        double each round (Figure 1 of the paper).
        """
        if ctx.superstep % 2 == 1:
            self.respond_to_requests(messages, ctx)
            self.vote_to_halt()
            return

        responses, _ = split_responses(messages)
        for response in responses:
            predecessor_sum, predecessor_pred = response.payload
            self.value["sum"] += predecessor_sum
            self.value["pred"] = predecessor_pred

        if self.value["pred"] is None:
            # Reached the head: nothing more to do.  The vertex is
            # reactivated automatically if a successor still requests
            # its state in a later round.
            self.vote_to_halt()
            return

        # Ask the (possibly new) predecessor for its state.  The answer
        # arrives two supersteps later, at the next even superstep.
        self.send_request(ctx, self.value["pred"])


def build_vertices(nodes: Iterable[ListNode]) -> List[ListRankingVertex]:
    """Create Pregel vertices from plain :class:`ListNode` records."""
    vertices = []
    for node in nodes:
        vertices.append(
            ListRankingVertex(
                node.node_id,
                value={"sum": node.value, "pred": node.predecessor, "val": node.value},
            )
        )
    return vertices


def run_list_ranking(
    nodes: Iterable[ListNode],
    num_workers: int = 4,
    engine: Optional[PregelEngine] = None,
) -> JobResult:
    """Run the BPPA and return the :class:`~repro.pregel.engine.JobResult`.

    After the job finishes, ``result.vertices[v].value["sum"]`` holds
    the prefix sum of ``v`` (the value the paper calls ``sum(v)``).
    """
    vertices = build_vertices(nodes)
    job = PregelJob(name="list-ranking", vertices=vertices)
    if engine is None:
        engine = PregelEngine(num_workers=num_workers)
    return engine.run(job)


def ranks_from_result(result: JobResult) -> Dict[int, float]:
    """Extract ``node_id -> sum(v)`` from a finished job."""
    return {vertex_id: vertex.value["sum"] for vertex_id, vertex in result.vertices.items()}


def sequential_list_ranking(nodes: Iterable[ListNode]) -> Dict[int, float]:
    """Reference implementation used by tests: follow predecessors directly."""
    nodes = list(nodes)
    by_id = {node.node_id: node for node in nodes}
    ranks: Dict[int, float] = {}

    def rank(node: ListNode) -> float:
        if node.node_id in ranks:
            return ranks[node.node_id]
        # Iterative walk to avoid recursion limits on long chains.
        chain = []
        current: Optional[ListNode] = node
        while current is not None and current.node_id not in ranks:
            chain.append(current)
            current = by_id[current.predecessor] if current.predecessor is not None else None
        accumulated = ranks[current.node_id] if current is not None else 0.0
        for item in reversed(chain):
            accumulated += item.value
            ranks[item.node_id] = accumulated
        return ranks[node.node_id]

    for node in nodes:
        rank(node)
    return ranks
