"""Shiloach-Vishkin style connected components in Pregel (Section II).

Two variants are provided:

* :func:`run_simplified_sv` — the paper's *simplified S-V* algorithm:
  every round performs **tree hooking** followed by **shortcutting**,
  dropping the star-hooking step (and its expensive star test) of the
  original PRAM algorithm.  ``D[v]`` decreases monotonically and
  converges to the smallest vertex ID in ``v``'s connected component.
* :func:`run_original_sv` — the original algorithm including the
  star-hooking step, kept for the ablation benchmark
  (``benchmarks/bench_ablation_sv_variants.py``).  It produces the same
  labels but needs extra supersteps per round for the star test, which
  is exactly the overhead the paper's simplification removes.

Each round of the simplified algorithm is expressed as four supersteps:

====  ==============================================================
phase action
====  ==============================================================
0     apply hook messages received from the previous round, then ask
      the parent ``D[v]`` for *its* parent (request)
1     parents respond with their current ``D``
2     store the grandparent; broadcast ``D[v]`` to all neighbours
3     tree hooking: if my parent is a root, hook it onto the smallest
      neighbouring ``D``; then shortcut ``D[v] ← D[D[v]]``
====  ==============================================================

Termination: a ``changed`` aggregator records whether any ``D[v]``
changed during the round; the driver stops the job after the first
round with no change (checked at the round boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..pregel import (
    ComputeContext,
    JobResult,
    PregelEngine,
    PregelJob,
    Vertex,
    or_aggregator,
)

# Message tags.  Using small tuples keeps message byte accounting honest
# without the overhead of dataclass instances on hot paths.
_ASK_PARENT = "ask"
_PARENT_REPLY = "reply"
_NEIGHBOR_D = "nbr"
_HOOK = "hook"

_SUPERSTEPS_PER_ROUND_SIMPLIFIED = 4
_SUPERSTEPS_PER_ROUND_ORIGINAL = 6


@dataclass
class GraphInput:
    """Undirected input graph given as an adjacency dictionary."""

    adjacency: Dict[int, Sequence[int]]

    def vertices(self) -> List[int]:
        return list(self.adjacency)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]]) -> "GraphInput":
        adjacency: Dict[int, Set[int]] = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return cls({vertex: sorted(neighbors) for vertex, neighbors in adjacency.items()})

    def add_isolated(self, vertices: Iterable[int]) -> "GraphInput":
        adjacency = {vertex: list(neighbors) for vertex, neighbors in self.adjacency.items()}
        for vertex in vertices:
            adjacency.setdefault(vertex, [])
        return GraphInput(adjacency)


class _SVVertexBase(Vertex):
    """Shared state/machinery for both S-V variants.

    ``value`` is a dict holding:

    * ``D`` — the current parent pointer,
    * ``grandparent`` — latest known ``D[D[v]]``,
    * ``parent_is_root`` — whether ``D[v]`` was a root at the last probe,
    * ``min_neighbor_d`` — smallest ``D`` among neighbours this round.
    """

    PHASES = _SUPERSTEPS_PER_ROUND_SIMPLIFIED

    def _phase(self, ctx: ComputeContext) -> int:
        return ctx.superstep % self.PHASES

    # -- individual phases ----------------------------------------------
    def _apply_hooks_and_ask_parent(self, messages: List, ctx: ComputeContext) -> None:
        changed = False
        for kind, payload in messages:
            if kind == _HOOK and payload < self.value["D"]:
                self.value["D"] = payload
                changed = True
        if changed:
            ctx.aggregate("changed", True)
        ctx.send(self.value["D"], (_ASK_PARENT, self.vertex_id))

    def _answer_parent_probes(self, messages: List, ctx: ComputeContext) -> None:
        seen: Set[int] = set()
        for kind, payload in messages:
            if kind == _ASK_PARENT and payload not in seen:
                seen.add(payload)
                ctx.send(payload, (_PARENT_REPLY, self.value["D"]))

    def _record_grandparent_and_broadcast(self, messages: List, ctx: ComputeContext) -> None:
        for kind, payload in messages:
            if kind == _PARENT_REPLY:
                self.value["grandparent"] = payload
        parent = self.value["D"]
        self.value["parent_is_root"] = self.value["grandparent"] == parent
        for neighbor in self.edges:
            ctx.send(neighbor, (_NEIGHBOR_D, self.value["D"]))

    def _hook_and_shortcut(self, messages: List, ctx: ComputeContext) -> None:
        min_neighbor_d: Optional[int] = None
        for kind, payload in messages:
            if kind == _NEIGHBOR_D:
                if min_neighbor_d is None or payload < min_neighbor_d:
                    min_neighbor_d = payload
        self.value["min_neighbor_d"] = min_neighbor_d

        parent = self.value["D"]
        # Tree hooking: if my parent is a (tree) root and a neighbour's
        # tree has a smaller representative, hook my parent onto it.
        if (
            self.value["parent_is_root"]
            and min_neighbor_d is not None
            and min_neighbor_d < parent
        ):
            ctx.send(parent, (_HOOK, min_neighbor_d))
            ctx.aggregate("hooked", True)

        # Shortcutting: move closer to the root.
        grandparent = self.value["grandparent"]
        if grandparent is not None and grandparent < self.value["D"]:
            self.value["D"] = grandparent
            ctx.aggregate("changed", True)


class SimplifiedSVVertex(_SVVertexBase):
    """Vertex program for the simplified (no star hooking) S-V algorithm."""

    PHASES = _SUPERSTEPS_PER_ROUND_SIMPLIFIED

    def compute(self, messages: List, ctx: ComputeContext) -> None:
        phase = self._phase(ctx)
        if phase == 0:
            self._apply_hooks_and_ask_parent(messages, ctx)
        elif phase == 1:
            self._answer_parent_probes(messages, ctx)
        elif phase == 2:
            self._record_grandparent_and_broadcast(messages, ctx)
        else:
            self._hook_and_shortcut(messages, ctx)
        # Vertices never vote to halt: termination is decided globally by
        # the driver through the "changed" aggregator, mirroring the
        # paper's "checked by using aggregator" remark.


class OriginalSVVertex(_SVVertexBase):
    """Vertex program for the original S-V algorithm (with star hooking).

    Two extra supersteps per round implement the star test: a vertex
    belongs to a star if its grandparent equals its parent *and* no
    vertex in the same tree observed otherwise.  Star hooking then lets
    non-root trees of height one hook onto neighbouring trees, which is
    redundant for correctness in the Pregel setting — exactly the
    paper's observation — but costs messages and supersteps.
    """

    PHASES = _SUPERSTEPS_PER_ROUND_ORIGINAL

    def compute(self, messages: List, ctx: ComputeContext) -> None:
        phase = self._phase(ctx)
        if phase == 0:
            self._apply_hooks_and_ask_parent(messages, ctx)
        elif phase == 1:
            self._answer_parent_probes(messages, ctx)
        elif phase == 2:
            self._record_grandparent_and_broadcast(messages, ctx)
        elif phase == 3:
            self._star_probe(messages, ctx)
        elif phase == 4:
            self._star_confirm(messages, ctx)
        else:
            self._hook_and_shortcut_with_star(messages, ctx)

    # -- star machinery ----------------------------------------------------
    def _star_probe(self, messages: List, ctx: ComputeContext) -> None:
        # Record neighbour D values broadcast in phase 2 so the final
        # phase can hook; then tell the grandparent it is not a star
        # root if our parent chain has depth >= 2.
        min_neighbor_d: Optional[int] = None
        for kind, payload in messages:
            if kind == _NEIGHBOR_D:
                if min_neighbor_d is None or payload < min_neighbor_d:
                    min_neighbor_d = payload
        self.value["min_neighbor_d"] = min_neighbor_d
        self.value["in_star"] = True
        grandparent = self.value["grandparent"]
        if grandparent != self.value["D"]:
            self.value["in_star"] = False
            ctx.send(grandparent, ("notstar", self.vertex_id))
            ctx.send(self.value["D"], ("notstar", self.vertex_id))

    def _star_confirm(self, messages: List, ctx: ComputeContext) -> None:
        for kind, _payload in messages:
            if kind == "notstar":
                self.value["in_star"] = False
        # Propagate the star flag down from the parent: ask the parent.
        ctx.send(self.value["D"], ("askstar", self.vertex_id))

    def _hook_and_shortcut_with_star(self, messages: List, ctx: ComputeContext) -> None:
        for kind, payload in messages:
            if kind == "askstar" and not self.value.get("in_star", True):
                # Parent is not in a star: nothing to send; requesters
                # keep their own flag.  (A full implementation would
                # reply either way; replying only in the negative halves
                # the messages and preserves the conservative semantics.)
                ctx.send(payload, ("notstar", self.vertex_id))

        min_neighbor_d = self.value.get("min_neighbor_d")
        parent = self.value["D"]
        hook_allowed = self.value["parent_is_root"] or self.value.get("in_star", False)
        if hook_allowed and min_neighbor_d is not None and min_neighbor_d < parent:
            ctx.send(parent, (_HOOK, min_neighbor_d))
            ctx.aggregate("hooked", True)

        grandparent = self.value["grandparent"]
        if grandparent is not None and grandparent < self.value["D"]:
            self.value["D"] = grandparent
            ctx.aggregate("changed", True)


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _build_vertices(graph: GraphInput, vertex_class) -> List[_SVVertexBase]:
    vertices = []
    for vertex_id, neighbors in graph.adjacency.items():
        vertices.append(
            vertex_class(
                vertex_id,
                value={
                    "D": vertex_id,
                    "grandparent": vertex_id,
                    "parent_is_root": True,
                    "min_neighbor_d": None,
                },
                edges=list(neighbors),
            )
        )
    return vertices


class _RoundConvergenceCheck:
    """Stateful halt condition: stop after a fully quiet round.

    A round is quiet when no ``D[v]`` changed *and* no hook message was
    emitted.  Checking only for changes would terminate too early: a
    round can be change-free yet emit hooks whose effect only lands at
    the start of the next round.
    """

    def __init__(self, phases_per_round: int) -> None:
        self._phases = phases_per_round
        self._superstep = -1
        self._active_this_round = False

    def __call__(self, snapshot: Dict[str, object]) -> bool:
        self._superstep += 1
        if snapshot.get("changed") or snapshot.get("hooked"):
            self._active_this_round = True
        is_round_boundary = (self._superstep + 1) % self._phases == 0
        if not is_round_boundary:
            return False
        round_active = self._active_this_round
        self._active_this_round = False
        return not round_active


def _run_sv(
    graph: GraphInput,
    vertex_class,
    job_name: str,
    num_workers: int,
    engine: Optional[PregelEngine],
) -> JobResult:
    vertices = _build_vertices(graph, vertex_class)
    job = PregelJob(
        name=job_name,
        vertices=vertices,
        aggregators=[or_aggregator("changed"), or_aggregator("hooked")],
        halt_condition=_RoundConvergenceCheck(vertex_class.PHASES),
    )
    if engine is None:
        engine = PregelEngine(num_workers=num_workers)
    return engine.run(job)


def run_simplified_sv(
    graph: GraphInput,
    num_workers: int = 4,
    engine: Optional[PregelEngine] = None,
) -> JobResult:
    """Run the simplified S-V algorithm; labels are in ``vertex.value['D']``."""
    return _run_sv(graph, SimplifiedSVVertex, "simplified-sv", num_workers, engine)


def run_original_sv(
    graph: GraphInput,
    num_workers: int = 4,
    engine: Optional[PregelEngine] = None,
) -> JobResult:
    """Run the original S-V algorithm (with star hooking) for the ablation."""
    return _run_sv(graph, OriginalSVVertex, "original-sv", num_workers, engine)


def components_from_result(result: JobResult) -> Dict[int, int]:
    """Extract ``vertex_id -> component label`` from a finished S-V job."""
    return {vertex_id: vertex.value["D"] for vertex_id, vertex in result.vertices.items()}


def sequential_connected_components(graph: GraphInput) -> Dict[int, int]:
    """Reference union-find implementation used by tests.

    Labels each vertex with the smallest vertex ID in its component,
    matching the fixed point of the S-V algorithms.
    """
    parent: Dict[int, int] = {vertex: vertex for vertex in graph.adjacency}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        if ra < rb:
            parent[rb] = ra
        else:
            parent[ra] = rb

    for vertex, neighbors in graph.adjacency.items():
        for neighbor in neighbors:
            union(vertex, neighbor)

    return {vertex: find(vertex) for vertex in graph.adjacency}
