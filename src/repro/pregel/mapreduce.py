"""Mini-MapReduce: the paper's second extension to the Pregel+ API.

Section II describes two extensions PPA-assembler adds to Pregel+:

1. *in-memory job chaining* — handled by :mod:`repro.workflow`;
2. *mini-MapReduce during graph loading* — each input record may
   generate zero or more ``(key, value)`` pairs via a user-defined
   ``map`` function; the pairs are shuffled by key across workers,
   sorted, grouped, and each group is passed to a user-defined
   ``reduce`` function that emits output objects (typically vertices
   for the next Pregel job).

The implementation mirrors the distributed behaviour closely enough
for the cost model: map work is charged to the worker that owns the
input split, shuffle volume is charged to the destination worker, and
reduce work to the worker owning the key.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from .metrics import JobMetrics, SuperstepMetrics
from .partitioner import HashPartitioner
from .vertex import _estimate_size

MapFunction = Callable[[Any], Iterable[Tuple[Any, Any]]]
ReduceFunction = Callable[[Any, List[Any]], Iterable[Any]]


@dataclass
class MapReduceResult:
    """Output records plus the accounting needed by the cost model."""

    outputs: List[Any]
    metrics: JobMetrics
    groups: int = 0


class MiniMapReduce:
    """Runs one map-shuffle-reduce round over in-memory records.

    Parameters
    ----------
    num_workers:
        Number of simulated workers; controls both shuffle partitioning
        and the per-worker load reported to the cost model.
    name:
        Job name used in metrics.
    """

    def __init__(self, num_workers: int = 4, name: str = "mini-mapreduce") -> None:
        self.num_workers = num_workers
        self.name = name
        self.partitioner = HashPartitioner(num_workers)

    def run(
        self,
        records: Iterable[Any],
        map_fn: MapFunction,
        reduce_fn: ReduceFunction,
    ) -> MapReduceResult:
        """Execute ``map_fn`` then ``reduce_fn`` and return outputs + metrics."""
        metrics = JobMetrics(job_name=self.name, num_workers=self.num_workers)

        # ---- map phase -------------------------------------------------
        # Input records are assigned round-robin to workers (modelling
        # HDFS splits); each worker buffers its emitted pairs per
        # destination worker, modelling local combining-free shuffle.
        per_destination: List[Dict[Any, List[Any]]] = [
            defaultdict(list) for _ in range(self.num_workers)
        ]
        map_ops_per_worker = [0] * self.num_workers
        shuffle_bytes_per_worker = [0] * self.num_workers

        for index, record in enumerate(records):
            source_worker = index % self.num_workers
            emitted = 0
            for key, value in map_fn(record):
                destination = self.partitioner.worker_for(key)
                per_destination[destination][key].append(value)
                shuffle_bytes_per_worker[destination] += _estimate_size(value)
                emitted += 1
            map_ops_per_worker[source_worker] += 1 + emitted

        # ---- reduce phase ----------------------------------------------
        outputs: List[Any] = []
        reduce_ops_per_worker = [0] * self.num_workers
        groups = 0
        for destination in range(self.num_workers):
            grouped = per_destination[destination]
            # Sorting by key models the sort-merge grouping the paper
            # describes ("these pairs are then sorted by key").
            for key in sorted(grouped, key=_sort_token):
                values = grouped[key]
                produced = list(reduce_fn(key, values))
                outputs.extend(produced)
                reduce_ops_per_worker[destination] += 1 + len(values) + len(produced)
                groups += 1

        # ---- metrics ----------------------------------------------------
        # The map and reduce phases are modelled as two "supersteps" so
        # the BSP cost model applies unchanged: each phase costs the
        # slowest worker plus a barrier.
        map_step = SuperstepMetrics(superstep=0)
        map_step.compute_ops = sum(map_ops_per_worker)
        map_step.worker_compute_ops = list(map_ops_per_worker)
        map_step.worker_bytes_sent = list(shuffle_bytes_per_worker)
        map_step.worker_bytes_received = list(shuffle_bytes_per_worker)
        map_step.bytes_sent = sum(shuffle_bytes_per_worker)
        map_step.messages_sent = sum(len(values) for grouped in per_destination for values in grouped.values())
        metrics.add(map_step)

        reduce_step = SuperstepMetrics(superstep=1)
        reduce_step.compute_ops = sum(reduce_ops_per_worker)
        reduce_step.worker_compute_ops = list(reduce_ops_per_worker)
        reduce_step.worker_bytes_sent = [0] * self.num_workers
        reduce_step.worker_bytes_received = [0] * self.num_workers
        metrics.add(reduce_step)

        metrics.loading_ops = sum(map_ops_per_worker) + sum(reduce_ops_per_worker)
        metrics.loading_bytes_shuffled = sum(shuffle_bytes_per_worker)

        return MapReduceResult(outputs=outputs, metrics=metrics, groups=groups)


def _sort_token(key: Any) -> Any:
    """Sort key that tolerates mixed int/tuple/str keys within one job."""
    if isinstance(key, tuple):
        return (1, key)
    if isinstance(key, str):
        return (2, key)
    return (0, (key,))
