"""A simulated Pregel worker.

Each worker owns the partition of vertices that the
:class:`~repro.pregel.partitioner.HashPartitioner` assigns to it and
executes ``compute`` for its active vertices in every superstep.  The
engine keeps one :class:`Worker` per simulated machine slot so that
per-worker load (compute operations, messages, bytes) is tracked
exactly — the cost model turns the *maximum* per-worker load into the
superstep time of the simulated cluster.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import VertexNotFoundError
from .aggregator import AggregatorRegistry
from .vertex import ComputeContext, Vertex, VertexFactory


class Worker:
    """Holds one partition of vertices and runs their ``compute`` calls."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.vertices: Dict[int, Vertex] = {}

    def add_vertex(self, vertex: Vertex) -> None:
        self.vertices[vertex.vertex_id] = vertex

    def __len__(self) -> int:
        return len(self.vertices)

    def active_count(self) -> int:
        return sum(1 for vertex in self.vertices.values() if not vertex.halted)

    def execute_superstep(
        self,
        superstep: int,
        inbox: Dict[int, List[Any]],
        aggregator_copies: Dict[str, Any],
        previous_aggregates: Dict[str, Any],
        num_vertices: int,
        vertex_factory: Optional[VertexFactory],
    ) -> Tuple[List[Tuple[int, Any]], Dict[str, int]]:
        """Run ``compute`` for every vertex that is active or has messages.

        Returns the worker's outgoing messages and a dictionary of
        per-worker counters for this superstep.
        """
        outbox: List[Tuple[int, Any]] = []
        counters = {
            "compute_calls": 0,
            "compute_ops": 0,
            "messages_sent": 0,
            "bytes_sent": 0,
            "messages_received": 0,
            "bytes_received": 0,
        }

        # Deliver messages: reactivate recipients, auto-create unknown targets
        # if the job provided a factory, otherwise fail loudly.
        for target_id in inbox:
            if target_id not in self.vertices:
                if vertex_factory is None:
                    raise VertexNotFoundError(target_id)
                self.vertices[target_id] = vertex_factory.create(target_id)
            self.vertices[target_id].reactivate()

        for vertex_id, vertex in self.vertices.items():
            messages = inbox.get(vertex_id, [])
            if vertex.halted and not messages:
                continue
            ctx = ComputeContext(
                superstep=superstep,
                outbox=outbox,
                aggregators=aggregator_copies,
                previous_aggregates=previous_aggregates,
                num_vertices=num_vertices,
            )
            vertex.compute(messages, ctx)
            counters["compute_calls"] += 1
            # O(d(v)) style charge: one unit for the call plus one per
            # incoming message, adjacency entry and outgoing message.
            counters["compute_ops"] += 1 + len(messages) + vertex.degree + ctx.messages_sent
            counters["messages_sent"] += ctx.messages_sent
            counters["bytes_sent"] += ctx.bytes_sent
            counters["messages_received"] += len(messages)

        counters["bytes_received"] = sum(
            _messages_size(messages) for messages in inbox.values()
        )
        return outbox, counters


def _messages_size(messages: List[Any]) -> int:
    from .vertex import _estimate_size

    return sum(_estimate_size(message) for message in messages)
