"""Vertex-to-worker partitioning.

Pregel+ distributes vertices to workers by hashing the vertex ID; the
paper relies on this both for Pregel jobs and for the shuffle phases of
the mini-MapReduce extension (Section II, "Our Extensions to Pregel
API").  The partitioner is deliberately simple and deterministic so
that per-worker load, message and byte counts are reproducible.
"""

from __future__ import annotations

from typing import Hashable


class HashPartitioner:
    """Assigns vertex IDs (or shuffle keys) to workers by hashing.

    A multiplicative hash is used instead of Python's built-in ``hash``
    because consecutive k-mer IDs would otherwise map to consecutive
    workers, producing artificially perfect balance that a real cluster
    would not see.  The constant is the 64-bit golden-ratio multiplier
    commonly used by Fibonacci hashing.
    """

    _GOLDEN = 0x9E3779B97F4A7C15
    _MASK = (1 << 64) - 1

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers

    def worker_for(self, key: Hashable) -> int:
        """Return the worker index in ``[0, num_workers)`` owning ``key``."""
        if isinstance(key, int):
            mixed = ((key & self._MASK) * self._GOLDEN) & self._MASK
            mixed ^= mixed >> 29
            return mixed % self.num_workers
        return hash(key) % self.num_workers

    def worker_for_array(self, keys):
        """Vectorized :meth:`worker_for` over a ``uint64`` NumPy array.

        Bit-identical to the scalar method for integer keys: the uint64
        multiply wraps modulo 2**64 exactly like the masked Python
        multiply.  Returns an ``int64`` array of worker indices.
        """
        import numpy as np

        mixed = keys.astype(np.uint64, copy=False) * np.uint64(self._GOLDEN)
        mixed = mixed ^ (mixed >> np.uint64(29))
        return (mixed % np.uint64(self.num_workers)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner(num_workers={self.num_workers})"
