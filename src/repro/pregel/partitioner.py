"""Vertex-to-worker partitioning.

Pregel+ distributes vertices to workers by hashing the vertex ID; the
paper relies on this both for Pregel jobs and for the shuffle phases of
the mini-MapReduce extension (Section II, "Our Extensions to Pregel
API").  The partitioner is deliberately simple and deterministic so
that per-worker load, message and byte counts are reproducible.

Two strategies are available by name:

``hash``
    :class:`HashPartitioner` — the original multiplicative hash.
    Spreads load evenly but scatters adjacent k-mers across workers,
    so almost every DBG edge crosses a worker boundary.
``prefix_range``
    :class:`PrefixRangePartitioner` — contiguous ranges of the k-mer
    ID space (the ID's high bits are the k-mer's base prefix, so a
    range of IDs is a range of k-mer prefixes).  Neighbouring k-mers
    share long prefixes far more often than random pairs do, which
    keeps a measurable fraction of messages worker-local; the
    ``cross_worker_messages`` metric quantifies the cut.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional


class HashPartitioner:
    """Assigns vertex IDs (or shuffle keys) to workers by hashing.

    A multiplicative hash is used instead of Python's built-in ``hash``
    because consecutive k-mer IDs would otherwise map to consecutive
    workers, producing artificially perfect balance that a real cluster
    would not see.  The constant is the 64-bit golden-ratio multiplier
    commonly used by Fibonacci hashing.
    """

    _GOLDEN = 0x9E3779B97F4A7C15
    _MASK = (1 << 64) - 1

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers

    def worker_for(self, key: Hashable) -> int:
        """Return the worker index in ``[0, num_workers)`` owning ``key``."""
        if isinstance(key, int):
            mixed = ((key & self._MASK) * self._GOLDEN) & self._MASK
            mixed ^= mixed >> 29
            return mixed % self.num_workers
        return hash(key) % self.num_workers

    def worker_for_array(self, keys):
        """Vectorized :meth:`worker_for` over a ``uint64`` NumPy array.

        Bit-identical to the scalar method for integer keys: the uint64
        multiply wraps modulo 2**64 exactly like the masked Python
        multiply.  Returns an ``int64`` array of worker indices.
        """
        import numpy as np

        mixed = keys.astype(np.uint64, copy=False) * np.uint64(self._GOLDEN)
        mixed = mixed ^ (mixed >> np.uint64(29))
        return (mixed % np.uint64(self.num_workers)).astype(np.int64)

    def for_job(self, vertex_ids: Iterable[int]) -> "HashPartitioner":
        """Return the partitioner to use for a job with these initial IDs.

        Hash partitioning is population-independent, so the instance is
        returned unchanged.  Range partitioning overrides this to
        calibrate its ID-space width (see
        :meth:`PrefixRangePartitioner.for_job`).
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashPartitioner(num_workers={self.num_workers})"


class PrefixRangePartitioner:
    """Assigns k-mer IDs to workers by contiguous ID ranges.

    A plain k-mer ID packs the bases most-significant-first (see
    :mod:`repro.dna.encoding`), so the ID's numeric order *is* the
    lexicographic order of the k-mers and a contiguous ID range is a
    k-mer-prefix range.  Worker ``w`` owns range
    ``[w * 2**id_bits / W, (w+1) * 2**id_bits / W)``; because DBG
    neighbours overlap in k-1 bases, neighbouring vertices frequently
    land in the same range, cutting ``cross_worker_messages``.

    ``id_bits`` is the width of the plain ID space.  It is calibrated
    per job from the largest initial vertex ID (:meth:`for_job`) — the
    calibration is a deterministic function of the job's vertices, so
    the serial and multiprocess backends always agree on it.  Keys
    outside the calibrated space — contig IDs carrying the SPECIAL
    (bit 63) or FLIP (bit 62) markers, or IDs minted after calibration
    — fall back to the same multiplicative hash
    :class:`HashPartitioner` uses, so special traffic stays balanced.
    """

    _GOLDEN = HashPartitioner._GOLDEN
    _MASK = HashPartitioner._MASK
    #: Plain k-mer IDs use at most 62 bits (k <= 31, 2 bits per base);
    #: bits 62/63 are the FLIP/SPECIAL markers.
    _MAX_ID_BITS = 62
    #: Keep the vectorized ``key * num_workers`` inside the uint64 lane:
    #: keys wider than this are pre-shifted down (supports up to
    #: 2**(64-57) = 128 workers with no overflow).
    _PRODUCT_BITS = 57

    def __init__(self, num_workers: int, id_bits: Optional[int] = None) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if id_bits is None:
            id_bits = self._MAX_ID_BITS
        if not 1 <= id_bits <= self._MAX_ID_BITS:
            raise ValueError(
                f"id_bits must be in [1, {self._MAX_ID_BITS}], got {id_bits}"
            )
        self.num_workers = num_workers
        self.id_bits = id_bits
        # Down-shift applied before the multiply so key * num_workers
        # cannot wrap 64 bits; the scalar path applies the identical
        # shift to stay bit-compatible with the vectorized path.
        self._shift = max(0, id_bits - self._PRODUCT_BITS)

    def for_job(self, vertex_ids: Iterable[int]) -> "PrefixRangePartitioner":
        """Calibrate the ID-space width to a job's initial vertices.

        Uses the widest plain (non-special) initial ID; with no plain
        IDs the full 62-bit space is kept, which routes everything via
        the hash fallback — identical to :class:`HashPartitioner`.
        """
        bits = 0
        for vertex_id in vertex_ids:
            if not isinstance(vertex_id, int) or vertex_id < 0:
                continue
            if vertex_id >> self._MAX_ID_BITS:
                continue  # SPECIAL/FLIP marker: not part of the plain space
            bits = max(bits, vertex_id.bit_length())
        if bits == 0:
            bits = self._MAX_ID_BITS
        return PrefixRangePartitioner(self.num_workers, id_bits=max(1, bits))

    def _hash_fallback(self, key: int) -> int:
        mixed = ((key & self._MASK) * self._GOLDEN) & self._MASK
        mixed ^= mixed >> 29
        return mixed % self.num_workers

    def worker_for(self, key: Hashable) -> int:
        """Return the worker index in ``[0, num_workers)`` owning ``key``."""
        if isinstance(key, int):
            key &= self._MASK
            if key >> self.id_bits:
                return self._hash_fallback(key)
            return ((key >> self._shift) * self.num_workers) >> (
                self.id_bits - self._shift
            )
        return hash(key) % self.num_workers

    def worker_for_array(self, keys):
        """Vectorized :meth:`worker_for`, bit-identical for integer keys."""
        import numpy as np

        keys = keys.astype(np.uint64, copy=False)
        workers = np.empty(keys.shape, dtype=np.int64)
        special = (keys >> np.uint64(self.id_bits)) != 0
        if special.any():
            mixed = keys[special] * np.uint64(self._GOLDEN)
            mixed = mixed ^ (mixed >> np.uint64(29))
            workers[special] = (mixed % np.uint64(self.num_workers)).astype(np.int64)
        plain = ~special
        if plain.any():
            scaled = (keys[plain] >> np.uint64(self._shift)) * np.uint64(
                self.num_workers
            )
            workers[plain] = (
                scaled >> np.uint64(self.id_bits - self._shift)
            ).astype(np.int64)
        return workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixRangePartitioner(num_workers={self.num_workers}, "
            f"id_bits={self.id_bits})"
        )


#: Partitioner strategy names accepted by the configuration layers.
PARTITIONER_NAMES = ("hash", "prefix_range")


def ensure_partitioner(name: str) -> str:
    """Validate a partitioner name (shared by every config layer)."""
    if name not in PARTITIONER_NAMES:
        raise ValueError(
            f"unknown partitioner {name!r}; choose from {', '.join(PARTITIONER_NAMES)}"
        )
    return name


def make_partitioner(name: str, num_workers: int):
    """Instantiate a partitioner strategy by name."""
    ensure_partitioner(name)
    if name == "prefix_range":
        return PrefixRangePartitioner(num_workers)
    return HashPartitioner(num_workers)
