"""Aggregators: Pregel's mechanism for global communication.

Each vertex can contribute a value to a named aggregator during
``compute``; the engine combines the contributions and makes the
combined value available to every vertex in the *next* superstep, and
to the job driver for termination checks (the simplified S-V algorithm
stops when a "did any D[v] change this round?" aggregator stays
``False``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class Aggregator:
    """A single named aggregator.

    Parameters
    ----------
    initial:
        The neutral element the aggregator resets to at the start of
        every superstep (e.g. ``0`` for a sum, ``False`` for an "or").
    combine:
        Binary function combining the running value with a new
        contribution.  Must be associative and commutative because the
        order in which workers flush contributions is unspecified.
    """

    __slots__ = ("name", "_initial", "_combine", "_value", "_touched")

    def __init__(self, name: str, initial: Any, combine: Callable[[Any, Any], Any]) -> None:
        self.name = name
        self._initial = initial
        self._combine = combine
        self._value = initial
        self._touched = False

    def accumulate(self, value: Any) -> None:
        """Fold ``value`` into the running aggregate."""
        self._value = self._combine(self._value, value)
        self._touched = True

    def merge(self, other: "Aggregator") -> None:
        """Fold another aggregator's running value into this one.

        Used by the engine to combine per-worker partial aggregates,
        mirroring how a distributed Pregel implementation ships partial
        aggregates to the master.
        """
        if other._touched:
            self._value = self._combine(self._value, other._value)
            self._touched = True

    @property
    def value(self) -> Any:
        return self._value

    def reset(self) -> None:
        """Reset to the neutral element (called between supersteps)."""
        self._value = self._initial
        self._touched = False

    def fresh_copy(self) -> "Aggregator":
        """Create an identical but empty aggregator (for per-worker partials)."""
        return Aggregator(self.name, self._initial, self._combine)

    def dump_state(self) -> tuple:
        """``(value, touched)`` pair describing the running partial.

        The pair contains only plain data, so distributed backends can
        ship per-worker partials between processes without having to
        pickle the combine callable (which may be a lambda).
        """
        return (self._value, self._touched)

    def load_state(self, value: Any, touched: bool) -> None:
        """Restore a partial previously captured with :meth:`dump_state`."""
        self._value = value
        self._touched = touched


# The built-in combine functions are module-level (not lambdas) so that
# aggregators remain picklable — required by multiprocess execution
# backends under the ``spawn`` start method.
def _combine_sum(accumulated: Any, value: Any) -> Any:
    return accumulated + value


def _combine_max(accumulated: Any, value: Any) -> Any:
    return value if accumulated is None else max(accumulated, value)


def _combine_min(accumulated: Any, value: Any) -> Any:
    return value if accumulated is None else min(accumulated, value)


def _combine_or(accumulated: Any, value: Any) -> bool:
    return bool(accumulated) or bool(value)


def _combine_and(accumulated: Any, value: Any) -> bool:
    return bool(accumulated) and bool(value)


def _combine_count(accumulated: Any, _value: Any) -> int:
    return accumulated + 1


def sum_aggregator(name: str) -> Aggregator:
    """Aggregator summing integer/float contributions."""
    return Aggregator(name, 0, _combine_sum)


def max_aggregator(name: str) -> Aggregator:
    """Aggregator keeping the maximum contribution."""
    return Aggregator(name, None, _combine_max)


def min_aggregator(name: str) -> Aggregator:
    """Aggregator keeping the minimum contribution."""
    return Aggregator(name, None, _combine_min)


def or_aggregator(name: str) -> Aggregator:
    """Boolean "or" aggregator (used for convergence checks)."""
    return Aggregator(name, False, _combine_or)


def and_aggregator(name: str) -> Aggregator:
    """Boolean "and" aggregator."""
    return Aggregator(name, True, _combine_and)


def count_aggregator(name: str) -> Aggregator:
    """Counts how many vertices contributed (each contribution adds one)."""
    return Aggregator(name, 0, _combine_count)


class AggregatorRegistry:
    """The set of aggregators attached to one Pregel job.

    The registry owns the authoritative aggregators; workers get fresh
    per-superstep copies and the registry merges them back, then
    snapshots the merged values so vertices can read them in the next
    superstep via :meth:`previous_values`.
    """

    def __init__(self) -> None:
        self._aggregators: Dict[str, Aggregator] = {}
        self._previous: Dict[str, Any] = {}

    def register(self, aggregator: Aggregator) -> None:
        self._aggregators[aggregator.name] = aggregator

    def __contains__(self, name: str) -> bool:
        return name in self._aggregators

    def get(self, name: str) -> Optional[Aggregator]:
        return self._aggregators.get(name)

    def current_copies(self) -> Dict[str, Aggregator]:
        """Fresh per-superstep aggregator copies keyed by name."""
        return {name: agg.fresh_copy() for name, agg in self._aggregators.items()}

    def merge_from(self, copies: Dict[str, Aggregator]) -> None:
        """Merge per-worker partial aggregates into the authoritative set."""
        for name, partial in copies.items():
            self._aggregators[name].merge(partial)

    def merge_states(self, states: Dict[str, tuple]) -> None:
        """Merge ``name -> (value, touched)`` partials shipped by a worker.

        Mirror of :meth:`merge_from` for distributed backends whose
        workers report :meth:`Aggregator.dump_state` pairs instead of
        aggregator objects.
        """
        for name, (value, touched) in states.items():
            partial = self._aggregators[name].fresh_copy()
            partial.load_state(value, touched)
            self._aggregators[name].merge(partial)

    def finish_superstep(self) -> Dict[str, Any]:
        """Snapshot aggregated values and reset for the next superstep."""
        self._previous = {name: agg.value for name, agg in self._aggregators.items()}
        for aggregator in self._aggregators.values():
            aggregator.reset()
        return dict(self._previous)

    def previous_values(self) -> Dict[str, Any]:
        """Values aggregated during the previous superstep."""
        return dict(self._previous)
