"""Per-superstep and per-job accounting used by benchmarks.

The paper reports three quantities for its algorithm comparisons
(Tables II and III): the number of supersteps, the number of messages,
and the runtime.  The metrics objects collected here expose exactly
those quantities, plus the per-worker breakdowns needed by the cost
model to estimate runtime of a simulated cluster (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SuperstepMetrics:
    """Counters for one superstep of one Pregel job."""

    superstep: int
    active_vertices: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    compute_calls: int = 0
    compute_ops: int = 0
    # Raw (pre-combine) messages whose destination worker differs from
    # the sending worker — the traffic that actually crosses a process
    # (or, on a cluster, network) boundary.  messages_sent minus this
    # is the worker-local delivery count; the locality-aware
    # prefix_range partitioner exists to shrink this number.
    cross_worker_messages: int = 0
    # Per-worker breakdowns; index == worker id.
    worker_compute_ops: List[int] = field(default_factory=list)
    worker_messages_sent: List[int] = field(default_factory=list)
    worker_bytes_sent: List[int] = field(default_factory=list)
    worker_messages_received: List[int] = field(default_factory=list)
    worker_bytes_received: List[int] = field(default_factory=list)

    def max_worker_compute(self) -> int:
        return max(self.worker_compute_ops) if self.worker_compute_ops else 0

    def max_worker_bytes(self) -> int:
        sent = max(self.worker_bytes_sent) if self.worker_bytes_sent else 0
        received = max(self.worker_bytes_received) if self.worker_bytes_received else 0
        return max(sent, received)


@dataclass
class JobMetrics:
    """Aggregated counters for one Pregel (or mini-MapReduce) job."""

    job_name: str
    num_workers: int
    supersteps: List[SuperstepMetrics] = field(default_factory=list)
    loading_ops: int = 0
    loading_bytes_shuffled: int = 0
    dump_ops: int = 0

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(step.messages_sent for step in self.supersteps)

    @property
    def total_bytes(self) -> int:
        return sum(step.bytes_sent for step in self.supersteps)

    @property
    def total_compute_ops(self) -> int:
        return sum(step.compute_ops for step in self.supersteps)

    @property
    def total_cross_worker_messages(self) -> int:
        return sum(step.cross_worker_messages for step in self.supersteps)

    def add(self, step: SuperstepMetrics) -> None:
        self.supersteps.append(step)

    def summary(self) -> Dict[str, int]:
        """Flat dictionary of headline counters (for reports and tests)."""
        return {
            "job": self.job_name,
            "workers": self.num_workers,
            "supersteps": self.num_supersteps,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "compute_ops": self.total_compute_ops,
            "cross_worker_messages": self.total_cross_worker_messages,
        }


@dataclass
class PipelineMetrics:
    """Metrics for a chain of jobs (an assembly workflow run)."""

    jobs: List[JobMetrics] = field(default_factory=list)

    def add(self, job: JobMetrics) -> None:
        self.jobs.append(job)

    def job(self, name: str) -> Optional[JobMetrics]:
        """First job whose name matches ``name`` (None if absent)."""
        for job in self.jobs:
            if job.job_name == name:
                return job
        return None

    def jobs_named(self, name: str) -> List[JobMetrics]:
        """All jobs whose name matches ``name`` in execution order."""
        return [job for job in self.jobs if job.job_name == name]

    @property
    def total_supersteps(self) -> int:
        return sum(job.num_supersteps for job in self.jobs)

    @property
    def total_messages(self) -> int:
        return sum(job.total_messages for job in self.jobs)

    @property
    def total_cross_worker_messages(self) -> int:
        return sum(job.total_cross_worker_messages for job in self.jobs)

    def summary(self) -> Dict[str, int]:
        return {
            "jobs": len(self.jobs),
            "supersteps": self.total_supersteps,
            "messages": self.total_messages,
            "cross_worker_messages": self.total_cross_worker_messages,
        }
