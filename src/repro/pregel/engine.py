"""The BSP master facade: drives a Pregel job to termination.

Usage sketch::

    engine = PregelEngine(num_workers=16)
    result = engine.run(
        PregelJob(
            name="list-ranking",
            vertex_class=ListRankingVertex,
            vertices=initial_vertices,
            aggregators=[or_aggregator("changed")],
        )
    )
    result.vertices       # vertex_id -> Vertex after termination
    result.metrics        # JobMetrics (supersteps, messages, bytes, per-worker)
    result.aggregates     # list of per-superstep aggregate snapshots

Termination follows Pregel semantics: the job stops when every vertex
has voted to halt and no message is in flight.  A ``halt_condition``
callback lets a driver stop a job early based on aggregator values
(used by the simplified S-V algorithm and the labeling fallback logic).

The superstep loop itself lives in :mod:`repro.runtime`: the engine
delegates to an :class:`~repro.runtime.base.ExecutionBackend` chosen by
name (``"serial"`` for the exact in-process cluster simulation,
``"multiprocess"`` for shared-nothing worker processes).  Both produce
identical results; they differ in whether supersteps execute on real
parallel hardware or inside the calling process with exact counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import InvalidJobError
from .aggregator import Aggregator
from .message import Combiner
from .metrics import JobMetrics
from .vertex import Vertex, VertexFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.base import ExecutionBackend

#: Safety net: PPAs run in O(log n) supersteps, so any job that needs
#: more than this many supersteps is considered buggy.
DEFAULT_MAX_SUPERSTEPS = 10_000

#: Backend used when the caller does not pick one explicitly.
DEFAULT_BACKEND = "serial"


@dataclass
class PregelJob:
    """Specification of one vertex-centric job.

    Parameters
    ----------
    name:
        Human-readable job name (appears in metrics and reports).
    vertices:
        The initial vertices.  Any iterable of :class:`Vertex`
        instances; ownership passes to the engine.
    combiner:
        Optional message combiner.
    aggregators:
        Aggregators available to ``compute`` and to ``halt_condition``.
    vertex_factory:
        If given, messages to unknown vertex IDs create vertices
        instead of raising.
    halt_condition:
        Called after every superstep with the aggregate snapshot; the
        job stops when it returns True.
    max_supersteps:
        Upper bound on supersteps before the engine raises
        :class:`~repro.errors.SuperstepLimitExceededError`.
    """

    name: str
    vertices: Iterable[Vertex]
    combiner: Optional[Combiner] = None
    aggregators: Sequence[Aggregator] = field(default_factory=tuple)
    vertex_factory: Optional[VertexFactory] = None
    halt_condition: Optional[Callable[[Dict[str, Any]], bool]] = None
    max_supersteps: int = DEFAULT_MAX_SUPERSTEPS


@dataclass
class JobResult:
    """Everything a caller gets back from :meth:`PregelEngine.run`."""

    job_name: str
    vertices: Dict[int, Vertex]
    metrics: JobMetrics
    aggregates: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.metrics.num_supersteps

    @property
    def total_messages(self) -> int:
        return self.metrics.total_messages

    def vertex_values(self) -> Dict[int, Any]:
        """Convenience: ``vertex_id -> vertex.value`` for assertions."""
        return {vertex_id: vertex.value for vertex_id, vertex in self.vertices.items()}


class PregelEngine:
    """Runs Pregel jobs on ``num_workers`` workers via an execution backend.

    ``backend`` may be a registered backend name (``"serial"``,
    ``"multiprocess"``) or an already-constructed
    :class:`~repro.runtime.base.ExecutionBackend` instance, in which
    case its worker count takes precedence.
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: Union[str, "ExecutionBackend"] = DEFAULT_BACKEND,
        columnar_messages: Optional[bool] = None,
        partitioner: Optional[str] = None,
        message_plane: Optional[str] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        if num_workers <= 0:
            raise InvalidJobError(f"num_workers must be positive, got {num_workers}")
        # Deferred import: repro.runtime imports this module for the
        # PregelJob/JobResult dataclasses.
        from ..runtime import create_backend

        # None keeps each backend's own default ("hash" partitioning,
        # "shm" message plane); explicit names are forwarded so config
        # layers can pin a strategy by string.
        backend_kwargs = {}
        if partitioner is not None:
            backend_kwargs["partitioner"] = partitioner
        if message_plane is not None:
            backend_kwargs["message_plane"] = message_plane
        if memory_budget_mb is not None:
            backend_kwargs["memory_budget_mb"] = memory_budget_mb
        self._backend = create_backend(backend, num_workers=num_workers, **backend_kwargs)
        if columnar_messages is not None:
            # None keeps the backend's own setting (columnar by default);
            # an explicit flag — e.g. AssemblyConfig.use_vectorized —
            # overrides it for every job this engine runs.
            self._backend.columnar_messages = bool(columnar_messages)
        self.num_workers = self._backend.num_workers
        self.partitioner = self._backend.partitioner

    @property
    def backend(self) -> "ExecutionBackend":
        """The execution backend running this engine's jobs."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, job: PregelJob) -> JobResult:
        """Execute ``job`` until global termination and return the result."""
        from ..telemetry import span

        with span(
            f"pregel:{job.name}",
            backend=self._backend.name,
            num_workers=self.num_workers,
        ) as job_span:
            result = self._backend.run(job)
            job_span.set(
                supersteps=result.metrics.num_supersteps,
                messages=result.metrics.total_messages,
            )
            return result


def run_single_job(
    job: PregelJob,
    num_workers: int = 4,
    backend: str = DEFAULT_BACKEND,
) -> JobResult:
    """One-shot helper: create an engine, run ``job``, return the result."""
    return PregelEngine(num_workers=num_workers, backend=backend).run(job)
