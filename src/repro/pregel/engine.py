"""The BSP master loop: drives a Pregel job to termination.

Usage sketch::

    engine = PregelEngine(num_workers=16)
    result = engine.run(
        PregelJob(
            name="list-ranking",
            vertex_class=ListRankingVertex,
            vertices=initial_vertices,
            aggregators=[or_aggregator("changed")],
        )
    )
    result.vertices       # vertex_id -> Vertex after termination
    result.metrics        # JobMetrics (supersteps, messages, bytes, per-worker)
    result.aggregates     # list of per-superstep aggregate snapshots

Termination follows Pregel semantics: the job stops when every vertex
has voted to halt and no message is in flight.  A ``halt_condition``
callback lets a driver stop a job early based on aggregator values
(used by the simplified S-V algorithm and the labeling fallback logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import InvalidJobError, SuperstepLimitExceededError
from .aggregator import Aggregator, AggregatorRegistry
from .message import Combiner, MessageRouter
from .metrics import JobMetrics, SuperstepMetrics
from .partitioner import HashPartitioner
from .vertex import Vertex, VertexFactory
from .worker import Worker

#: Safety net: PPAs run in O(log n) supersteps, so any job that needs
#: more than this many supersteps is considered buggy.
DEFAULT_MAX_SUPERSTEPS = 10_000


@dataclass
class PregelJob:
    """Specification of one vertex-centric job.

    Parameters
    ----------
    name:
        Human-readable job name (appears in metrics and reports).
    vertices:
        The initial vertices.  Any iterable of :class:`Vertex`
        instances; ownership passes to the engine.
    combiner:
        Optional message combiner.
    aggregators:
        Aggregators available to ``compute`` and to ``halt_condition``.
    vertex_factory:
        If given, messages to unknown vertex IDs create vertices
        instead of raising.
    halt_condition:
        Called after every superstep with the aggregate snapshot; the
        job stops when it returns True.
    max_supersteps:
        Upper bound on supersteps before the engine raises
        :class:`~repro.errors.SuperstepLimitExceededError`.
    """

    name: str
    vertices: Iterable[Vertex]
    combiner: Optional[Combiner] = None
    aggregators: Sequence[Aggregator] = field(default_factory=tuple)
    vertex_factory: Optional[VertexFactory] = None
    halt_condition: Optional[Callable[[Dict[str, Any]], bool]] = None
    max_supersteps: int = DEFAULT_MAX_SUPERSTEPS


@dataclass
class JobResult:
    """Everything a caller gets back from :meth:`PregelEngine.run`."""

    job_name: str
    vertices: Dict[int, Vertex]
    metrics: JobMetrics
    aggregates: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return self.metrics.num_supersteps

    @property
    def total_messages(self) -> int:
        return self.metrics.total_messages

    def vertex_values(self) -> Dict[int, Any]:
        """Convenience: ``vertex_id -> vertex.value`` for assertions."""
        return {vertex_id: vertex.value for vertex_id, vertex in self.vertices.items()}


class PregelEngine:
    """Simulates a Pregel cluster with ``num_workers`` workers in-process."""

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers <= 0:
            raise InvalidJobError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.partitioner = HashPartitioner(num_workers)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, job: PregelJob) -> JobResult:
        """Execute ``job`` until global termination and return the result."""
        workers = self._partition_vertices(job.vertices)
        num_vertices = sum(len(worker) for worker in workers)
        if num_vertices == 0:
            raise InvalidJobError(f"job {job.name!r} has no vertices")

        registry = AggregatorRegistry()
        for aggregator in job.aggregators:
            registry.register(aggregator)

        router = MessageRouter(self.partitioner, job.combiner)
        metrics = JobMetrics(job_name=job.name, num_workers=self.num_workers)
        aggregate_history: List[Dict[str, Any]] = []

        superstep = 0
        inboxes: Dict[int, Dict[int, List[Any]]] = {}
        while True:
            if superstep >= job.max_supersteps:
                raise SuperstepLimitExceededError(job.max_supersteps)

            active = sum(worker.active_count() for worker in workers)
            pending = any(inboxes.get(w, {}) for w in range(self.num_workers))
            if active == 0 and not pending:
                break

            step_metrics = self._run_superstep(
                superstep, job, workers, inboxes, router, registry, num_vertices
            )
            metrics.add(step_metrics)

            snapshot = registry.finish_superstep()
            aggregate_history.append(snapshot)

            inboxes = router.deliver()
            superstep += 1

            if job.halt_condition is not None and job.halt_condition(snapshot):
                break

        vertices: Dict[int, Vertex] = {}
        for worker in workers:
            vertices.update(worker.vertices)
        return JobResult(
            job_name=job.name,
            vertices=vertices,
            metrics=metrics,
            aggregates=aggregate_history,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _partition_vertices(self, vertices: Iterable[Vertex]) -> List[Worker]:
        workers = [Worker(worker_id) for worker_id in range(self.num_workers)]
        for vertex in vertices:
            worker_id = self.partitioner.worker_for(vertex.vertex_id)
            workers[worker_id].add_vertex(vertex)
        return workers

    def _run_superstep(
        self,
        superstep: int,
        job: PregelJob,
        workers: List[Worker],
        inboxes: Dict[int, Dict[int, List[Any]]],
        router: MessageRouter,
        registry: AggregatorRegistry,
        num_vertices: int,
    ) -> SuperstepMetrics:
        step = SuperstepMetrics(superstep=superstep)
        previous_aggregates = registry.previous_values()

        for worker in workers:
            inbox = inboxes.get(worker.worker_id, {})
            aggregator_copies = registry.current_copies()
            outbox, counters = worker.execute_superstep(
                superstep=superstep,
                inbox=inbox,
                aggregator_copies=aggregator_copies,
                previous_aggregates=previous_aggregates,
                num_vertices=num_vertices,
                vertex_factory=job.vertex_factory,
            )
            registry.merge_from(aggregator_copies)
            router.post(outbox)

            step.compute_calls += counters["compute_calls"]
            step.compute_ops += counters["compute_ops"]
            step.messages_sent += counters["messages_sent"]
            step.bytes_sent += counters["bytes_sent"]
            step.worker_compute_ops.append(counters["compute_ops"])
            step.worker_messages_sent.append(counters["messages_sent"])
            step.worker_bytes_sent.append(counters["bytes_sent"])
            step.worker_messages_received.append(counters["messages_received"])
            step.worker_bytes_received.append(counters["bytes_received"])

        step.active_vertices = sum(worker.active_count() for worker in workers)
        return step


def run_single_job(
    job: PregelJob,
    num_workers: int = 4,
) -> JobResult:
    """One-shot helper: create an engine, run ``job``, return the result."""
    return PregelEngine(num_workers=num_workers).run(job)
