"""Simulated-cluster cost model.

The paper's Figure 12 reports end-to-end wall-clock time on a 16-node
cluster while varying the number of workers (16/32/48/64).  We run the
same algorithms in a single Python process, so wall-clock time would
measure the simulator rather than the algorithms.  Instead, execution
time is *estimated* from the exact per-worker counters collected by the
engine, using a classic BSP cost model:

    time(superstep) = max_w(compute_ops_w) * alpha
                    + max_w(bytes_sent_w, bytes_received_w) * beta
                    + barrier_latency

    time(job)       = sum over supersteps + loading + dumping costs
                    + per-job startup overhead

This keeps what matters for the reproduction — *which assembler is
faster, by what factor, and how the time falls as workers are added* —
while replacing the authors' hardware with explicit, documented
constants.  The defaults are loosely calibrated to commodity gigabit
hardware (the paper's testbed): one "compute op" ≈ 10 ns of CPU work,
one byte ≈ 8 ns of network time (≈ 1 Gbit/s), and a 50 ms barrier per
superstep (MPI barrier plus master bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .metrics import JobMetrics, PipelineMetrics, SuperstepMetrics


@dataclass(frozen=True)
class ClusterProfile:
    """Constants describing the simulated cluster.

    Attributes
    ----------
    seconds_per_compute_op:
        CPU time charged per abstract compute operation.
    seconds_per_byte:
        Network time charged per byte sent by the busiest worker.
    barrier_seconds:
        Fixed synchronisation cost per superstep.
    job_overhead_seconds:
        Fixed cost per job (task scheduling, graph (re)loading setup).
    loading_seconds_per_op:
        Cost per record touched during mini-MapReduce loading/shuffle.
    """

    seconds_per_compute_op: float = 1.0e-8
    seconds_per_byte: float = 8.0e-9
    barrier_seconds: float = 0.05
    job_overhead_seconds: float = 2.0
    loading_seconds_per_op: float = 2.0e-7

    @classmethod
    def gigabit_cluster(cls) -> "ClusterProfile":
        """Profile matching the paper's testbed class of hardware."""
        return cls()

    @classmethod
    def fast_network(cls) -> "ClusterProfile":
        """A 10 GbE-style profile (used by ablation benches)."""
        return cls(seconds_per_byte=0.8e-9)


class CostModel:
    """Turns :class:`JobMetrics` into estimated execution seconds."""

    def __init__(self, profile: ClusterProfile | None = None) -> None:
        self.profile = profile or ClusterProfile.gigabit_cluster()

    def superstep_seconds(self, step: SuperstepMetrics) -> float:
        """Estimated seconds for one superstep (slowest worker + barrier)."""
        compute_seconds = step.max_worker_compute() * self.profile.seconds_per_compute_op
        network_seconds = step.max_worker_bytes() * self.profile.seconds_per_byte
        return compute_seconds + network_seconds + self.profile.barrier_seconds

    def job_seconds(self, job: JobMetrics) -> float:
        """Estimated seconds for a whole job, including load/dump phases."""
        superstep_seconds = sum(self.superstep_seconds(step) for step in job.supersteps)
        # Loading and dumping are embarrassingly parallel across workers.
        workers = max(job.num_workers, 1)
        loading_seconds = (
            (job.loading_ops + job.dump_ops) / workers * self.profile.loading_seconds_per_op
        )
        shuffle_seconds = (
            job.loading_bytes_shuffled / workers * self.profile.seconds_per_byte
        )
        return (
            self.profile.job_overhead_seconds
            + superstep_seconds
            + loading_seconds
            + shuffle_seconds
        )

    def pipeline_seconds(self, pipeline: PipelineMetrics) -> float:
        """Estimated seconds for a chain of jobs executed back to back."""
        return sum(self.job_seconds(job) for job in pipeline.jobs)

    def breakdown(self, pipeline: PipelineMetrics) -> dict:
        """Per-job second estimates, useful for reports."""
        return {job.job_name: self.job_seconds(job) for job in pipeline.jobs}


def estimate_seconds(
    metrics: Iterable[JobMetrics] | PipelineMetrics | JobMetrics,
    profile: ClusterProfile | None = None,
) -> float:
    """Convenience wrapper: estimate seconds for metrics of any shape."""
    model = CostModel(profile)
    if isinstance(metrics, PipelineMetrics):
        return model.pipeline_seconds(metrics)
    if isinstance(metrics, JobMetrics):
        return model.job_seconds(metrics)
    return sum(model.job_seconds(job) for job in metrics)
