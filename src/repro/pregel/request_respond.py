"""Request-respond helper: Pregel+'s idiom for pull-style communication.

Several PPA-assembler operations need a vertex *v* to ask another
vertex *w* for part of *w*'s state (e.g. list ranking asks the
predecessor for its ``sum`` and ``pred``).  In plain Pregel this takes
two supersteps: a REQUEST superstep in which *v* messages *w*, and a
RESPOND superstep in which *w* answers every requester.  Pregel+
packages the pattern as the "request-respond API" and uses it to
resolve workload skew (many requesters asking one hot vertex are served
by a single respond value).

This module provides small message dataclasses plus a
:class:`RequestRespondMixin` that vertex classes can reuse so that the
two-superstep dance is written once.  The mixin also deduplicates
responses per target — the skew optimisation Pregel+ performs — which
keeps the per-superstep communication of a hot vertex O(number of
distinct requesting workers) in a real system; here it simply reduces
message counts the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from .vertex import ComputeContext


@dataclass(frozen=True)
class Request:
    """A pull request: ``requester`` asks the recipient for state."""

    requester: int
    tag: Any = None

    def message_size(self) -> int:
        return 9


@dataclass(frozen=True)
class Response:
    """Answer to a :class:`Request`; ``payload`` is the requested state."""

    responder: int
    payload: Any
    tag: Any = None

    def message_size(self) -> int:
        from .vertex import _estimate_size

        return 9 + _estimate_size(self.payload)


class RequestRespondMixin:
    """Mixin giving vertices ``send_request`` / ``respond_to_requests``.

    Subclasses decide *what* to answer by overriding
    :meth:`request_payload`.
    """

    def send_request(self, ctx: ComputeContext, target_id: int, tag: Any = None) -> None:
        """Ask ``target_id`` for its :meth:`request_payload`."""
        ctx.send(target_id, Request(requester=self.vertex_id, tag=tag))

    def respond_to_requests(self, messages: List[Any], ctx: ComputeContext) -> List[Any]:
        """Answer every :class:`Request` in ``messages``.

        Returns the non-request messages so the caller can process them
        normally.  Duplicate requests from the same requester are
        answered once.
        """
        other_messages: List[Any] = []
        answered: Dict[int, bool] = {}
        for message in messages:
            if isinstance(message, Request):
                if message.requester in answered:
                    continue
                answered[message.requester] = True
                payload = self.request_payload(message.tag)
                ctx.send(
                    message.requester,
                    Response(responder=self.vertex_id, payload=payload, tag=message.tag),
                )
            else:
                other_messages.append(message)
        return other_messages

    def request_payload(self, tag: Any) -> Any:
        """State shipped back to requesters; subclasses override this."""
        raise NotImplementedError("vertices using RequestRespondMixin must define request_payload()")


def split_responses(messages: List[Any]) -> tuple[List[Response], List[Any]]:
    """Partition ``messages`` into responses and everything else."""
    responses: List[Response] = []
    others: List[Any] = []
    for message in messages:
        if isinstance(message, Response):
            responses.append(message)
        else:
            others.append(message)
    return responses, others
