"""Deprecated imperative job chaining — superseded by :mod:`repro.workflow`.

:class:`JobChain` was the original home of the paper's in-memory job
chaining (Section II): a job *j'* obtains its input directly from job
*j*'s in-memory output through a user-defined ``convert(v)`` function.
That execution substrate now lives in
:class:`repro.workflow.executor.StageExecutor`, and workflows are
declared as named DAGs (:class:`repro.workflow.Workflow`) instead of
imperative call sequences.

``JobChain`` remains as a thin shim so existing user code keeps
working: it *is* a ``StageExecutor`` (same ``run_pregel`` /
``run_mapreduce`` / ``convert`` / metrics surface) but emits a
:class:`DeprecationWarning` on construction.  New code should create a
:class:`~repro.workflow.runner.WorkflowRunner` (or a bare
``StageExecutor`` where only the metered primitives are needed).
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..workflow.executor import ConversionResult, ConvertFunction, StageExecutor

__all__ = ["ConversionResult", "ConvertFunction", "JobChain"]


class JobChain(StageExecutor):
    """Deprecated alias of :class:`~repro.workflow.executor.StageExecutor`.

    Kept for backwards compatibility with pre-workflow user code; the
    whole repro library itself runs through :mod:`repro.workflow` (the
    test suite enforces this by turning ``DeprecationWarning`` from
    ``repro.*`` modules into errors).
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "serial",
        columnar_messages: Optional[bool] = None,
    ) -> None:
        warnings.warn(
            "JobChain is deprecated: declare a repro.workflow.Workflow and "
            "execute it with WorkflowRunner, or use "
            "repro.workflow.StageExecutor for the bare metered primitives",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            num_workers=num_workers,
            backend=backend,
            columnar_messages=columnar_messages,
        )
