"""Vertex abstraction for the Pregel computation model.

A Pregel program is written from the perspective of a single vertex:
in every superstep each *active* vertex receives the messages sent to
it in the previous superstep, may mutate its own value, send messages
to other vertices, and finally vote to halt.  The engine in
:mod:`repro.pregel.engine` drives instances of :class:`Vertex`
subclasses through this loop.

The design follows the description in Section II of the paper
(Malewicz et al.'s Pregel as exposed by Pregel+), including the
``vote_to_halt`` / reactivation-on-message semantics and access to the
current superstep number and aggregators through a per-superstep
:class:`ComputeContext`.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Iterable, List, Optional, TypeVar

MessageT = TypeVar("MessageT")
ValueT = TypeVar("ValueT")


class ComputeContext:
    """Everything a vertex may touch during one ``compute`` call.

    The context is created by the worker that owns the vertex and gives
    the vertex controlled access to:

    * the current superstep number (``superstep``),
    * message sending (``send``),
    * aggregators (``aggregate`` / ``aggregated_value``),
    * global graph statistics (``num_vertices``).

    Keeping this state out of the :class:`Vertex` instances themselves
    keeps vertices cheap (they are created in the millions) and makes
    the message accounting used by the cost model exact.
    """

    __slots__ = ("superstep", "_outbox", "_aggregators", "_previous_aggregates",
                 "num_vertices", "messages_sent", "bytes_sent")

    def __init__(
        self,
        superstep: int,
        outbox: List[tuple],
        aggregators: Dict[str, Any],
        previous_aggregates: Dict[str, Any],
        num_vertices: int,
    ) -> None:
        self.superstep = superstep
        self._outbox = outbox
        self._aggregators = aggregators
        self._previous_aggregates = previous_aggregates
        self.num_vertices = num_vertices
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, target_id: int, message: Any) -> None:
        """Send ``message`` to the vertex identified by ``target_id``.

        The message is delivered at the start of the next superstep.
        Sending to a non-existent vertex raises
        :class:`~repro.errors.VertexNotFoundError` at delivery time
        unless the job opted into auto-creating vertices (mirroring the
        behaviour of Pregel+ with a vertex-factory).
        """
        self._outbox.append((target_id, message))
        self.messages_sent += 1
        self.bytes_sent += _estimate_size(message)

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the aggregator called ``name``."""
        aggregator = self._aggregators.get(name)
        if aggregator is None:
            from ..errors import AggregatorError

            raise AggregatorError(f"unknown aggregator {name!r}")
        aggregator.accumulate(value)

    def aggregated_value(self, name: str) -> Any:
        """Return the value aggregated under ``name`` in the previous superstep."""
        if name not in self._previous_aggregates:
            from ..errors import AggregatorError

            raise AggregatorError(f"aggregator {name!r} has no value from the previous superstep")
        return self._previous_aggregates[name]


def _estimate_size(message: Any) -> int:
    """Rough byte-size estimate of a message for the cost model.

    The estimate intentionally stays cheap: integers count as 8 bytes,
    strings and bytes as their length, and containers as the sum of
    their elements plus a small header.  The absolute numbers only need
    to be consistent across algorithms, because the cost model compares
    algorithms against each other rather than against real hardware.
    """
    if message is None:
        return 1
    if isinstance(message, bool):
        return 1
    if isinstance(message, int):
        return 8
    if isinstance(message, float):
        return 8
    if isinstance(message, (str, bytes)):
        return len(message)
    if isinstance(message, (tuple, list)):
        return 4 + sum(_estimate_size(item) for item in message)
    if isinstance(message, dict):
        return 4 + sum(
            _estimate_size(key) + _estimate_size(value) for key, value in message.items()
        )
    if hasattr(message, "message_size"):
        return int(message.message_size())
    return 16


class Vertex(Generic[ValueT, MessageT]):
    """Base class for user-defined Pregel vertices.

    Subclasses implement :meth:`compute`.  A vertex owns

    * ``vertex_id`` — the unique 64-bit integer identifier used for
      message routing and hash partitioning,
    * ``value`` — an arbitrary mutable attribute ``a(v)``,
    * ``edges`` — the adjacency list; the engine treats it as opaque
      (assembly jobs store compact bitmaps here, PPA primitives store
      plain lists of neighbour IDs).

    ``halted`` implements vote-to-halt: a halted vertex is skipped by
    the engine until a message arrives for it, which reactivates it.

    ``columnar_state`` (class attribute, default False) marks vertex
    classes whose entire state is small non-negative integers —
    ``value`` an int and ``edges`` a plain list of ints.  Partitions of
    such vertices are shipped between multiprocess workers and the
    master as a few ndarrays instead of per-object pickles; results are
    identical, only the transfer is cheaper.  Opting in is a promise
    that ``cls(vertex_id, value, edges)`` reconstructs the vertex.
    """

    __slots__ = ("vertex_id", "value", "edges", "halted")

    #: Opt-in for the columnar vertex-state transfer (see class docstring).
    columnar_state = False

    def __init__(self, vertex_id: int, value: ValueT = None, edges: Any = None) -> None:
        self.vertex_id = vertex_id
        self.value = value
        self.edges = edges if edges is not None else []
        self.halted = False

    def compute(self, messages: List[MessageT], ctx: ComputeContext) -> None:
        """Process incoming ``messages`` for one superstep.

        Subclasses must override this.  The default implementation
        raises ``NotImplementedError`` so that forgetting to override
        it fails loudly.
        """
        raise NotImplementedError("Vertex subclasses must implement compute()")

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message reactivates it."""
        self.halted = True

    def reactivate(self) -> None:
        """Mark the vertex active again (used by the engine on message delivery)."""
        self.halted = False

    @property
    def degree(self) -> int:
        """Number of adjacency-list entries (``d(v)`` in the paper)."""
        try:
            return len(self.edges)
        except TypeError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else "active"
        return f"<{type(self).__name__} id={self.vertex_id} value={self.value!r} {state}>"


class VertexFactory:
    """Creates vertices on demand when a message targets an unknown ID.

    Google's Pregel creates missing vertices automatically; Pregel+
    lets the application decide.  Jobs that want auto-creation pass a
    factory; jobs that consider an unknown target a bug pass ``None``
    and get :class:`~repro.errors.VertexNotFoundError` instead.
    """

    def __init__(self, vertex_class, default_value=None, default_edges=None) -> None:
        self._vertex_class = vertex_class
        self._default_value = default_value
        self._default_edges = default_edges

    def create(self, vertex_id: int) -> Vertex:
        edges = list(self._default_edges) if self._default_edges is not None else None
        return self._vertex_class(vertex_id, self._default_value, edges)


def vertices_from_pairs(
    vertex_class,
    pairs: Iterable[tuple],
) -> List[Vertex]:
    """Build vertices from ``(vertex_id, value, edges)`` tuples.

    Convenience constructor used by tests and examples.  ``pairs`` may
    contain two-element tuples (``edges`` defaults to an empty list).
    """
    vertices: List[Vertex] = []
    for pair in pairs:
        if len(pair) == 2:
            vertex_id, value = pair
            vertices.append(vertex_class(vertex_id, value))
        else:
            vertex_id, value, edges = pair
            vertices.append(vertex_class(vertex_id, value, edges))
    return vertices
