"""Pregel substrate: an in-process reproduction of the Pregel+ engine.

This package provides everything the paper's algorithms need from a
Pregel-like system:

* :class:`~repro.pregel.vertex.Vertex` and the ``compute``/vote-to-halt
  contract,
* :class:`~repro.pregel.engine.PregelEngine` — the BSP master loop over
  simulated workers with hash partitioning,
* aggregators, combiners and the request-respond idiom,
* the paper's two API extensions: mini-MapReduce loading
  (:class:`~repro.pregel.mapreduce.MiniMapReduce`) and in-memory job
  chaining, now provided by
  :class:`~repro.workflow.executor.StageExecutor` (the old
  :class:`~repro.pregel.job.JobChain` remains as a deprecated shim),
* exact per-superstep metrics and a BSP cost model used to estimate
  cluster execution time (Figure 12 of the paper).

Multi-job computations are declared as workflow DAGs in
:mod:`repro.workflow` and executed by its ``WorkflowRunner``.
"""

from .aggregator import (
    Aggregator,
    AggregatorRegistry,
    and_aggregator,
    count_aggregator,
    max_aggregator,
    min_aggregator,
    or_aggregator,
    sum_aggregator,
)
from .cost_model import ClusterProfile, CostModel, estimate_seconds
from .engine import DEFAULT_MAX_SUPERSTEPS, JobResult, PregelEngine, PregelJob, run_single_job
from .job import ConversionResult, JobChain
from .mapreduce import MapReduceResult, MiniMapReduce
from .message import Combiner, MessageRouter, min_combiner, sum_combiner
from .metrics import JobMetrics, PipelineMetrics, SuperstepMetrics
from .partitioner import HashPartitioner
from .request_respond import Request, RequestRespondMixin, Response, split_responses
from .vertex import ComputeContext, Vertex, VertexFactory, vertices_from_pairs
from .worker import Worker

__all__ = [
    "Aggregator",
    "AggregatorRegistry",
    "and_aggregator",
    "count_aggregator",
    "max_aggregator",
    "min_aggregator",
    "or_aggregator",
    "sum_aggregator",
    "ClusterProfile",
    "CostModel",
    "estimate_seconds",
    "DEFAULT_MAX_SUPERSTEPS",
    "JobResult",
    "PregelEngine",
    "PregelJob",
    "run_single_job",
    "ConversionResult",
    "JobChain",
    "MapReduceResult",
    "MiniMapReduce",
    "Combiner",
    "MessageRouter",
    "min_combiner",
    "sum_combiner",
    "JobMetrics",
    "PipelineMetrics",
    "SuperstepMetrics",
    "HashPartitioner",
    "Request",
    "RequestRespondMixin",
    "Response",
    "split_responses",
    "ComputeContext",
    "Vertex",
    "VertexFactory",
    "vertices_from_pairs",
    "Worker",
]
