"""Message routing infrastructure for the Pregel engine.

Messages sent during superstep *s* are buffered per destination worker
and delivered at the start of superstep *s+1*.  An optional
:class:`Combiner` merges messages addressed to the same vertex as they
are posted (sender-side), which is how real Pregel systems (and the
paper's Pregel+) reduce network traffic and bound buffer memory; the
engine counts both raw and combined message totals so that benchmarks
can report the numbers the paper reports (raw messages).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .partitioner import HashPartitioner
from .vertex import _estimate_size


class Combiner:
    """Merges messages destined for the same vertex.

    ``combine`` must be associative and commutative.  A combiner is an
    optimisation only: algorithms must produce the same result with or
    without it (property-based tests in ``tests/pregel`` check this for
    the PPA primitives).
    """

    def __init__(self, combine: Callable[[Any, Any], Any]) -> None:
        self._combine = combine

    def combine(self, left: Any, right: Any) -> Any:
        return self._combine(left, right)


def _combine_add(left: Any, right: Any) -> Any:
    # Module-level (not a lambda) so the combiner stays picklable for
    # multiprocess backends under the ``spawn`` start method.
    return left + right


def min_combiner() -> Combiner:
    """Combiner keeping only the smallest message (e.g. for hash-min CC)."""
    return Combiner(min)


def sum_combiner() -> Combiner:
    """Combiner summing numeric messages."""
    return Combiner(_combine_add)


class MessageRouter:
    """Buffers outgoing messages and delivers them to per-vertex inboxes.

    The router models the communication layer of a distributed Pregel
    system: messages are grouped by destination worker so that the cost
    model can charge each worker for the bytes it sends and receives,
    and so that per-worker skew shows up in simulated execution time.

    When a combiner is configured it is applied *incrementally at post
    time* (sender-side), the way real Pregel systems combine before
    messages hit the network: the buffer then holds at most one value
    per destination vertex, so peak memory is bounded by the number of
    distinct targets instead of the raw message count.  The raw
    message/byte counters keep counting every posted message, which is
    what the paper's tables report.
    """

    def __init__(self, partitioner: HashPartitioner, combiner: Optional[Combiner] = None) -> None:
        self._partitioner = partitioner
        self._combiner = combiner
        # Without a combiner: outgoing[worker] is the list of
        # (target_id, message) produced this superstep.
        self._outgoing: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)
        # With a combiner: combined[worker][target_id] is the running
        # combined value (insertion-ordered by first message per target).
        self._combined: Dict[int, Dict[int, Any]] = defaultdict(dict)
        # Raw per-worker counts survive combining for the accounting API.
        self._pending_messages: Dict[int, int] = defaultdict(int)
        self._pending_bytes: Dict[int, int] = defaultdict(int)
        self.raw_message_count = 0
        self.raw_byte_count = 0

    def post(self, messages: List[Tuple[int, Any]]) -> None:
        """Accept a batch of ``(target_id, message)`` pairs from one vertex."""
        for target_id, message in messages:
            worker = self._partitioner.worker_for(target_id)
            self.raw_message_count += 1
            size = _estimate_size(message)
            self.raw_byte_count += size
            self._pending_messages[worker] += 1
            self._pending_bytes[worker] += size
            if self._combiner is None:
                self._outgoing[worker].append((target_id, message))
            else:
                slot = self._combined[worker]
                if target_id in slot:
                    slot[target_id] = self._combiner.combine(slot[target_id], message)
                else:
                    slot[target_id] = message

    def messages_to_worker(self, worker: int) -> int:
        """Number of pending raw messages addressed to ``worker``."""
        return self._pending_messages.get(worker, 0)

    def bytes_to_worker(self, worker: int) -> int:
        """Pending raw byte volume addressed to ``worker``."""
        return self._pending_bytes.get(worker, 0)

    def buffered_message_count(self) -> int:
        """Messages actually held in memory right now.

        Equals the raw pending count without a combiner; with one it is
        bounded by the number of distinct destination vertices.
        """
        if self._combiner is None:
            return sum(len(pending) for pending in self._outgoing.values())
        return sum(len(slot) for slot in self._combined.values())

    def deliver(self) -> Dict[int, Dict[int, List[Any]]]:
        """Group pending messages into per-worker, per-vertex inboxes.

        Returns a mapping ``worker -> vertex_id -> [messages]`` and
        clears the internal buffers.  When a combiner is configured each
        per-vertex list holds the single combined message, folded in
        post order — the same fold the old deliver-time combining
        performed, so results are unchanged.
        """
        inboxes: Dict[int, Dict[int, List[Any]]] = {}
        if self._combiner is None:
            for worker, pending in self._outgoing.items():
                per_vertex: Dict[int, List[Any]] = defaultdict(list)
                for target_id, message in pending:
                    per_vertex[target_id].append(message)
                inboxes[worker] = dict(per_vertex)
        else:
            for worker, slot in self._combined.items():
                inboxes[worker] = {target_id: [message] for target_id, message in slot.items()}
        self._outgoing = defaultdict(list)
        self._combined = defaultdict(dict)
        self._pending_messages = defaultdict(int)
        self._pending_bytes = defaultdict(int)
        return inboxes

    def has_pending(self) -> bool:
        """True if any message is waiting for delivery."""
        return any(self._outgoing.values()) or any(self._combined.values())

    def reset_counters(self) -> None:
        self.raw_message_count = 0
        self.raw_byte_count = 0
