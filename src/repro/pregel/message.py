"""Message routing infrastructure for the Pregel engine.

Messages sent during superstep *s* are buffered per destination worker
and delivered at the start of superstep *s+1*.  An optional
:class:`Combiner` merges messages addressed to the same vertex before
delivery, which is how real Pregel systems (and the paper's Pregel+)
reduce network traffic; the engine counts both raw and combined
message totals so that benchmarks can report the numbers the paper
reports (raw messages).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .partitioner import HashPartitioner
from .vertex import _estimate_size


class Combiner:
    """Merges messages destined for the same vertex.

    ``combine`` must be associative and commutative.  A combiner is an
    optimisation only: algorithms must produce the same result with or
    without it (property-based tests in ``tests/pregel`` check this for
    the PPA primitives).
    """

    def __init__(self, combine: Callable[[Any, Any], Any]) -> None:
        self._combine = combine

    def combine(self, left: Any, right: Any) -> Any:
        return self._combine(left, right)


def min_combiner() -> Combiner:
    """Combiner keeping only the smallest message (e.g. for hash-min CC)."""
    return Combiner(min)


def sum_combiner() -> Combiner:
    """Combiner summing numeric messages."""
    return Combiner(lambda left, right: left + right)


class MessageRouter:
    """Buffers outgoing messages and delivers them to per-vertex inboxes.

    The router models the communication layer of a distributed Pregel
    system: messages are grouped by destination worker so that the cost
    model can charge each worker for the bytes it sends and receives,
    and so that per-worker skew shows up in simulated execution time.
    """

    def __init__(self, partitioner: HashPartitioner, combiner: Optional[Combiner] = None) -> None:
        self._partitioner = partitioner
        self._combiner = combiner
        # outgoing[worker] is the list of (target_id, message) produced this superstep
        self._outgoing: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)
        self.raw_message_count = 0
        self.raw_byte_count = 0

    def post(self, messages: List[Tuple[int, Any]]) -> None:
        """Accept a batch of ``(target_id, message)`` pairs from one vertex."""
        for target_id, message in messages:
            worker = self._partitioner.worker_for(target_id)
            self._outgoing[worker].append((target_id, message))
            self.raw_message_count += 1
            self.raw_byte_count += _estimate_size(message)

    def messages_to_worker(self, worker: int) -> int:
        """Number of pending raw messages addressed to ``worker``."""
        return len(self._outgoing.get(worker, ()))

    def bytes_to_worker(self, worker: int) -> int:
        """Pending byte volume addressed to ``worker``."""
        return sum(_estimate_size(message) for _target, message in self._outgoing.get(worker, ()))

    def deliver(self) -> Dict[int, Dict[int, List[Any]]]:
        """Group pending messages into per-worker, per-vertex inboxes.

        Returns a mapping ``worker -> vertex_id -> [messages]`` and
        clears the internal buffers.  When a combiner is configured the
        per-vertex lists are collapsed to a single combined message.
        """
        inboxes: Dict[int, Dict[int, List[Any]]] = {}
        for worker, pending in self._outgoing.items():
            per_vertex: Dict[int, List[Any]] = defaultdict(list)
            for target_id, message in pending:
                per_vertex[target_id].append(message)
            if self._combiner is not None:
                for target_id, messages in per_vertex.items():
                    combined = messages[0]
                    for message in messages[1:]:
                        combined = self._combiner.combine(combined, message)
                    per_vertex[target_id] = [combined]
            inboxes[worker] = dict(per_vertex)
        self._outgoing = defaultdict(list)
        return inboxes

    def has_pending(self) -> bool:
        """True if any message is waiting for delivery."""
        return any(self._outgoing.values())

    def reset_counters(self) -> None:
        self.raw_message_count = 0
        self.raw_byte_count = 0
