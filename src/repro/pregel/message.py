"""Message routing infrastructure for the Pregel engine.

Messages sent during superstep *s* are buffered per destination worker
and delivered at the start of superstep *s+1*.  An optional
:class:`Combiner` merges messages addressed to the same vertex as they
are posted (sender-side), which is how real Pregel systems (and the
paper's Pregel+) reduce network traffic and bound buffer memory; the
engine counts both raw and combined message totals so that benchmarks
can report the numbers the paper reports (raw messages).

Columnar batch path
-------------------
Jobs whose messages are plain integers (the common case: vertex IDs
and counts) can skip per-message Python work entirely.  When a posted
batch qualifies, the router stores it as two parallel ``uint64``
arrays, routes it with a vectorized hash, combines duplicates with a
segment-reduce, and materialises the per-vertex inboxes only at
delivery — reproducing the scalar path's results *bit for bit*:

* raw message/byte counters are computed from array lengths (8 bytes
  per int, exactly what ``_estimate_size`` charges);
* inbox keys appear in first-occurrence post order, matching the
  scalar dict-insertion order;
* only ``min``/``sum`` combiners are vectorized, for which integer
  reassociation is exact (a ``sum`` whose total could wrap 64 bits
  falls back to Python arithmetic);
* delivered targets and values are converted back to Python ints.

Batches that do not qualify (non-int payloads, custom combiners, tiny
batches) flow through the original scalar path unchanged, and a job
that starts columnar but later posts a non-qualifying batch is demoted
mid-superstep with its buffered arrays replayed in post order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .partitioner import HashPartitioner
from .vertex import _estimate_size

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - containers without numpy
    np = None  # type: ignore[assignment]

#: Batches smaller than this stay on the scalar path: array conversion
#: has fixed overhead, and tiny batches are the realm of unit tests
#: that assert on scalar internals.
COLUMNAR_MIN_BATCH = 64

#: Combiner kinds with an exact vectorized segment-reduce.
_VECTOR_KINDS = ("min", "sum")


class Combiner:
    """Merges messages destined for the same vertex.

    ``combine`` must be associative and commutative.  A combiner is an
    optimisation only: algorithms must produce the same result with or
    without it (property-based tests in ``tests/pregel`` check this for
    the PPA primitives).

    ``kind`` optionally names a vectorizable reduction (``"min"`` or
    ``"sum"``); combiners without a kind always combine through the
    Python callable.
    """

    def __init__(self, combine: Callable[[Any, Any], Any], kind: Optional[str] = None) -> None:
        self._combine = combine
        self.kind = kind

    def combine(self, left: Any, right: Any) -> Any:
        return self._combine(left, right)


def _combine_add(left: Any, right: Any) -> Any:
    # Module-level (not a lambda) so the combiner stays picklable for
    # multiprocess backends under the ``spawn`` start method.
    return left + right


def min_combiner() -> Combiner:
    """Combiner keeping only the smallest message (e.g. for hash-min CC)."""
    return Combiner(min, kind="min")


def sum_combiner() -> Combiner:
    """Combiner summing numeric messages."""
    return Combiner(_combine_add, kind="sum")


# ----------------------------------------------------------------------
# columnar helpers (shared with the multiprocess backend)
# ----------------------------------------------------------------------
def combiner_vectorizable(combiner: Optional[Combiner]) -> bool:
    """True when a job's combining step has an exact array reduction."""
    return combiner is None or getattr(combiner, "kind", None) in _VECTOR_KINDS


def columns_from_pairs(pairs):
    """Convert ``[(target, message), ...]`` to two uint64 arrays.

    Returns ``None`` when any element is not a plain ``int`` (bools and
    floats would silently coerce and corrupt byte accounting / values)
    or does not fit an unsigned 64-bit lane.
    """
    if np is None:
        return None
    for target, message in pairs:
        # The negative check matters on NumPy < 2.0, where np.array
        # silently wraps negative Python ints into the uint64 lane
        # instead of raising OverflowError.
        if (
            type(target) is not int
            or type(message) is not int
            or target < 0
            or message < 0
        ):
            return None
    try:
        table = np.array(pairs, dtype=np.uint64)
    except (OverflowError, TypeError, ValueError):
        return None
    if table.ndim != 2 or table.shape[1] != 2:  # pragma: no cover - defensive
        return None
    return np.ascontiguousarray(table[:, 0]), np.ascontiguousarray(table[:, 1])


def combine_columns(targets, values, kind: str):
    """Segment-reduce duplicate targets; first-occurrence order.

    Returns ``(unique_targets, combined_values)`` ordered by each
    target's first appearance — the order the scalar combining dict
    would hold them in.  Returns ``None`` when a ``sum`` could exceed
    the uint64 lane (the caller then folds in Python, where ints do
    not wrap).
    """
    if targets.size <= 1:
        return targets, values
    if kind == "sum" and values.size and int(values.max()) >= (1 << 63) // values.size:
        return None
    sort_index = np.argsort(targets, kind="stable")
    sorted_targets = targets[sort_index]
    sorted_values = values[sort_index]
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1]))
    )
    if kind == "min":
        reduced = np.minimum.reduceat(sorted_values, run_starts)
    else:
        reduced = np.add.reduceat(sorted_values, run_starts)
    # The stable sort keeps each run in posting order, so the run head's
    # original index is the target's first occurrence.
    first_seen = sort_index[run_starts]
    order = np.argsort(first_seen, kind="stable")
    return sorted_targets[run_starts][order], reduced[order]


def group_columns(targets, values):
    """Group values per target, preserving scalar-path ordering.

    Yields ``(target, [values...])`` with targets in first-occurrence
    order and each value list in posting order — exactly the structure
    the scalar per-vertex grouping dict produces.  Everything yielded
    is plain Python ints.
    """
    sort_index = np.argsort(targets, kind="stable")
    sorted_targets = targets[sort_index]
    sorted_values = values[sort_index].tolist()
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_targets[1:] != sorted_targets[:-1]))
    )
    run_ends = np.concatenate((run_starts[1:], [sorted_targets.size]))
    first_seen = sort_index[run_starts]
    order = np.argsort(first_seen, kind="stable")
    keys = sorted_targets[run_starts].tolist()
    starts = run_starts.tolist()
    ends = run_ends.tolist()
    for run in order.tolist():
        yield keys[run], sorted_values[starts[run] : ends[run]]


class MessageRouter:
    """Buffers outgoing messages and delivers them to per-vertex inboxes.

    The router models the communication layer of a distributed Pregel
    system: messages are grouped by destination worker so that the cost
    model can charge each worker for the bytes it sends and receives,
    and so that per-worker skew shows up in simulated execution time.

    When a combiner is configured it is applied *incrementally at post
    time* (sender-side), the way real Pregel systems combine before
    messages hit the network: the buffer then holds at most one value
    per destination vertex, so peak memory is bounded by the number of
    distinct targets instead of the raw message count.  The raw
    message/byte counters keep counting every posted message, which is
    what the paper's tables report.

    ``columnar=True`` (the default) enables the array batch path for
    qualifying integer-message jobs; see the module docstring.  The
    results are bit-identical either way.
    """

    def __init__(
        self,
        partitioner: HashPartitioner,
        combiner: Optional[Combiner] = None,
        columnar: bool = True,
    ) -> None:
        self._partitioner = partitioner
        self._combiner = combiner
        self._columnar = bool(columnar) and np is not None
        # Without a combiner: outgoing[worker] is the list of
        # (target_id, message) produced this superstep.
        self._outgoing: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)
        # With a combiner: combined[worker][target_id] is the running
        # combined value (insertion-ordered by first message per target).
        self._combined: Dict[int, Dict[int, Any]] = defaultdict(dict)
        # Columnar segments in post order: (targets, values) uint64
        # arrays, already combined per batch when a combiner is set.
        self._segments: List[Tuple[Any, Any]] = []
        # Per-superstep columnar decision: None until the first post,
        # then "cols" or "py"; deliver() resets it.
        self._mode: Optional[str] = None
        # Raw per-worker counts survive combining for the accounting API.
        self._pending_messages: Dict[int, int] = defaultdict(int)
        self._pending_bytes: Dict[int, int] = defaultdict(int)
        self.raw_message_count = 0
        self.raw_byte_count = 0
        # Raw messages whose destination worker differed from the
        # posting worker (only charged when post() names a sender).
        self.cross_message_count = 0

    def post(self, messages: List[Tuple[int, Any]], sender: Optional[int] = None) -> None:
        """Accept a batch of ``(target_id, message)`` pairs from one vertex
        or worker outbox.

        ``sender`` optionally names the worker that produced the batch;
        when given, messages routed to a different worker are charged to
        ``cross_message_count`` (the boundary-crossing traffic the
        locality metrics report).
        """
        if not messages:
            return
        if self._columnar and self._mode != "py":
            if self._mode is None:
                # The first non-empty batch decides the superstep's mode.
                # A small or non-qualifying first batch pins the whole
                # superstep to the scalar path: mixing scalar and
                # columnar stores would lose the global first-occurrence
                # inbox ordering that bit-for-bit parity requires, and
                # per-worker outboxes are posted whole, so a qualifying
                # job's first batch is essentially never small.
                if (
                    len(messages) >= COLUMNAR_MIN_BATCH
                    and combiner_vectorizable(self._combiner)
                    and self._post_columnar(messages, sender)
                ):
                    self._mode = "cols"
                    return
                self._mode = "py"
            else:  # already columnar this superstep
                if self._post_columnar(messages, sender):
                    return
                self._demote()
        self._post_scalar(messages, sender)

    # ------------------------------------------------------------------
    # scalar path (reference implementation)
    # ------------------------------------------------------------------
    def _post_scalar(
        self, messages: List[Tuple[int, Any]], sender: Optional[int] = None
    ) -> None:
        for target_id, message in messages:
            worker = self._partitioner.worker_for(target_id)
            self.raw_message_count += 1
            if sender is not None and worker != sender:
                self.cross_message_count += 1
            size = _estimate_size(message)
            self.raw_byte_count += size
            self._pending_messages[worker] += 1
            self._pending_bytes[worker] += size
            if self._combiner is None:
                self._outgoing[worker].append((target_id, message))
            else:
                slot = self._combined[worker]
                if target_id in slot:
                    slot[target_id] = self._combiner.combine(slot[target_id], message)
                else:
                    slot[target_id] = message

    # ------------------------------------------------------------------
    # columnar path
    # ------------------------------------------------------------------
    def _post_columnar(
        self, messages: List[Tuple[int, Any]], sender: Optional[int] = None
    ) -> bool:
        columns = columns_from_pairs(messages)
        if columns is None:
            return False
        targets, values = columns
        if self._combiner is not None:
            combined = combine_columns(targets, values, self._combiner.kind)
            if combined is None:
                return False
            stored_targets, stored_values = combined
        else:
            stored_targets, stored_values = targets, values
        # Raw accounting always charges the *posted* messages.
        raw_count = int(targets.size)
        destinations = self._partitioner.worker_for_array(targets)
        pending = np.bincount(destinations, minlength=self._partitioner.num_workers)
        self.raw_message_count += raw_count
        self.raw_byte_count += 8 * raw_count
        if sender is not None:
            self.cross_message_count += raw_count - int(
                np.count_nonzero(destinations == sender)
            )
        for worker in np.flatnonzero(pending).tolist():
            count = int(pending[worker])
            self._pending_messages[worker] += count
            self._pending_bytes[worker] += 8 * count
        self._segments.append((stored_targets, stored_values))
        return True

    def _demote(self) -> None:
        """Replay buffered columnar segments through the scalar stores.

        Raw counters were already charged at post time, so the replay
        only rebuilds the scalar buffers, in the original post order.
        """
        segments, self._segments = self._segments, []
        self._mode = "py"
        for targets, values in segments:
            pairs = list(zip(targets.tolist(), values.tolist()))
            if self._combiner is None:
                for target_id, message in pairs:
                    worker = self._partitioner.worker_for(target_id)
                    self._outgoing[worker].append((target_id, message))
            else:
                for target_id, message in pairs:
                    worker = self._partitioner.worker_for(target_id)
                    slot = self._combined[worker]
                    if target_id in slot:
                        slot[target_id] = self._combiner.combine(slot[target_id], message)
                    else:
                        slot[target_id] = message

    def _deliver_columnar(self) -> Dict[int, Dict[int, List[Any]]]:
        targets = np.concatenate([segment[0] for segment in self._segments])
        values = np.concatenate([segment[1] for segment in self._segments])
        destinations = self._partitioner.worker_for_array(targets)
        inboxes: Dict[int, Dict[int, List[Any]]] = {}
        for worker in np.unique(destinations).tolist():
            selector = destinations == worker
            worker_targets = targets[selector]
            worker_values = values[selector]
            if self._combiner is None:
                inboxes[worker] = {
                    target: messages
                    for target, messages in group_columns(worker_targets, worker_values)
                }
                continue
            combined = combine_columns(worker_targets, worker_values, self._combiner.kind)
            if combined is None:
                # A sum could wrap the uint64 lane: fold exactly in Python.
                slot: Dict[int, Any] = {}
                for target, message in zip(worker_targets.tolist(), worker_values.tolist()):
                    if target in slot:
                        slot[target] = self._combiner.combine(slot[target], message)
                    else:
                        slot[target] = message
                inboxes[worker] = {target: [message] for target, message in slot.items()}
            else:
                inboxes[worker] = {
                    target: [message]
                    for target, message in zip(combined[0].tolist(), combined[1].tolist())
                }
        return inboxes

    # ------------------------------------------------------------------
    # accounting API
    # ------------------------------------------------------------------
    def messages_to_worker(self, worker: int) -> int:
        """Number of pending raw messages addressed to ``worker``."""
        return self._pending_messages.get(worker, 0)

    def bytes_to_worker(self, worker: int) -> int:
        """Pending raw byte volume addressed to ``worker``."""
        return self._pending_bytes.get(worker, 0)

    def buffered_message_count(self) -> int:
        """Messages actually held in memory right now.

        Equals the raw pending count without a combiner; with one it is
        bounded by the number of distinct destination vertices (per
        posted batch on the columnar path).
        """
        buffered = sum(int(segment[0].size) for segment in self._segments)
        if self._combiner is None:
            return buffered + sum(len(pending) for pending in self._outgoing.values())
        return buffered + sum(len(slot) for slot in self._combined.values())

    def deliver(self) -> Dict[int, Dict[int, List[Any]]]:
        """Group pending messages into per-worker, per-vertex inboxes.

        Returns a mapping ``worker -> vertex_id -> [messages]`` and
        clears the internal buffers.  When a combiner is configured each
        per-vertex list holds the single combined message, folded in
        post order — the same fold the old deliver-time combining
        performed, so results are unchanged.
        """
        if self._segments:
            inboxes = self._deliver_columnar()
        elif self._combiner is None:
            inboxes = {}
            for worker, pending in self._outgoing.items():
                per_vertex: Dict[int, List[Any]] = defaultdict(list)
                for target_id, message in pending:
                    per_vertex[target_id].append(message)
                inboxes[worker] = dict(per_vertex)
        else:
            inboxes = {}
            for worker, slot in self._combined.items():
                inboxes[worker] = {target_id: [message] for target_id, message in slot.items()}
        self._outgoing = defaultdict(list)
        self._combined = defaultdict(dict)
        self._segments = []
        self._mode = None
        self._pending_messages = defaultdict(int)
        self._pending_bytes = defaultdict(int)
        return inboxes

    def has_pending(self) -> bool:
        """True if any message is waiting for delivery."""
        return (
            any(self._outgoing.values())
            or any(self._combined.values())
            or any(int(segment[0].size) for segment in self._segments)
        )

    def reset_counters(self) -> None:
        self.raw_message_count = 0
        self.raw_byte_count = 0
        self.cross_message_count = 0
