"""Exporters: Prometheus text format, JSON-lines logs, trace files.

Three ways telemetry leaves the process:

* :func:`render_prometheus` — the registry as Prometheus text
  exposition format 0.0.4, served by ``GET /metrics`` on the service
  API and scrapeable with any Prometheus-compatible collector.
* :func:`configure_logging` / :class:`JsonLogFormatter` — stdlib
  ``logging`` dressed as structured JSON lines, one object per record,
  with ``trace_id``/``span_id`` of the active span attached so logs
  and traces correlate.
* :func:`write_trace` — a finished span tree as an indented JSON file
  (the ``--trace-out`` flag and the per-job ``trace.json`` artifact).
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO, Union

from .trace import Span, get_tracer


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    out = io.StringIO()
    for family in registry.families():
        out.write(f"# HELP {family.name} {family.help or family.name}\n")
        out.write(f"# TYPE {family.name} {family.kind}\n")
        for labels, child in family.series():
            if family.kind == "histogram":
                cumulative = 0
                for bound, count in zip(child.buckets, child.counts):
                    cumulative += count
                    block = _label_block(
                        family.labelnames, labels, f'le="{_format_value(bound)}"'
                    )
                    out.write(f"{family.name}_bucket{block} {cumulative}\n")
                cumulative += child.counts[-1]
                block = _label_block(family.labelnames, labels, 'le="+Inf"')
                out.write(f"{family.name}_bucket{block} {cumulative}\n")
                block = _label_block(family.labelnames, labels)
                out.write(f"{family.name}_sum{block} {_format_value(child.total)}\n")
                out.write(f"{family.name}_count{block} {child.count}\n")
            else:
                value = child.read() if family.kind == "gauge" else child.value
                block = _label_block(family.labelnames, labels)
                out.write(f"{family.name}{block} {_format_value(value)}\n")
    return out.getvalue()


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class JsonLogFormatter(logging.Formatter):
    """One JSON object per log record, trace-correlated.

    Fields: ``ts`` (epoch seconds), ``level``, ``logger``, ``message``,
    plus ``trace_id``/``span_id`` when a span is active in the emitting
    thread, ``exc`` when an exception is attached, and anything passed
    via ``extra={"context": {...}}``.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        active = get_tracer().current_span()
        if active is not None:
            entry["trace_id"] = active.trace_id
            entry["span_id"] = active.span_id
        context = getattr(record, "context", None)
        if isinstance(context, dict):
            entry.update(context)
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str)


def configure_logging(
    level: Union[int, str] = logging.INFO,
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Point the root logger at one stream handler, plain or JSON.

    Replaces handlers installed by previous calls (idempotent across
    CLI invocations in one process, e.g. under tests); returns the
    installed handler.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root = logging.getLogger()
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


# ----------------------------------------------------------------------
# trace files
# ----------------------------------------------------------------------
def write_trace(span: Union[Span, Dict[str, Any]], path: str) -> Dict[str, Any]:
    """Write a finished span tree as indented JSON; returns the payload."""
    tree = span.to_dict() if isinstance(span, Span) else span
    payload = {"generated_at": time.time(), "trace": tree}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
