"""Cross-process CPU profiling for assembly runs.

``cProfile`` answers the question the timeline can't: *which functions*
burned the CPU seconds.  The catch in this codebase is that the
interesting work happens in several processes at once — the master
coordinating the workflow plus N multiprocess Pregel workers — and a
profiler cannot straddle a ``fork``.  So profiles travel exactly the
way metric deltas already do: each worker profiles its own superstep
compute, serialises the raw ``pstats`` table (a plain picklable dict),
and ships it over the barrier counter channel; the master folds every
delta into one :class:`ProfileCollector`, keyed by stage.

The collector renders two artefacts:

* :meth:`ProfileCollector.hotspots` — a deterministic top-N table
  (self seconds, cumulative seconds, call counts) that the CLI injects
  into ``metrics_payload()`` under a ``"profile"`` key;
* :meth:`ProfileCollector.folded` — collapsed call stacks
  (``stage;caller;callee <microseconds>``), the input format of
  ``flamegraph.pl`` and speedscope, written as ``profile.folded``.

Zero-cost contract: :func:`get_profiler` returns a shared inert
:class:`NullProfileCollector` until ``--profile`` (or
:func:`use_profiler`) installs a real one; the workflow runner and the
runtime backends only ever pay an attribute lookup when profiling is
off.
"""

from __future__ import annotations

import cProfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Canonical collapsed-stack file name (next to ``trace.json``).
FOLDED_FILENAME = "profile.folded"

#: Stage label under which Pregel worker-process profiles are merged.
WORKER_STAGE = "pregel-workers"

#: One function's row in the raw pstats table:
#: ``(file, line, func) -> [calls, primitive_calls, self_seconds,
#: cumulative_seconds, {caller_key: (cc, nc, tt, ct)}]``.
ProfileState = Dict[Tuple[str, int, str], Any]


def stats_state(profiler: cProfile.Profile) -> ProfileState:
    """Extract a profiler's raw ``pstats`` table as a picklable dict.

    The shape is exactly what :class:`pstats.Stats` builds internally
    (``stats.stats``): plain tuples, ints, floats and dicts — safe to
    pickle across a process boundary and to merge additively.
    """
    profiler.create_stats()
    state: ProfileState = {}
    for key, (cc, nc, tt, ct, callers) in profiler.stats.items():  # type: ignore[attr-defined]
        state[key] = (cc, nc, tt, ct, dict(callers))
    return state


def _format_frame(key: Tuple[str, int, str]) -> str:
    """One stack frame as ``file.py:line:function`` (separator-safe)."""
    filename, line, func = key
    func = str(func).replace(";", ":")
    if filename in ("~", ""):
        return func
    name = Path(str(filename)).name.replace(";", ":")
    return f"{name}:{int(line)}:{func}"


class ProfileCollector:
    """Accumulates pstats tables from any number of processes/stages.

    Merging is additive per function row (call counts and seconds sum;
    caller edges sum per caller), so folding the same set of worker
    deltas in any arrival order produces the same tables — asserted by
    ``tests/telemetry/test_profiling.py``.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, ProfileState] = {}
        self._active = threading.local()

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    @contextmanager
    def profile_block(self, stage: str) -> Iterator[None]:
        """Profile the enclosed block and merge it under ``stage``.

        Re-entrant use (a stage nested inside a profiled stage, or an
        external tool already holding ``sys.setprofile``) degrades to
        not profiling the inner block instead of raising.
        """
        if getattr(self._active, "on", False):
            yield
            return
        profiler = cProfile.Profile()
        self._active.on = True
        try:
            profiler.enable()
        except (ValueError, RuntimeError):
            self._active.on = False
            yield
            return
        try:
            yield
        finally:
            profiler.disable()
            self._active.on = False
            self.merge_state(stats_state(profiler), stage=stage)

    def merge_state(self, state: Optional[ProfileState], stage: str = WORKER_STAGE) -> None:
        """Fold one raw pstats table in under ``stage`` (additive)."""
        if not state:
            return
        with self._lock:
            table = self._stages.setdefault(stage, {})
            for key, value in state.items():
                key = (str(key[0]), int(key[1]), str(key[2]))
                cc, nc, tt, ct, callers = value
                row = table.get(key)
                if row is None:
                    table[key] = [cc, nc, tt, ct, dict(callers)]
                    continue
                row[0] += cc
                row[1] += nc
                row[2] += tt
                row[3] += ct
                edges = row[4]
                for caller, edge in callers.items():
                    if caller in edges:
                        prior = edges[caller]
                        edges[caller] = tuple(a + b for a, b in zip(prior, edge))
                    else:
                        edges[caller] = tuple(edge)

    def dump_stages(self) -> Dict[str, ProfileState]:
        """A deep-enough copy of everything collected (for shipping)."""
        with self._lock:
            return {
                stage: {key: [row[0], row[1], row[2], row[3], dict(row[4])] for key, row in table.items()}
                for stage, table in self._stages.items()
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(table) for table in self._stages.values())

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def hotspots(self, top_n: int = 15) -> List[Dict[str, Any]]:
        """The top-N functions by self time, aggregated over all stages.

        Deterministic: ties broken by the frame name, values rounded to
        microsecond precision.
        """
        merged: Dict[Tuple[str, int, str], List[float]] = {}
        with self._lock:
            for table in self._stages.values():
                for key, row in table.items():
                    entry = merged.setdefault(key, [0, 0, 0.0, 0.0])
                    entry[0] += row[0]
                    entry[1] += row[1]
                    entry[2] += row[2]
                    entry[3] += row[3]
        ranked = sorted(
            merged.items(),
            key=lambda item: (-item[1][2], _format_frame(item[0])),
        )
        return [
            {
                "function": _format_frame(key),
                "calls": int(entry[0]),
                "self_seconds": round(entry[2], 6),
                "cumulative_seconds": round(entry[3], 6),
            }
            for key, entry in ranked[: max(0, top_n)]
        ]

    def payload(self, top_n: int = 15) -> Dict[str, Any]:
        """The ``"profile"`` block for ``metrics_payload()`` consumers."""
        spots = self.hotspots(top_n)
        return {
            "stages": sorted(self._stages),
            "functions_profiled": len(self),
            "self_seconds_total": round(
                sum(spot["self_seconds"] for spot in self.hotspots(top_n=len(self) or 1)), 6
            ),
            "hotspots": spots,
        }

    def folded(self) -> str:
        """Collapsed call stacks, flamegraph.pl / speedscope compatible.

        One line per stack, ``frame;frame;... <value>`` with values in
        integer microseconds of *self* time.  pstats keeps caller →
        callee edges rather than full stacks, so stacks are rendered
        two frames deep under their stage root — enough to see which
        callers feed each hotspot.  Lines are sorted for determinism.
        """
        lines: List[str] = []
        with self._lock:
            for stage in sorted(self._stages):
                root = stage.replace(";", ":")
                for key, row in self._stages[stage].items():
                    frame = _format_frame(key)
                    callers = row[4]
                    if not callers:
                        value = int(round(row[2] * 1e6))
                        if value > 0:
                            lines.append(f"{root};{frame} {value}")
                        continue
                    for caller, edge in callers.items():
                        # edge = (cc, nc, tt, ct) attributed to this caller
                        value = int(round(float(edge[2]) * 1e6))
                        if value > 0:
                            lines.append(f"{root};{_format_frame(caller)};{frame} {value}")
        lines.sort()
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: Union[str, Path]) -> Path:
        destination = Path(path)
        if destination.parent != Path(""):
            destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(self.folded(), encoding="utf-8")
        return destination


class NullProfileCollector:
    """Inert stand-in: profiling off, every operation a no-op."""

    enabled = False

    @contextmanager
    def profile_block(self, stage: str) -> Iterator[None]:
        yield

    def merge_state(self, state: Optional[ProfileState], stage: str = WORKER_STAGE) -> None:
        pass

    def dump_stages(self) -> Dict[str, ProfileState]:
        return {}

    def hotspots(self, top_n: int = 15) -> List[Dict[str, Any]]:
        return []

    def payload(self, top_n: int = 15) -> Dict[str, Any]:
        return {"stages": [], "functions_profiled": 0, "self_seconds_total": 0.0, "hotspots": []}

    def folded(self) -> str:
        return ""

    def write_folded(self, path: Union[str, Path]) -> Path:
        destination = Path(path)
        destination.write_text("", encoding="utf-8")
        return destination

    def __len__(self) -> int:
        return 0


_NULL_PROFILER = NullProfileCollector()
_PROFILER: Union[ProfileCollector, NullProfileCollector] = _NULL_PROFILER


def get_profiler() -> Union[ProfileCollector, NullProfileCollector]:
    """The process-wide active profile collector (null by default)."""
    return _PROFILER


def set_profiler(profiler: Optional[Union[ProfileCollector, NullProfileCollector]]):
    """Install ``profiler`` globally (None restores the null default).

    Returns the previously installed collector so callers can restore it.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler if profiler is not None else _NULL_PROFILER
    return previous


@contextmanager
def use_profiler(
    profiler: Union[ProfileCollector, NullProfileCollector]
) -> Iterator[Union[ProfileCollector, NullProfileCollector]]:
    """Scoped :func:`set_profiler`: restores the previous one on exit."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)
