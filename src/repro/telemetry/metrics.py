"""Process-wide metrics registry: counters, gauges, histograms.

Prometheus-shaped but stdlib-only.  A :class:`MetricsRegistry` holds
named metric *families*; a family with ``labelnames`` fans out into
labeled children via :meth:`~_MetricFamily.labels`, one time series per
label tuple.  Everything is guarded by one registry lock — the hot
paths touch a counter a few times per superstep, not per message, so
contention is negligible.

Three properties matter beyond the basics:

* **mergeable** — a registry serialises to plain state
  (:meth:`MetricsRegistry.dump_state`) and merges into another
  (:meth:`MetricsRegistry.merge_state`): counters and histograms add,
  gauges take the incoming value.  Worker processes keep a local
  registry and ship :meth:`~MetricsRegistry.drain_state` deltas to the
  master at each superstep barrier, so cross-process sums are exact.
* **callback gauges** — a gauge may be backed by a zero-argument
  callable sampled at scrape time (queue depth straight from SQLite).
* **zero-cost off switch** — :class:`NullRegistry` implements the same
  surface with no-ops and is the process default; instrumented code
  calls ``get_registry().counter(...)`` unconditionally.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Default histogram buckets (seconds): 1 ms … 60 s, Prometheus-style.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelValues = Tuple[str, ...]


class _Counter:
    __slots__ = ("value", "_lock")

    kind = "counter"

    def __init__(self, lock: Optional["threading.RLock"] = None) -> None:
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def dump(self) -> float:
        with self._lock:
            return self.value

    def merge(self, state: float) -> None:
        with self._lock:
            self.value += state

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _Gauge:
    __slots__ = ("value", "callback", "_lock")

    kind = "gauge"

    def __init__(
        self,
        callback: Optional[Callable[[], float]] = None,
        lock: Optional["threading.RLock"] = None,
    ) -> None:
        self.value = 0.0
        self.callback = callback
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value -= amount

    def read(self) -> float:
        if self.callback is not None:
            return float(self.callback())
        with self._lock:
            return self.value

    def dump(self) -> float:
        return self.read()

    def merge(self, state: float) -> None:
        with self._lock:
            self.value = state

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        lock: Optional["threading.RLock"] = None,
    ) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        # one slot per finite bucket plus the +Inf overflow slot
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.total += value
            self.count += 1

    def dump(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counts": list(self.counts),
                "total": self.total,
                "count": self.count,
            }

    def merge(self, state: Dict[str, Any]) -> None:
        counts = state["counts"]
        if len(counts) != len(self.counts):
            raise ValueError("histogram bucket layouts differ; cannot merge")
        with self._lock:
            for index, value in enumerate(counts):
                self.counts[index] += value
            self.total += state["total"]
            self.count += state["count"]

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.total = 0.0
            self.count = 0


_CHILD_TYPES = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class _MetricFamily:
    """One named metric plus its labeled children.

    A family declared without ``labelnames`` proxies the metric methods
    (``inc``/``set``/``observe``…) straight to its single unlabeled
    child, so ``registry.counter("x").inc()`` and
    ``registry.counter("x", labelnames=("job",)).labels("a").inc()``
    read the same at the call site.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        lock: "threading.RLock",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets))
        self._lock = lock
        self._children: Dict[LabelValues, Any] = {}
        if not labelnames and kind != "gauge":
            # eager default child so a never-touched counter still renders as 0
            self._children[()] = self._make_child()

    def _make_child(self, callback: Optional[Callable[[], float]] = None) -> Any:
        # Children share the registry lock (reentrant, so dump/reset
        # under drain_state's hold nests cleanly): an inc or observe on
        # any thread serializes against snapshot-and-clear, which is
        # what keeps cross-process delta sums exact.
        if self.kind == "histogram":
            return _Histogram(self.buckets, self._lock)
        if self.kind == "gauge":
            return _Gauge(callback, self._lock)
        return _Counter(self._lock)

    def labels(self, *values: Union[str, int, float]) -> Any:
        """The child time series for this label-value tuple."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default_child(self) -> Any:
        child = self._children.get(())
        if child is None:
            if self.labelnames:
                raise ValueError(f"{self.name} is labeled; call .labels() first")
            child = self._make_child()
            self._children[()] = child
        return child

    # -- unlabeled proxies ------------------------------------------------
    def inc(self, amount: Union[int, float] = 1) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._default_child().dec(amount)

    def set(self, value: Union[int, float]) -> None:
        self._default_child().set(value)

    def observe(self, value: Union[int, float]) -> None:
        self._default_child().observe(value)

    def read(self) -> Any:
        child = self._default_child()
        return child.read() if self.kind == "gauge" else child.dump()

    # -- state ------------------------------------------------------------
    def series(self) -> List[Tuple[LabelValues, Any]]:
        """Label tuple + child pairs, sorted for stable rendering."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A set of metric families addressed by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call declares the family, later calls return the same object (and
    reject kind/label mismatches, which would indicate an
    instrumentation bug).
    """

    enabled = True

    def __init__(self) -> None:
        # Reentrant: drain_state holds it while calling child dump and
        # reset, which take the same lock.
        self._lock = threading.RLock()
        self._families: Dict[str, _MetricFamily] = {}

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _MetricFamily:
        labels = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _MetricFamily(
                    name, help_text, kind, labels, self._lock, buckets
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(f"{name} already registered as a {family.kind}")
        if family.labelnames != labels:
            raise ValueError(
                f"{name} already registered with labels {family.labelnames}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _MetricFamily:
        return self._family(name, help_text, "counter", labelnames)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> _MetricFamily:
        family = self._family(name, help_text, "gauge", labelnames)
        if callback is not None:
            if family.labelnames:
                raise ValueError("callback gauges cannot be labeled")
            with self._lock:
                family._children[()] = family._make_child(callback)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _MetricFamily:
        return self._family(name, help_text, "histogram", labelnames, buckets)

    def families(self) -> List[_MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # cross-process state
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Everything needed to reconstruct the values elsewhere.

        Callback gauges are skipped — they are views over live local
        objects and make no sense in another process.
        """
        with self._lock:
            return self._dump_state_locked()

    def _dump_state_locked(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        for name, family in self._families.items():
            series = {}
            for key, child in family._children.items():
                if family.kind == "gauge" and child.callback is not None:
                    continue
                series["\x1f".join(key)] = child.dump()
            state[name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "buckets": list(family.buckets),
                "series": series,
            }
        return state

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a :meth:`dump_state` payload into this registry."""
        for name, family_state in state.items():
            family = self._family(
                name,
                family_state.get("help", ""),
                family_state["kind"],
                family_state.get("labelnames", ()),
                family_state.get("buckets", DEFAULT_BUCKETS),
            )
            for joined_key, child_state in family_state["series"].items():
                key = tuple(joined_key.split("\x1f")) if joined_key else ()
                if key and not family.labelnames:
                    raise ValueError(f"{name}: labeled state for unlabeled family")
                child = family.labels(*key) if key else family._default_child()
                child.merge(child_state)

    def drain_state(self) -> Dict[str, Any]:
        """:meth:`dump_state`, then reset — an incremental delta.

        Workers call this at every superstep barrier so the same count
        is never shipped twice.  Snapshot and reset happen under one
        lock acquisition: an increment from another thread (e.g. the
        heartbeat ticker) lands either in this delta or the next one,
        never in the gap between them.
        """
        with self._lock:
            state = self._dump_state_locked()
            for family in self._families.values():
                for child in family._children.values():
                    if family.kind == "gauge" and child.callback is not None:
                        continue
                    child.reset()
        return state


class NullRegistry:
    """The default registry: accepts everything, records nothing."""

    enabled = False

    def __init__(self) -> None:
        self._family = _NullFamily()

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()):
        return self._family

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ):
        return self._family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        return self._family

    def families(self) -> List[Any]:
        return []

    def dump_state(self) -> Dict[str, Any]:
        return {}

    def merge_state(self, state: Dict[str, Any]) -> None:
        pass

    def drain_state(self) -> Dict[str, Any]:
        return {}


class _NullFamily:
    """Shared inert family/child for :class:`NullRegistry`."""

    __slots__ = ()

    def labels(self, *values: Any) -> "_NullFamily":
        return self

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def read(self) -> float:
        return 0.0


_NULL_REGISTRY = NullRegistry()
_REGISTRY: Union[MetricsRegistry, NullRegistry] = _NULL_REGISTRY


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide active registry (the null registry by default)."""
    return _REGISTRY


def set_registry(registry: Optional[Union[MetricsRegistry, NullRegistry]]):
    """Install ``registry`` globally (None restores the null default).

    Returns the previously installed registry so callers can restore it.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else _NULL_REGISTRY
    return previous


@contextmanager
def use_registry(
    registry: Union[MetricsRegistry, NullRegistry]
) -> Iterator[Union[MetricsRegistry, NullRegistry]]:
    """Scoped :func:`set_registry`: restores the previous one on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
