"""Self-contained HTML ops reports rendered from telemetry artefacts.

Turns the three per-run artefacts — ``trace.json`` (span tree),
``timeline.jsonl`` (samples + superstep/stage events) and
``metrics.json`` (the assembly metrics payload, optionally with a
``"profile"`` hotspot block) — into one human-readable page: a span
waterfall, RSS and message-rate timelines, the hotspot table, and the
memory/contiguity summaries.  Everything is inline (hand-rolled SVG +
a ``<style>`` block, no external assets, no JavaScript, no third-party
libraries), so the file can be archived as a CI artifact, attached to
an incident, or served straight from the job service
(``GET /jobs/<id>/report``); :func:`render_dashboard` builds the
service's ``GET /dashboard`` overview the same way.

The markup is deliberately XML-well-formed (every tag closed, every
attribute quoted) so tests can assert structural integrity with
``xml.etree.ElementTree`` instead of a browser.
"""

from __future__ import annotations

import json
from html import escape
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .sampler import TIMELINE_FILENAME, read_timeline

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 62em; color: #1d2330; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; font-size: 0.85em; }
th, td { border: 1px solid #d8dce6; padding: 0.3em 0.6em; text-align: left; }
th { background: #f2f4f8; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8em; margin: 1em 0; }
.card { border: 1px solid #d8dce6; border-radius: 6px; padding: 0.6em 1em;
        min-width: 9em; background: #fafbfd; }
.card b { display: block; font-size: 1.25em; }
.card span { color: #5b6472; font-size: 0.8em; }
.muted { color: #5b6472; font-size: 0.85em; }
svg { background: #fafbfd; border: 1px solid #d8dce6; border-radius: 6px; }
a { color: #2458c5; }
.state-succeeded { color: #1a7f37; } .state-failed, .state-poisoned { color: #c5242b; }
.state-running { color: #2458c5; } .state-queued { color: #8a6d00; }
"""

_DEPTH_COLORS = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c")


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value >= 100:
        return f"{value:,.0f} s"
    if value >= 1:
        return f"{value:.2f} s"
    return f"{value * 1000:.1f} ms"


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "—"
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024.0
    return f"{value:,.1f} TiB"  # pragma: no cover - unreachable


def _fmt_count(value: Optional[float]) -> str:
    return "—" if value is None else f"{int(value):,}"


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
def _svg_open(width: int, height: int) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    ]


def _flatten_spans(
    node: Dict[str, Any], depth: int = 0, out: Optional[List[Tuple[int, Dict[str, Any]]]] = None
) -> List[Tuple[int, Dict[str, Any]]]:
    if out is None:
        out = []
    out.append((depth, node))
    for child in node.get("children", ()) or ():
        if isinstance(child, dict):
            _flatten_spans(child, depth + 1, out)
    return out


def span_waterfall_svg(trace_tree: Dict[str, Any], max_rows: int = 48, width: int = 920) -> str:
    """The span tree as a left-to-right waterfall (one bar per span)."""
    rows = _flatten_spans(trace_tree)
    truncated = len(rows) > max_rows
    rows = rows[:max_rows]
    t0 = float(trace_tree.get("start_time") or 0.0)
    total = max(
        (float(r.get("start_time") or t0) - t0) + float(r.get("duration_seconds") or 0.0)
        for _, r in rows
    )
    total = total or 1e-9
    row_h, label_w, pad = 20, 300, 4
    chart_w = width - label_w - 2 * pad
    height = row_h * len(rows) + 2 * pad + (14 if truncated else 0)
    parts = _svg_open(width, height)
    for index, (depth, node) in enumerate(rows):
        y = pad + index * row_h
        start = (float(node.get("start_time") or t0) - t0) / total
        frac = float(node.get("duration_seconds") or 0.0) / total
        x = label_w + pad + start * chart_w
        bar_w = max(frac * chart_w, 1.5)
        color = "#d65f5f" if node.get("status") == "error" else _DEPTH_COLORS[depth % len(_DEPTH_COLORS)]
        name = escape(str(node.get("name", "?")))
        label = (" " * (2 * depth)) + name
        parts.append(
            f'<text x="{pad}" y="{y + 14}" font-size="11">{label[:52]}</text>'
        )
        parts.append(
            f'<rect x="{x:.1f}" y="{y + 3}" width="{bar_w:.1f}" height="{row_h - 7}" '
            f'fill="{color}" rx="2"><title>{name}: '
            f'{escape(_fmt_seconds(float(node.get("duration_seconds") or 0.0)))}</title></rect>'
        )
    if truncated:
        parts.append(
            f'<text x="{pad}" y="{height - 4}" font-size="10" fill="#5b6472">'
            f"(truncated to the first {max_rows} spans)</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def series_svg(
    points: Sequence[Tuple[float, float]],
    unit: str = "",
    width: int = 920,
    height: int = 140,
    color: str = "#4878d0",
    fmt=_fmt_count,
) -> str:
    """A timestamped numeric series as a polyline with min/max rails."""
    if not points:
        return ""
    pts = sorted((float(t), float(v)) for t, v in points)
    t0, t1 = pts[0][0], pts[-1][0]
    span_t = (t1 - t0) or 1e-9
    values = [v for _, v in pts]
    vmax = max(values) or 1.0
    pad, label_h = 6, 16
    chart_h = height - 2 * pad - label_h
    coords = []
    for t, v in pts:
        x = pad + (t - t0) / span_t * (width - 2 * pad)
        y = pad + (1.0 - v / vmax) * chart_h
        coords.append(f"{x:.1f},{y:.1f}")
    parts = _svg_open(width, height)
    parts.append(
        f'<polyline points="{" ".join(coords)}" fill="none" '
        f'stroke="{color}" stroke-width="1.8"/>'
    )
    if len(pts) == 1:
        x, y = coords[0].split(",")
        parts.append(f'<circle cx="{x}" cy="{y}" r="3" fill="{color}"/>')
    parts.append(
        f'<text x="{pad}" y="{pad + 10}" font-size="10" fill="#5b6472">'
        f"max {escape(fmt(vmax))}{escape(unit)}</text>"
    )
    parts.append(
        f'<text x="{pad}" y="{height - 4}" font-size="10" fill="#5b6472">'
        f"{escape(_fmt_seconds(t1 - t0))} window, {len(pts)} points</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# report sections
# ----------------------------------------------------------------------
def _card(value: str, label: str) -> str:
    return f'<div class="card"><b>{escape(value)}</b><span>{escape(label)}</span></div>'


def _timeline_sections(timeline: Sequence[Dict[str, Any]]) -> List[str]:
    sections: List[str] = []
    samples = [e for e in timeline if e.get("kind") == "sample"]
    supersteps = [e for e in timeline if e.get("kind") == "superstep"]
    if samples:
        rss = [(e["ts"], e.get("rss_bytes", 0)) for e in samples if "ts" in e]
        sections.append("<h2>Resident set size</h2>")
        sections.append(series_svg(rss, fmt=_fmt_bytes, color="#956cb4"))
        peak = max((e.get("peak_rss_bytes", 0) or 0) for e in samples)
        sections.append(
            f'<p class="muted">peak RSS {escape(_fmt_bytes(peak))} over '
            f"{len(samples)} samples.</p>"
        )
    if supersteps:
        msgs = [(e["ts"], e.get("messages_sent", 0)) for e in supersteps if "ts" in e]
        cross = [(e["ts"], e.get("cross_worker_messages", 0)) for e in supersteps if "ts" in e]
        sections.append("<h2>Messages per superstep</h2>")
        sections.append(series_svg(msgs, color="#4878d0"))
        sections.append(
            '<p class="muted">cross-worker share below (traffic crossing '
            "a process boundary).</p>"
        )
        sections.append(series_svg(cross, color="#ee854a", height=90))
    return sections


def _hotspot_section(profile: Dict[str, Any]) -> List[str]:
    hotspots = profile.get("hotspots") or []
    if not hotspots:
        return []
    rows = [
        "<h2>CPU hotspots</h2>",
        '<table><tr><th>function</th><th class="num">calls</th>'
        '<th class="num">self</th><th class="num">cumulative</th></tr>',
    ]
    for spot in hotspots:
        rows.append(
            f"<tr><td><code>{escape(str(spot.get('function', '?')))}</code></td>"
            f'<td class="num">{_fmt_count(spot.get("calls"))}</td>'
            f'<td class="num">{escape(_fmt_seconds(spot.get("self_seconds")))}</td>'
            f'<td class="num">{escape(_fmt_seconds(spot.get("cumulative_seconds")))}</td></tr>'
        )
    rows.append("</table>")
    stages = profile.get("stages") or []
    if stages:
        rows.append(
            f'<p class="muted">profiled stages: {escape(", ".join(map(str, stages)))}.</p>'
        )
    return rows


def _memory_section(memory: Dict[str, Any]) -> List[str]:
    rows = [
        "<h2>Memory and spill</h2>",
        '<table><tr><th>metric</th><th class="num">value</th></tr>',
    ]
    for key in sorted(memory):
        value = memory[key]
        if key.endswith("_bytes") or key == "ledger_peak_bytes":
            shown = _fmt_bytes(value)
        elif isinstance(value, (int, float)) and value is not None:
            shown = f"{value:,}" if float(value) == int(value) else f"{value}"
        else:
            shown = str(value)
        rows.append(
            f"<tr><td>{escape(key)}</td><td class=\"num\">{escape(shown)}</td></tr>"
        )
    rows.append("</table>")
    return rows


def render_report(
    title: str,
    trace: Optional[Dict[str, Any]] = None,
    timeline: Sequence[Dict[str, Any]] = (),
    metrics: Optional[Dict[str, Any]] = None,
) -> str:
    """Render one run's ops report as a self-contained HTML page.

    Any input may be absent — the report shows the sections it has data
    for (a queued job has no trace yet, a run without ``--profile`` has
    no hotspot table) and says so for the rest.
    """
    metrics = metrics or {}
    trace_tree = (trace or {}).get("trace") if trace else None
    body: List[str] = [f"<h1>{escape(title)}</h1>"]

    wall = metrics.get("wall_seconds")
    if wall is None and trace_tree:
        wall = trace_tree.get("duration_seconds")
    samples = [e for e in timeline if e.get("kind") == "sample"]
    peak = max((e.get("peak_rss_bytes", 0) or 0) for e in samples) if samples else None
    if peak is None:
        peak = (metrics.get("memory") or {}).get("peak_rss_bytes")
    supersteps = sum(1 for e in timeline if e.get("kind") == "superstep")
    messages = sum(
        int(e.get("messages_sent", 0) or 0)
        for e in timeline
        if e.get("kind") == "superstep"
    )
    cards = [
        _card(_fmt_seconds(wall), "wall clock"),
        _card(_fmt_bytes(peak) if peak else "—", "peak RSS"),
        _card(_fmt_count(supersteps), "supersteps"),
        _card(_fmt_count(messages), "pregel messages"),
    ]
    contigs = metrics.get("contigs") or {}
    if contigs.get("n50") is not None:
        cards.append(_card(_fmt_count(contigs.get("n50")), "contig N50"))
    body.append('<div class="cards">' + "".join(cards) + "</div>")

    if trace_tree:
        body.append("<h2>Span waterfall</h2>")
        body.append(span_waterfall_svg(trace_tree))
    else:
        body.append('<p class="muted">No trace captured for this run.</p>')

    if timeline:
        body.extend(_timeline_sections(timeline))
    else:
        body.append('<p class="muted">No timeline captured for this run.</p>')

    profile = metrics.get("profile")
    if isinstance(profile, dict):
        body.extend(_hotspot_section(profile))
    memory = metrics.get("memory")
    if isinstance(memory, dict) and memory:
        body.extend(_memory_section(memory))

    return _page(title, body)


def _page(title: str, body: List[str]) -> str:
    return (
        '<html lang="en"><head><meta charset="utf-8"/>'
        f"<title>{escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>"
    )


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
def render_dashboard(
    health: Dict[str, Any],
    jobs: Sequence[Dict[str, Any]],
    title: str = "repro-assemble dashboard",
) -> str:
    """The service overview page: queue/worker health + recent jobs."""
    body: List[str] = [f"<h1>{escape(title)}</h1>"]
    counts = health.get("counts") or health.get("jobs") or {}
    cards = [
        _card(str(health.get("status", "?")), "service"),
        _card(str(health.get("workers", "?")), f"workers ({health.get('worker_plane', '?')})"),
        _card(_fmt_count(counts.get("queued", 0)), "queued"),
        _card(_fmt_count(counts.get("running", 0)), "running"),
        _card(_fmt_count(counts.get("succeeded", 0)), "succeeded"),
        _card(_fmt_count(counts.get("failed", 0)), "failed"),
    ]
    body.append('<div class="cards">' + "".join(cards) + "</div>")
    body.append("<h2>Recent jobs</h2>")
    if not jobs:
        body.append('<p class="muted">No jobs submitted yet.</p>')
    else:
        body.append(
            "<table><tr><th>job</th><th>state</th><th>created</th>"
            "<th>finished</th><th>links</th></tr>"
        )
        for job in jobs:
            job_id = str(job.get("id", "?"))
            state = str(job.get("state", "?"))
            links = (
                f'<a href="/jobs/{escape(job_id)}">status</a> '
                f'<a href="/jobs/{escape(job_id)}/report">report</a>'
            )
            body.append(
                f"<tr><td><code>{escape(job_id[:12])}</code></td>"
                f'<td class="state-{escape(state)}">{escape(state)}</td>'
                f"<td>{escape(str(job.get('created_at', '—')))}</td>"
                f"<td>{escape(str(job.get('finished_at') or '—'))}</td>"
                f"<td>{links}</td></tr>"
            )
        body.append("</table>")
    body.append(
        '<p class="muted">Live series on <a href="/metrics">/metrics</a>; '
        "per-job traces and timelines under <code>/jobs/&lt;id&gt;/trace</code> "
        "and <code>/jobs/&lt;id&gt;/timeline</code>.</p>"
    )
    return _page(title, body)


# ----------------------------------------------------------------------
# loading per-run artefacts
# ----------------------------------------------------------------------
def load_run_artifacts(directory: Union[str, Path]) -> Dict[str, Any]:
    """Collect whatever report inputs exist in a run/job directory.

    Returns ``{"trace": ..., "timeline": [...], "metrics": ...}`` with
    missing or unreadable artefacts mapped to their empty value — the
    report renders what it can.
    """
    directory = Path(directory)
    out: Dict[str, Any] = {"trace": None, "timeline": [], "metrics": None}
    trace_path = directory / "trace.json"
    if trace_path.exists():
        try:
            out["trace"] = json.loads(trace_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            pass
    timeline_path = directory / TIMELINE_FILENAME
    if timeline_path.exists():
        try:
            out["timeline"] = read_timeline(timeline_path)
        except OSError:
            pass
    metrics_path = directory / "metrics.json"
    if metrics_path.exists():
        try:
            out["metrics"] = json.loads(metrics_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            pass
    return out
