"""Resource sampling and structured run timelines.

The third leg of the telemetry plane (spans answer *where in the call
tree*, metrics answer *how much in total*): a **timeline** answers
*when* — an append-only sequence of timestamped events that can be laid
against wall-clock time.  Two producers feed it:

* boundary events — both runtime backends record one ``superstep``
  event per BSP superstep (index, message/cross-worker counts, active
  vertices, spill/ledger bytes) and the workflow runner records
  ``stage-start`` / ``stage-end`` pairs;
* :class:`ResourceSampler` — a daemon thread recording periodic
  ``sample`` events (resident set size, CPU seconds, thread count) at a
  fixed low frequency.

Like the metrics registry, the timeline follows the zero-cost-when-
disabled contract: :func:`get_timeline` returns a shared inert
:class:`NullTimeline` until something installs a real
:class:`TimelineRecorder` (``--timeline-out``, the job service, or the
``use_timeline`` context manager), so an uninstrumented run pays one
attribute lookup per would-be event.

Cross-process transport mirrors metric deltas: multiprocess workers
record into a local recorder and :meth:`TimelineRecorder.drain_events`
ships the per-superstep delta over the barrier counter channel (both
message planes), where the master folds it back in with
:meth:`TimelineRecorder.merge_events` — one coherent timeline per run
regardless of backend.  :func:`write_timeline` persists it as JSONL
(``timeline.jsonl``), one event object per line, ordered by timestamp.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: Canonical per-run timeline file name (written next to ``trace.json``).
TIMELINE_FILENAME = "timeline.jsonl"


# ----------------------------------------------------------------------
# process memory helpers
# ----------------------------------------------------------------------
def peak_rss_bytes() -> int:
    """This process's peak resident set size in **bytes** (0 if unknown).

    ``getrusage(...).ru_maxrss`` is kibibytes on Linux but bytes on
    macOS; normalising here keeps ``--metrics-json`` comparable across
    platforms.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS
        return int(raw)
    return int(raw) * 1024


def current_rss_bytes() -> int:
    """This process's *current* resident set size in bytes.

    Reads ``/proc/self/statm`` (second field, in pages) where procfs
    exists; falls back to the peak from ``getrusage`` elsewhere, so the
    sampler still produces a monotone-envelope series off Linux.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGESIZE") or 4096)
    except (OSError, IndexError, ValueError):
        return peak_rss_bytes()


def process_cpu_seconds() -> float:
    """CPU seconds (user + system) consumed by this process."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return time.process_time()
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return float(usage.ru_utime + usage.ru_stime)


# ----------------------------------------------------------------------
# the timeline recorder
# ----------------------------------------------------------------------
class TimelineRecorder:
    """Thread-safe append-only buffer of timestamped event dicts.

    Every event carries ``ts`` (wall-clock epoch seconds) and ``kind``;
    everything else is free-form.  The drain/merge pair mirrors
    :meth:`~repro.telemetry.metrics.MetricsRegistry.drain_state` /
    ``merge_state`` so worker-process deltas travel the same barrier
    channel metric deltas already use.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (timestamped now unless ``ts`` is given)."""
        event = {"ts": fields.pop("ts", None), "kind": kind}
        if event["ts"] is None:
            event["ts"] = time.time()
        event.update(fields)
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the buffered events, in recorded order."""
        with self._lock:
            return list(self._events)

    def drain_events(self) -> List[Dict[str, Any]]:
        """Atomically snapshot **and clear** the buffer (worker-side)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def merge_events(self, events: Optional[Sequence[Dict[str, Any]]]) -> None:
        """Fold another recorder's drained events in (master-side)."""
        if not events:
            return
        with self._lock:
            self._events.extend(dict(event) for event in events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullTimeline:
    """Inert stand-in: recording costs one no-op call, stores nothing."""

    enabled = False

    def record(self, kind: str, **fields: Any) -> None:
        pass

    def events(self) -> List[Dict[str, Any]]:
        return []

    def drain_events(self) -> List[Dict[str, Any]]:
        return []

    def merge_events(self, events: Optional[Sequence[Dict[str, Any]]]) -> None:
        pass

    def __len__(self) -> int:
        return 0


_NULL_TIMELINE = NullTimeline()
# The active-timeline slot is *thread-local*, unlike the registry and
# tracer globals: the service's thread worker plane runs concurrent
# jobs on sibling threads, each installing its own per-job timeline —
# a process-wide slot would interleave their events.  Every reader
# (SuperstepInstruments, the workflow runner, the multiprocess barrier
# loop) runs on the thread that installed the timeline, so thread-local
# resolution is exact; the sampler thread holds a direct reference and
# never looks the slot up.
_TIMELINE_SLOT = threading.local()


def get_timeline() -> Union[TimelineRecorder, NullTimeline]:
    """The calling thread's active timeline (the null timeline by default)."""
    return getattr(_TIMELINE_SLOT, "timeline", _NULL_TIMELINE)


def set_timeline(timeline: Optional[Union[TimelineRecorder, NullTimeline]]):
    """Install ``timeline`` for this thread (None restores the null default).

    Returns the previously installed timeline so callers can restore it.
    """
    previous = get_timeline()
    _TIMELINE_SLOT.timeline = timeline if timeline is not None else _NULL_TIMELINE
    return previous


@contextmanager
def use_timeline(
    timeline: Union[TimelineRecorder, NullTimeline]
) -> Iterator[Union[TimelineRecorder, NullTimeline]]:
    """Scoped :func:`set_timeline`: restores the previous one on exit."""
    previous = set_timeline(timeline)
    try:
        yield timeline
    finally:
        set_timeline(previous)


# ----------------------------------------------------------------------
# the background resource sampler
# ----------------------------------------------------------------------
class ResourceSampler:
    """Daemon thread appending periodic ``sample`` events to a timeline.

    Each sample records ``rss_bytes`` (current resident set),
    ``peak_rss_bytes``, ``cpu_seconds`` (user+system) and ``threads``.
    The default 250 ms interval keeps the series dense enough to plot
    while staying far inside the telemetry plane's <3% overhead budget;
    one final sample is always taken at :meth:`stop` so even sub-interval
    runs get a data point.
    """

    def __init__(
        self,
        timeline: Optional[Union[TimelineRecorder, NullTimeline]] = None,
        interval: float = 0.25,
        source: str = "main",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._timeline = timeline
        self.interval = interval
        self.source = source
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def timeline(self) -> Union[TimelineRecorder, NullTimeline]:
        return self._timeline if self._timeline is not None else get_timeline()

    def sample_once(self) -> None:
        """Record one sample event immediately (usable without start())."""
        self.timeline.record(
            "sample",
            source=self.source,
            pid=os.getpid(),
            rss_bytes=current_rss_bytes(),
            peak_rss_bytes=peak_rss_bytes(),
            cpu_seconds=round(process_cpu_seconds(), 6),
            threads=threading.active_count(),
        )

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-sampler-{self.source}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        self.sample_once()
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def write_timeline(
    events_or_timeline: Union[
        TimelineRecorder, NullTimeline, Sequence[Dict[str, Any]]
    ],
    path: Union[str, Path],
) -> Path:
    """Write a timeline as JSONL, one event per line, ordered by ``ts``.

    Accepts a recorder or a plain event sequence.  Events are sorted by
    timestamp (stable, so same-timestamp events keep recorded order) —
    worker deltas merged at barriers land in wall-clock position.
    """
    if isinstance(events_or_timeline, (TimelineRecorder, NullTimeline)):
        events = events_or_timeline.events()
    else:
        events = list(events_or_timeline)
    events.sort(key=lambda event: float(event.get("ts", 0.0)))
    destination = Path(path)
    if destination.parent != Path(""):
        destination.parent.mkdir(parents=True, exist_ok=True)
    with open(destination, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return destination


def read_timeline(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL timeline back into a list of event dicts.

    Blank lines are skipped; a torn final line (crash mid-write) is
    dropped rather than failing the whole read.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events
