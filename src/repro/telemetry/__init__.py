"""Telemetry plane: structured tracing, metrics, and exporters.

The repo's instrument panel (ISSUE 6).  Stdlib-only, and **off by
default**: the module-level :func:`get_tracer` / :func:`get_registry`
hand back no-op implementations until something installs real ones —
the service does on start-up, the CLI does when asked (``--log-json``,
``--trace-out``), tests do with the ``use_*`` context managers.

Layout:

* :mod:`repro.telemetry.trace` — hierarchical spans (job → workflow →
  stage → superstep → worker) with cross-process propagation;
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms,
  thread-safe and mergeable across processes;
* :mod:`repro.telemetry.export` — Prometheus text format, JSON-lines
  logging with trace correlation, trace-file writing;
* :mod:`repro.telemetry.sampler` — resource sampling and structured
  run timelines (``timeline.jsonl``), mergeable across processes;
* :mod:`repro.telemetry.profiling` — cProfile collection merged across
  worker processes, hotspot tables and collapsed-stack output;
* :mod:`repro.telemetry.report` — self-contained HTML ops reports and
  the service dashboard (inline SVG, zero dependencies).
"""

from .export import (
    JsonLogFormatter,
    configure_logging,
    render_prometheus,
    write_trace,
)
from .metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .profiling import (
    NullProfileCollector,
    ProfileCollector,
    get_profiler,
    set_profiler,
    use_profiler,
)
from .report import load_run_artifacts, render_dashboard, render_report
from .sampler import (
    NullTimeline,
    ResourceSampler,
    TimelineRecorder,
    get_timeline,
    peak_rss_bytes,
    read_timeline,
    set_timeline,
    use_timeline,
    write_timeline,
)
from .trace import (
    NoopTracer,
    RemoteSpan,
    Span,
    TraceContext,
    Tracer,
    current_span,
    get_tracer,
    remote_context,
    set_tracer,
    span,
    start_remote_span,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NoopTracer",
    "NullProfileCollector",
    "NullRegistry",
    "NullTimeline",
    "ProfileCollector",
    "RemoteSpan",
    "ResourceSampler",
    "Span",
    "TimelineRecorder",
    "TraceContext",
    "Tracer",
    "configure_logging",
    "current_span",
    "get_profiler",
    "get_registry",
    "get_timeline",
    "get_tracer",
    "load_run_artifacts",
    "peak_rss_bytes",
    "read_timeline",
    "remote_context",
    "render_dashboard",
    "render_prometheus",
    "render_report",
    "set_profiler",
    "set_registry",
    "set_timeline",
    "set_tracer",
    "span",
    "start_remote_span",
    "use_profiler",
    "use_registry",
    "use_timeline",
    "use_tracer",
    "write_timeline",
    "write_trace",
]
