"""Telemetry plane: structured tracing, metrics, and exporters.

The repo's instrument panel (ISSUE 6).  Stdlib-only, and **off by
default**: the module-level :func:`get_tracer` / :func:`get_registry`
hand back no-op implementations until something installs real ones —
the service does on start-up, the CLI does when asked (``--log-json``,
``--trace-out``), tests do with the ``use_*`` context managers.

Layout:

* :mod:`repro.telemetry.trace` — hierarchical spans (job → workflow →
  stage → superstep → worker) with cross-process propagation;
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms,
  thread-safe and mergeable across processes;
* :mod:`repro.telemetry.export` — Prometheus text format, JSON-lines
  logging with trace correlation, trace-file writing.
"""

from .export import (
    JsonLogFormatter,
    configure_logging,
    render_prometheus,
    write_trace,
)
from .metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .trace import (
    NoopTracer,
    RemoteSpan,
    Span,
    TraceContext,
    Tracer,
    current_span,
    get_tracer,
    remote_context,
    set_tracer,
    span,
    start_remote_span,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NoopTracer",
    "NullRegistry",
    "RemoteSpan",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_logging",
    "current_span",
    "get_registry",
    "get_tracer",
    "remote_context",
    "render_prometheus",
    "set_registry",
    "set_tracer",
    "span",
    "start_remote_span",
    "use_registry",
    "use_tracer",
    "write_trace",
]
