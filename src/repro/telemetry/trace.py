"""Hierarchical spans: the tracing half of the telemetry plane.

A :class:`Span` is one timed node in a tree — a service job, a workflow
run, a stage, a superstep, or one worker's share of a superstep.  Spans
record wall-clock start time, wall and CPU duration, free-form
attributes, and their children; a finished tree serialises to plain
JSON (:meth:`Span.to_dict`), which is what ``GET /jobs/<id>/trace`` and
``repro-assemble --trace-out`` serve.

The active span is tracked per thread/context through a
:class:`contextvars.ContextVar`, so concurrently running service jobs
(one per worker thread) each grow their own independent tree without
any locking on the hot path.

Two tracers exist:

* :class:`Tracer` — records real spans;
* :class:`NoopTracer` — the **default**: :func:`span` hands back a
  shared do-nothing context manager, so an uninstrumented run pays one
  attribute lookup and one method call per would-be span and allocates
  nothing (the zero-cost-when-disabled contract asserted by
  ``benchmarks/bench_telemetry_overhead.py``).

Cross-process propagation: a span cannot straddle a ``fork``, so the
multiprocess backend ships ``(trace_id, parent_span_id)`` — obtained
from :func:`remote_context` — to its worker processes inside the
existing superstep command, the workers time their compute with
:func:`start_remote_span` (which builds a plain span *dict*, no tracer
needed), and the master merges the returned dicts into the superstep
span at the barrier via :meth:`Span.add_child`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: The span currently being recorded in this thread/context (if any).
_ACTIVE_SPAN: "ContextVar[Optional[Span]]" = ContextVar("repro-active-span", default=None)


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One node of a trace tree.

    Wall duration comes from ``time.perf_counter`` (monotonic,
    sub-microsecond), CPU time from ``time.process_time``; the absolute
    ``start_time`` is plain epoch wall clock so traces can be lined up
    with logs.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "duration_seconds",
        "cpu_seconds",
        "status",
        "attributes",
        "children",
        "_perf_start",
        "_cpu_start",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id or _new_id(16)
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self.start_time = time.time()
        self.duration_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List[Union["Span", Dict[str, Any]]] = []
        self._perf_start = time.perf_counter()
        self._cpu_start = time.process_time()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def add_child(self, child: Union["Span", Dict[str, Any]]) -> None:
        """Adopt a child — a :class:`Span` or an already-serialised dict.

        Dict children are how remote spans (recorded in a worker
        process, shipped over a queue) merge into the local tree.
        """
        self.children.append(child)

    def finish(self, status: Optional[str] = None) -> "Span":
        """Stamp the durations; idempotent (the first finish wins)."""
        if self.duration_seconds is None:
            self.duration_seconds = time.perf_counter() - self._perf_start
            self.cpu_seconds = time.process_time() - self._cpu_start
        if status is not None:
            self.status = status
        return self

    @property
    def finished(self) -> bool:
        return self.duration_seconds is not None

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The span and its subtree as plain JSON-ready data."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration_seconds": self.duration_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"children={len(self.children)}, status={self.status})"
        )


class Tracer:
    """Records spans into per-context trees.

    ``tracer.span(...)`` is a context manager yielding the new
    :class:`Span`; nesting follows the runtime call structure through a
    context variable.  An exception inside a span marks it
    ``status="error"`` (with the exception repr as an attribute) and
    propagates.
    """

    enabled = True

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        parent = _ACTIVE_SPAN.get()
        entry = Span(
            name,
            trace_id=parent.trace_id if parent is not None else None,
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes or None,
        )
        if parent is not None:
            parent.add_child(entry)
        token = _ACTIVE_SPAN.set(entry)
        try:
            yield entry
        except BaseException as exc:
            entry.set(error=repr(exc))
            entry.finish(status="error")
            raise
        finally:
            _ACTIVE_SPAN.reset(token)
            entry.finish()

    def current_span(self) -> Optional[Span]:
        return _ACTIVE_SPAN.get()


class _NoopSpan:
    """Shared inert stand-in yielded by the disabled tracer."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    attributes: Dict[str, Any] = {}
    children: List[Any] = []
    status = "ok"
    duration_seconds = None
    cpu_seconds = None
    finished = False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def add_child(self, child: Any) -> None:
        pass

    def finish(self, status: Optional[str] = None) -> "_NoopSpan":
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The default tracer: every span is the shared no-op instance."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def current_span(self) -> None:
        return None


_NOOP_TRACER = NoopTracer()
_TRACER: Union[Tracer, NoopTracer] = _NOOP_TRACER


def get_tracer() -> Union[Tracer, NoopTracer]:
    """The process-wide active tracer (the no-op tracer by default)."""
    return _TRACER


def set_tracer(tracer: Optional[Union[Tracer, NoopTracer]]):
    """Install ``tracer`` globally (None restores the no-op default).

    Returns the previously installed tracer so callers can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else _NOOP_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Union[Tracer, NoopTracer]) -> Iterator[Union[Tracer, NoopTracer]]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attributes: Any):
    """``get_tracer().span(...)`` — the one-liner used by the hot paths."""
    return _TRACER.span(name, **attributes)


def current_span() -> Optional[Span]:
    return _TRACER.current_span()


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
#: What crosses a process boundary: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, str]


def remote_context() -> Optional[TraceContext]:
    """The current span's identity, ready to ship to a worker process.

    None when tracing is disabled or no span is active — workers treat
    a None context as "telemetry off" and skip all recording.
    """
    active = _TRACER.current_span()
    if active is None:
        return None
    return (active.trace_id, active.span_id)


class RemoteSpan:
    """A span recorded *without* a tracer, for worker-process code.

    Worker processes own no span tree: they time one unit of work
    against a shipped :data:`TraceContext` and return a plain dict that
    the master adopts via :meth:`Span.add_child`.
    """

    __slots__ = ("_span",)

    def __init__(self, name: str, context: TraceContext, **attributes: Any) -> None:
        trace_id, parent_id = context
        self._span = Span(
            name, trace_id=trace_id, parent_id=parent_id, attributes=attributes or None
        )

    def finish(self, **attributes: Any) -> Dict[str, Any]:
        """Stop the clock and serialise; returns the shippable dict."""
        if attributes:
            self._span.set(**attributes)
        return self._span.finish().to_dict()


def start_remote_span(
    name: str, context: TraceContext, **attributes: Any
) -> RemoteSpan:
    """Begin timing a remote unit of work under ``context``."""
    return RemoteSpan(name, context, **attributes)
