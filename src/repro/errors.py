"""Exception hierarchy for the PPA-assembler reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-classes
are grouped per subsystem (Pregel engine, DNA handling, assembly
pipeline, quality assessment) to make failures self-describing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class PregelError(ReproError):
    """Base class for errors raised by the Pregel engine substrate."""


class VertexNotFoundError(PregelError):
    """A message or request targeted a vertex ID that does not exist."""

    def __init__(self, vertex_id: int) -> None:
        super().__init__(f"vertex {vertex_id!r} does not exist in the graph")
        self.vertex_id = vertex_id

    def __reduce__(self):
        # Custom-constructor exceptions need an explicit reduce to
        # survive the pickle round-trip between backend worker
        # processes and the master.
        return (VertexNotFoundError, (self.vertex_id,))


class InvalidJobError(PregelError):
    """A job definition is inconsistent (e.g. no input, bad chaining)."""


class SuperstepLimitExceededError(PregelError):
    """A Pregel job exceeded its configured maximum number of supersteps.

    PPAs must terminate in O(log n) supersteps; hitting this limit
    almost always indicates an algorithmic bug rather than a large
    input, so the engine fails loudly instead of looping forever.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"job did not terminate within {limit} supersteps")
        self.limit = limit

    def __reduce__(self):
        return (SuperstepLimitExceededError, (self.limit,))


class AggregatorError(PregelError):
    """An aggregator was used inconsistently (unknown name, bad type)."""


class UnknownBackendError(PregelError):
    """An execution-backend name did not match any registered backend."""

    def __init__(self, name: str, available: "list[str]") -> None:
        super().__init__(
            f"unknown execution backend {name!r}; available: {', '.join(available)}"
        )
        self.name = name
        self.available = list(available)

    def __reduce__(self):
        return (UnknownBackendError, (self.name, self.available))


class BackendExecutionError(PregelError):
    """A worker process of a distributed backend failed irrecoverably."""


class WorkflowError(ReproError):
    """A workflow graph is invalid or a stage failed to execute.

    Raised by :mod:`repro.workflow` for structural problems (duplicate
    stage names, unknown dependencies, cycles, missing state keys) and
    as the base class of checkpoint failures.
    """


class CheckpointError(WorkflowError):
    """A workflow checkpoint could not be written, read, or matched.

    Resuming against a directory whose checkpoints were written by a
    different workflow (or a differently-shaped run of the same
    workflow) raises this instead of silently producing a hybrid run.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the assembly job service.

    Everything behind the REST API (:mod:`repro.service`) — job store,
    scheduler, worker pool, HTTP client — raises subclasses of this, so
    service embedders can catch one class at the boundary.
    """


class InvalidJobSpecError(ServiceError):
    """A submitted job specification could not be parsed or validated."""


class JobNotFoundError(ServiceError):
    """A job ID did not match any job known to the store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"no job with id {job_id!r}")
        self.job_id = job_id

    def __reduce__(self):
        return (JobNotFoundError, (self.job_id,))


class JobStateError(ServiceError):
    """A job was in the wrong state for the requested operation.

    Raised e.g. when fetching the result of a job that has not
    succeeded, or transitioning a terminal job.
    """


class ServiceClientError(ServiceError):
    """An HTTP request to the job service failed.

    Carries the HTTP status code (0 when the server was unreachable)
    so callers can distinguish 'job not found' from 'service down'.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status

    def __reduce__(self):
        return (ServiceClientError, (str(self), self.status))


class DnaError(ReproError):
    """Base class for sequence handling errors."""


class InvalidNucleotideError(DnaError):
    """A sequence contained a character outside ``A/C/G/T/N``."""

    def __init__(self, character: str, position: int | None = None) -> None:
        location = "" if position is None else f" at position {position}"
        super().__init__(f"invalid nucleotide {character!r}{location}")
        self.character = character
        self.position = position

    def __reduce__(self):
        return (InvalidNucleotideError, (self.character, self.position))


class InvalidKmerError(DnaError):
    """A k-mer had an unsupported length or contained invalid characters."""


class FastqFormatError(DnaError):
    """A FASTQ/FASTA record could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        location = "" if line_number is None else f" (line {line_number})"
        super().__init__(f"{message}{location}")
        self.message = message
        self.line_number = line_number

    def __reduce__(self):
        return (FastqFormatError, (self.message, self.line_number))


class AssemblyError(ReproError):
    """Base class for errors raised by the assembly pipeline."""


class GraphFormatError(AssemblyError):
    """A de Bruijn graph structure violated a format invariant."""


class PipelineConfigError(AssemblyError):
    """The assembly pipeline was configured inconsistently."""


class QualityError(ReproError):
    """Base class for errors raised during quality assessment."""


class AlignmentError(QualityError):
    """Contig-to-reference alignment could not be performed."""
