"""QUAST-style assembly quality assessment.

Reference-free statistics (N50, totals, GC), a seed-and-chain aligner
against the known reference, and the combined report whose fields map
one-to-one to the rows of Table IV / Table V of the paper.
"""

from .alignment import AlignedBlock, ContigAlignment, ReferenceAligner
from .quast import QualityReport, compare_assemblies, evaluate_assembly
from .stats import (
    ContigStatistics,
    contig_statistics,
    l50_value,
    n50_value,
    ng50_value,
    ngx_value,
    nx_value,
)

__all__ = [
    "AlignedBlock",
    "ContigAlignment",
    "ReferenceAligner",
    "QualityReport",
    "compare_assemblies",
    "evaluate_assembly",
    "ContigStatistics",
    "contig_statistics",
    "l50_value",
    "n50_value",
    "ng50_value",
    "ngx_value",
    "nx_value",
]
