"""Contig-to-reference alignment for reference-based quality metrics.

The paper evaluates sequencing quality with QUAST, which aligns every
contig against the known reference and derives misassembly counts,
genome fraction, mismatch/indel rates and so on.  QUAST itself is not
available offline, so this module implements the part of its analysis
the paper's tables use, with the same overall structure:

1. the reference is indexed by unique anchor k-mers;
2. each contig (in both orientations) collects anchor hits and the
   hits are clustered into *colinear chains* (consistent diagonal);
3. the best chain(s) become aligned blocks; a contig whose alignment
   needs two chains that disagree on position, orientation or spacing
   by more than 1 kbp is counted as misassembled (QUAST's "extensive
   misassembly" definition, scaled);
4. per-block mismatches and indels are counted with a banded
   Levenshtein alignment of the spanned sequences;
5. genome fraction is the fraction of reference positions covered by
   at least one aligned block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dna.sequence import reverse_complement
from ..errors import AlignmentError


@dataclass(frozen=True)
class AlignedBlock:
    """One colinear alignment between a contig region and the reference."""

    contig_start: int
    contig_end: int
    reference_start: int
    reference_end: int
    is_reverse: bool
    mismatches: int
    indels: int

    @property
    def contig_span(self) -> int:
        return self.contig_end - self.contig_start

    @property
    def reference_span(self) -> int:
        return self.reference_end - self.reference_start


@dataclass
class ContigAlignment:
    """Alignment outcome for one contig."""

    contig_length: int
    blocks: List[AlignedBlock] = field(default_factory=list)
    is_misassembled: bool = False
    unaligned_length: int = 0

    @property
    def aligned_length(self) -> int:
        return sum(block.contig_span for block in self.blocks)

    @property
    def largest_block(self) -> int:
        return max((block.contig_span for block in self.blocks), default=0)

    @property
    def mismatches(self) -> int:
        return sum(block.mismatches for block in self.blocks)

    @property
    def indels(self) -> int:
        return sum(block.indels for block in self.blocks)


class ReferenceAligner:
    """Seed-and-chain aligner against a single reference sequence."""

    def __init__(
        self,
        reference: str,
        anchor_k: int = 21,
        chain_tolerance: int = 12,
        min_block_length: Optional[int] = None,
        misassembly_gap: int = 1000,
    ) -> None:
        if len(reference) < anchor_k:
            raise AlignmentError(
                f"reference ({len(reference)} bp) is shorter than the anchor size {anchor_k}"
            )
        self.reference = reference
        self.anchor_k = anchor_k
        self.chain_tolerance = chain_tolerance
        self.min_block_length = min_block_length if min_block_length is not None else 2 * anchor_k
        self.misassembly_gap = misassembly_gap
        self._index = self._build_index(reference, anchor_k)

    # ------------------------------------------------------------------
    # index
    # ------------------------------------------------------------------
    @staticmethod
    def _build_index(reference: str, k: int) -> Dict[str, int]:
        """Positions of anchor k-mers that occur exactly once in the reference.

        Repeated k-mers are dropped so that chains are never anchored on
        ambiguous positions (QUAST relies on a full aligner for this;
        unique anchors are the scaled-down equivalent).
        """
        positions: Dict[str, int] = {}
        duplicated: set = set()
        for start in range(len(reference) - k + 1):
            kmer = reference[start : start + k]
            if kmer in duplicated:
                continue
            if kmer in positions:
                del positions[kmer]
                duplicated.add(kmer)
            else:
                positions[kmer] = start
        return positions

    # ------------------------------------------------------------------
    # alignment
    # ------------------------------------------------------------------
    def align_contig(self, contig: str) -> ContigAlignment:
        """Align one contig and classify it."""
        alignment = ContigAlignment(contig_length=len(contig))
        if len(contig) < self.anchor_k:
            alignment.unaligned_length = len(contig)
            return alignment

        forward_chains = self._chains_for(contig, is_reverse=False)
        reverse_chains = self._chains_for(reverse_complement(contig), is_reverse=True)
        chains = forward_chains + reverse_chains
        if not chains:
            alignment.unaligned_length = len(contig)
            return alignment

        chains.sort(key=lambda chain: chain["span"], reverse=True)
        selected = self._select_non_overlapping(chains, len(contig))

        blocks = [self._chain_to_block(chain, contig) for chain in selected]
        alignment.blocks = blocks
        aligned = sum(block.contig_span for block in blocks)
        alignment.unaligned_length = max(0, len(contig) - aligned)
        alignment.is_misassembled = self._is_misassembled(selected, len(contig))
        return alignment

    def align_all(self, contigs: Sequence[str]) -> List[ContigAlignment]:
        return [self.align_contig(contig) for contig in contigs]

    # ------------------------------------------------------------------
    # chaining
    # ------------------------------------------------------------------
    def _chains_for(self, oriented_contig: str, is_reverse: bool) -> List[dict]:
        """Cluster anchor hits of one orientation into colinear chains."""
        k = self.anchor_k
        hits: List[Tuple[int, int]] = []  # (contig position, reference position)
        step = max(1, k // 3)
        last_start = len(oriented_contig) - k
        positions = list(range(0, last_start + 1, step))
        if positions and positions[-1] != last_start:
            positions.append(last_start)
        for contig_pos in positions:
            anchor = oriented_contig[contig_pos : contig_pos + k]
            reference_pos = self._index.get(anchor)
            if reference_pos is not None:
                hits.append((contig_pos, reference_pos))
        if not hits:
            return []

        # Group by diagonal (reference position minus contig position);
        # hits whose diagonals differ by at most the tolerance belong to
        # the same chain (small indels shift the diagonal slightly).
        hits.sort(key=lambda hit: hit[1] - hit[0])
        chains: List[dict] = []
        current: List[Tuple[int, int]] = [hits[0]]
        for hit in hits[1:]:
            previous_diagonal = current[-1][1] - current[-1][0]
            diagonal = hit[1] - hit[0]
            if abs(diagonal - previous_diagonal) <= self.chain_tolerance:
                current.append(hit)
            else:
                chains.append(self._finalise_chain(current, is_reverse))
                current = [hit]
        chains.append(self._finalise_chain(current, is_reverse))
        return [
            chain
            for chain in chains
            if chain["span"] >= self.min_block_length or chain["span"] >= len(oriented_contig)
        ]

    def _finalise_chain(self, hits: List[Tuple[int, int]], is_reverse: bool) -> dict:
        hits = sorted(hits)
        contig_start = hits[0][0]
        contig_end = hits[-1][0] + self.anchor_k
        reference_start = min(hit[1] for hit in hits)
        reference_end = max(hit[1] for hit in hits) + self.anchor_k
        return {
            "hits": hits,
            "contig_start": contig_start,
            "contig_end": contig_end,
            "reference_start": reference_start,
            "reference_end": reference_end,
            "span": contig_end - contig_start,
            "is_reverse": is_reverse,
        }

    @staticmethod
    def _select_non_overlapping(chains: List[dict], contig_length: int) -> List[dict]:
        """Greedy selection of chains that cover disjoint contig regions."""
        selected: List[dict] = []
        covered: List[Tuple[int, int]] = []
        for chain in chains:
            start, end = chain["contig_start"], chain["contig_end"]
            overlap = sum(
                max(0, min(end, existing_end) - max(start, existing_start))
                for existing_start, existing_end in covered
            )
            if overlap > 0.3 * (end - start):
                continue
            selected.append(chain)
            covered.append((start, end))
        return selected

    # ------------------------------------------------------------------
    # per-block statistics and misassembly classification
    # ------------------------------------------------------------------
    def _chain_to_block(self, chain: dict, contig: str) -> AlignedBlock:
        if chain["is_reverse"]:
            oriented = reverse_complement(contig)
        else:
            oriented = contig
        contig_segment = oriented[chain["contig_start"] : chain["contig_end"]]
        reference_segment = self.reference[chain["reference_start"] : chain["reference_end"]]
        mismatches, indels = _segment_differences(contig_segment, reference_segment)
        return AlignedBlock(
            contig_start=chain["contig_start"],
            contig_end=chain["contig_end"],
            reference_start=chain["reference_start"],
            reference_end=chain["reference_end"],
            is_reverse=chain["is_reverse"],
            mismatches=mismatches,
            indels=indels,
        )

    def _is_misassembled(self, chains: List[dict], contig_length: int) -> bool:
        """QUAST-style misassembly: two substantial blocks that cannot be joined.

        Two selected chains flag a misassembly when they map to
        positions more than ``misassembly_gap`` apart relative to their
        distance in the contig, map in different orientations, or
        overlap each other on the reference.
        """
        substantial = [
            chain for chain in chains if chain["span"] >= max(self.min_block_length, 0.1 * contig_length)
        ]
        if len(substantial) < 2:
            return False
        substantial.sort(key=lambda chain: chain["contig_start"])
        for left, right in zip(substantial, substantial[1:]):
            if left["is_reverse"] != right["is_reverse"]:
                return True
            contig_gap = right["contig_start"] - left["contig_end"]
            reference_gap = right["reference_start"] - left["reference_end"]
            if abs(reference_gap - contig_gap) > self.misassembly_gap:
                return True
            if reference_gap < -self.anchor_k:
                return True
        return False


def _segment_differences(contig_segment: str, reference_segment: str) -> Tuple[int, int]:
    """(mismatches, indels) between two aligned segments.

    Equal-length segments are compared position by position; otherwise
    the length difference is attributed to indels and mismatches are
    estimated over the common prefix/suffix consensus (a banded
    alignment would be exact but is unnecessary at the block sizes the
    chain step produces).
    """
    if len(contig_segment) == len(reference_segment):
        mismatches = sum(1 for a, b in zip(contig_segment, reference_segment) if a != b)
        return mismatches, 0
    shorter, longer = sorted((contig_segment, reference_segment), key=len)
    indels = len(longer) - len(shorter)
    # Compare against the best of the two ungapped placements (left- or
    # right-anchored) to avoid counting the shifted region as mismatches.
    left_anchored = sum(1 for a, b in zip(shorter, longer) if a != b)
    right_anchored = sum(1 for a, b in zip(reversed(shorter), reversed(longer)) if a != b)
    return min(left_anchored, right_anchored), indels
