"""Reference-free contig statistics (the metrics of Table V).

These are the standard assembly summary statistics QUAST reports
without needing a reference sequence: contig counts above a length
threshold, total assembled length, N50/L50, the largest contig, and GC
content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..dna.sequence import gc_content


@dataclass(frozen=True)
class ContigStatistics:
    """Summary statistics over one set of contigs."""

    num_contigs: int
    total_length: int
    largest_contig: int
    n50: int
    l50: int
    gc_percent: float
    min_contig_length: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_contigs": self.num_contigs,
            "total_length": self.total_length,
            "largest_contig": self.largest_contig,
            "n50": self.n50,
            "l50": self.l50,
            "gc_percent": round(self.gc_percent, 2),
            "min_contig_length": self.min_contig_length,
        }


def n50_value(lengths: Sequence[int]) -> int:
    """N50: length of the contig at which half the total length is reached.

    Formally, sort the contigs from longest to shortest and accumulate
    their lengths; N50 is the length of the contig that makes the
    running total reach half of the overall total (the paper's
    "sequence length of the contig that contains the middle element").
    """
    ordered = sorted(lengths, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0
    accumulated = 0
    for length in ordered:
        accumulated += length
        if accumulated * 2 >= total:
            return length
    return ordered[-1]


def l50_value(lengths: Sequence[int]) -> int:
    """L50: number of contigs needed to reach half the total length."""
    ordered = sorted(lengths, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0
    accumulated = 0
    for index, length in enumerate(ordered, start=1):
        accumulated += length
        if accumulated * 2 >= total:
            return index
    return len(ordered)


def nx_value(lengths: Sequence[int], fraction: float) -> int:
    """Generalised Nx (e.g. ``fraction=0.9`` gives N90)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(lengths, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0
    accumulated = 0
    for length in ordered:
        accumulated += length
        if accumulated >= total * fraction:
            return length
    return ordered[-1]


def ngx_value(lengths: Sequence[int], reference_length: int, fraction: float = 0.5) -> int:
    """Generalised NGx: like Nx but relative to the *reference* length.

    N50 rewards assemblies that simply emit fewer bases; NG50 fixes the
    denominator at the known genome size, so contig and scaffold sets
    over the same genome are directly comparable — the reason QUAST
    reports it alongside N50 and the scaffolding benchmark uses it.
    Returns 0 when the assembly does not even reach ``fraction`` of the
    reference.
    """
    if reference_length <= 0:
        raise ValueError(f"reference_length must be positive, got {reference_length}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(lengths, reverse=True)
    target = reference_length * fraction
    accumulated = 0
    for length in ordered:
        accumulated += length
        if accumulated >= target:
            return length
    return 0


def ng50_value(lengths: Sequence[int], reference_length: int) -> int:
    """NG50: length of the contig reaching half the *reference* length."""
    return ngx_value(lengths, reference_length, 0.5)


def contig_statistics(
    contigs: Iterable[str],
    min_contig_length: int = 500,
) -> ContigStatistics:
    """Compute the Table V statistics over ``contigs``.

    Only contigs at least ``min_contig_length`` long are counted, which
    is QUAST's convention (500 bp by default); the benchmarks scale the
    threshold down together with the datasets.
    """
    kept: List[str] = [contig for contig in contigs if len(contig) >= min_contig_length]
    lengths = [len(contig) for contig in kept]
    total = sum(lengths)
    gc = 0.0
    if total:
        gc_bases = sum(gc_content(contig) * len(contig) for contig in kept)
        gc = 100.0 * gc_bases / total
    return ContigStatistics(
        num_contigs=len(kept),
        total_length=total,
        largest_contig=max(lengths, default=0),
        n50=n50_value(lengths),
        l50=l50_value(lengths),
        gc_percent=gc,
        min_contig_length=min_contig_length,
    )
