"""QUAST-style quality report (the metrics of Table IV).

Combines the reference-free statistics of :mod:`repro.quality.stats`
with the reference-based metrics derived from
:class:`~repro.quality.alignment.ReferenceAligner` into a single report
whose fields correspond one-to-one to the rows of Table IV:

=============================  =======================================
Table IV row                   report field
=============================  =======================================
# of contigs                   ``num_contigs``
Total length                   ``total_length``
N50                            ``n50``
Largest contig                 ``largest_contig``
GC (%)                         ``gc_percent``
# Misassemblies                ``misassemblies``
Misassembled length            ``misassembled_length``
Unaligned length               ``unaligned_length``
Genome fraction (%)            ``genome_fraction``
# Mismatches per 100 kbp       ``mismatches_per_100kbp``
# Indels per 100 kbp           ``indels_per_100kbp``
Largest alignment              ``largest_alignment``
=============================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .alignment import ContigAlignment, ReferenceAligner
from .stats import ContigStatistics, contig_statistics


@dataclass(frozen=True)
class QualityReport:
    """All quality metrics for one assembly (Table IV rows)."""

    assembler: str
    num_contigs: int
    total_length: int
    n50: int
    largest_contig: int
    gc_percent: float
    # Reference-based metrics; None when no reference was provided
    # (Table V only reports the four metrics above in that case).
    misassemblies: Optional[int] = None
    misassembled_length: Optional[int] = None
    unaligned_length: Optional[int] = None
    genome_fraction: Optional[float] = None
    mismatches_per_100kbp: Optional[float] = None
    indels_per_100kbp: Optional[float] = None
    largest_alignment: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "assembler": self.assembler,
            "num_contigs": self.num_contigs,
            "total_length": self.total_length,
            "n50": self.n50,
            "largest_contig": self.largest_contig,
            "gc_percent": round(self.gc_percent, 2),
        }
        if self.misassemblies is not None:
            row.update(
                {
                    "misassemblies": self.misassemblies,
                    "misassembled_length": self.misassembled_length,
                    "unaligned_length": self.unaligned_length,
                    "genome_fraction": round(self.genome_fraction or 0.0, 3),
                    "mismatches_per_100kbp": round(self.mismatches_per_100kbp or 0.0, 2),
                    "indels_per_100kbp": round(self.indels_per_100kbp or 0.0, 2),
                    "largest_alignment": self.largest_alignment,
                }
            )
        return row


def evaluate_assembly(
    contigs: Sequence[str],
    reference: Optional[str] = None,
    assembler: str = "assembly",
    min_contig_length: int = 500,
    anchor_k: int = 21,
) -> QualityReport:
    """Evaluate one contig set, optionally against a reference.

    ``min_contig_length`` mirrors QUAST's 500 bp cutoff; the scaled
    benchmark datasets pass a proportionally smaller value.
    """
    kept = [contig for contig in contigs if len(contig) >= min_contig_length]
    basic: ContigStatistics = contig_statistics(kept, min_contig_length=min_contig_length)

    report_kwargs = {
        "assembler": assembler,
        "num_contigs": basic.num_contigs,
        "total_length": basic.total_length,
        "n50": basic.n50,
        "largest_contig": basic.largest_contig,
        "gc_percent": basic.gc_percent,
    }
    if reference is None or not kept:
        return QualityReport(**report_kwargs)

    aligner = ReferenceAligner(reference, anchor_k=anchor_k)
    alignments: List[ContigAlignment] = aligner.align_all(kept)

    misassembled = [alignment for alignment in alignments if alignment.is_misassembled]
    aligned_bases = sum(alignment.aligned_length for alignment in alignments)
    mismatches = sum(alignment.mismatches for alignment in alignments)
    indels = sum(alignment.indels for alignment in alignments)

    covered = _covered_positions(alignments, len(reference))
    genome_fraction = 100.0 * covered / len(reference) if reference else 0.0

    per_100kbp = 100_000.0 / aligned_bases if aligned_bases else 0.0
    return QualityReport(
        misassemblies=len(misassembled),
        misassembled_length=sum(alignment.contig_length for alignment in misassembled),
        unaligned_length=sum(alignment.unaligned_length for alignment in alignments),
        genome_fraction=genome_fraction,
        mismatches_per_100kbp=mismatches * per_100kbp,
        indels_per_100kbp=indels * per_100kbp,
        largest_alignment=max(
            (alignment.largest_block for alignment in alignments), default=0
        ),
        **report_kwargs,
    )


def _covered_positions(alignments: List[ContigAlignment], reference_length: int) -> int:
    """Number of reference positions covered by at least one aligned block."""
    intervals = []
    for alignment in alignments:
        for block in alignment.blocks:
            start = max(0, block.reference_start)
            end = min(reference_length, block.reference_end)
            if end > start:
                intervals.append((start, end))
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    covered += current_end - current_start
    return covered


def compare_assemblies(
    assemblies: Dict[str, Sequence[str]],
    reference: Optional[str] = None,
    min_contig_length: int = 500,
    anchor_k: int = 21,
) -> List[QualityReport]:
    """Evaluate several assemblies (one per assembler) for a Table IV/V style comparison."""
    return [
        evaluate_assembly(
            contigs,
            reference=reference,
            assembler=name,
            min_contig_length=min_contig_length,
            anchor_k=anchor_k,
        )
        for name, contigs in assemblies.items()
    ]
