"""Spill planes: how the execution backends shed memory under a budget.

Two cooperating pieces, one per backend shape:

* :class:`SerialSpillPlane` — owns the serial backend's worker
  partitions and delivered inboxes for one job.  Between supersteps the
  partitions of workers that are not currently executing are idle by
  construction (workers run one after another), so any of them may live
  on disk; the plane loads each worker just-in-time, re-accounts it
  after it executes, and spills least-recently-used entries until the
  ledger is back under budget.  Active counts are recorded at spill
  time so the termination check never needs to load a partition.

* :class:`WorkerBatchSpiller` — used *inside* a multiprocess worker
  process for message batches staged for future supersteps.  Each
  worker gets an equal share of the job budget; staged batches beyond
  the share spill to a private store and are resolved when their
  superstep arrives.  Spill totals are drained per superstep and ride
  the existing counter dict to the master, which folds them into the
  process-wide :class:`~repro.store.spill.SpillStats`.

Spilling is transparent to results: the parity suite pins contigs,
scaffolds, metrics and aggregate histories bit-identical at any budget.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..pregel.worker import Worker
from ..store.ledger import MemoryLedger, estimate_nbytes
from ..store.spill import SpillManager, SpillStats, process_spill_stats


class _SpilledInbox:
    """Truthy placeholder for an inbox that lives on disk.

    The serial loop's "messages pending?" check only asks whether any
    worker's inbox is non-empty; empty inboxes are never spilled, so
    the marker can answer truthfully without touching disk.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return 1


_SPILLED = _SpilledInbox()


class SerialSpillPlane:
    """Budgeted custody of one serial job's partitions and inboxes."""

    def __init__(self, budget_bytes: int, job_name: str = "job") -> None:
        self.ledger = MemoryLedger(budget_bytes, name=f"serial:{job_name}")
        self.manager = SpillManager(owner=f"serial:{job_name}")
        self._workers: Dict[int, Optional[Worker]] = {}
        #: active_count recorded when a partition spilled, so the
        #: termination check works without loading it back.
        self._spilled_active: Dict[int, int] = {}
        self._inboxes: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def adopt(self, workers: Iterable[Worker]) -> None:
        """Take custody of the job's partitions (call once, after split)."""
        for worker in workers:
            self._workers[worker.worker_id] = worker
            self._account(worker)
        self.rebalance()

    def worker(self, worker_id: int) -> Worker:
        """The partition, loaded back from disk if it was spilled."""
        worker = self._workers.get(worker_id)
        if worker is None:
            worker = self.manager.load(self._partition_key(worker_id))
            self._workers[worker_id] = worker
            self._spilled_active.pop(worker_id, None)
            self._account(worker)
        else:
            self.ledger.touch(self._partition_key(worker_id))
        return worker

    def reaccount(self, worker: Worker) -> None:
        """Refresh a partition's ledger entry after it executed.

        Execution mutates vertex values and may create vertices via the
        vertex factory, so the pre-superstep estimate is stale.
        """
        self._account(worker)

    def active_total(self) -> int:
        """Sum of active vertices without loading spilled partitions."""
        total = 0
        for worker_id, worker in self._workers.items():
            if worker is None:
                total += self._spilled_active.get(worker_id, 0)
            else:
                total += worker.active_count()
        return total

    # ------------------------------------------------------------------
    # inboxes
    # ------------------------------------------------------------------
    def stash_inboxes(self, inboxes: Dict[int, Any]) -> Dict[int, Any]:
        """Account delivered inboxes, then rebalance (may spill some).

        Returns the inbox mapping with spilled entries replaced by
        truthy markers, so the caller's pending-messages check still
        reads correctly.
        """
        for worker_id, inbox in inboxes.items():
            if inbox:
                self.ledger.track(self._inbox_key(worker_id), estimate_nbytes(inbox))
        self._inboxes = inboxes
        self.rebalance()
        return inboxes

    def take_inbox(self, worker_id: int, inboxes: Dict[int, Any]) -> Dict[int, Any]:
        """The worker's inbox, loaded back if it was spilled; releases it."""
        inbox = inboxes.get(worker_id, {})
        if isinstance(inbox, _SpilledInbox):
            inbox = self.manager.load(self._inbox_key(worker_id))
        else:
            self.ledger.release(self._inbox_key(worker_id))
        inboxes.pop(worker_id, None)
        return inbox

    # ------------------------------------------------------------------
    # budget enforcement
    # ------------------------------------------------------------------
    def rebalance(self, exclude_worker: Optional[int] = None) -> None:
        """Spill LRU entries until the ledger is back under budget.

        ``exclude_worker`` pins the partition currently executing (its
        object is on the caller's stack; spilling it would just burn a
        serialization without freeing the memory).
        """
        if not self.ledger.over_budget:
            return
        exclude = set()
        if exclude_worker is not None:
            exclude.add(self._partition_key(exclude_worker))
        for name, _ in self.ledger.victims(exclude):
            if not self.ledger.over_budget:
                break
            if name.startswith("partition:"):
                worker_id = int(name.split(":", 1)[1])
                worker = self._workers.get(worker_id)
                if worker is None:
                    continue
                if self.manager.spill(name, worker):
                    self._spilled_active[worker_id] = worker.active_count()
                    self._workers[worker_id] = None
                    self.ledger.release(name)
            elif name.startswith("inbox:"):
                worker_id = int(name.split(":", 1)[1])
                inbox = self._inboxes.get(worker_id)
                if inbox is None or isinstance(inbox, _SpilledInbox):
                    continue
                if self.manager.spill(name, inbox):
                    self._inboxes[worker_id] = _SPILLED
                    self.ledger.release(name)
        process_spill_stats().record_ledger_peak(self.ledger.peak_bytes)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def restore_all(self) -> List[Worker]:
        """Load every partition back; the job is over and wants vertices."""
        return [self.worker(worker_id) for worker_id in sorted(self._workers)]

    def close(self) -> None:
        process_spill_stats().record_ledger_peak(self.ledger.peak_bytes)
        self.manager.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account(self, worker: Worker) -> None:
        self.ledger.track(
            self._partition_key(worker.worker_id), estimate_nbytes(worker.vertices)
        )

    @staticmethod
    def _partition_key(worker_id: int) -> str:
        return f"partition:{worker_id}"

    @staticmethod
    def _inbox_key(worker_id: int) -> str:
        return f"inbox:{worker_id}"


#: Tag of a spilled staged batch's disk token on the worker side.
SPILLED_BATCH = "spilled-batch"


def _is_spilled_token(batch: Any) -> bool:
    return isinstance(batch, tuple) and len(batch) == 2 and batch[0] == SPILLED_BATCH


def _is_shm_descriptor(batch: Any) -> bool:
    # ("shmb", name, offset, count) — the payload lives in a shared
    # memory arena, not this worker's heap, so it is never accounted
    # or spilled (the tag literal is duplicated here to avoid importing
    # the shm plane into the store layer).
    return isinstance(batch, tuple) and len(batch) == 4 and batch[0] == "shmb"


class WorkerBatchSpiller:
    """Budgeted custody of a multiprocess worker's staged batches.

    Lives inside one worker process.  Batches staged for a *future*
    superstep are the coldest memory the worker holds (its resident
    partition is in use every superstep), so they are what spills:
    :meth:`stash` accounts each arriving batch and returns either the
    batch or a disk token; :meth:`resolve` materialises it when its
    superstep arrives.  Shared-memory descriptors pass through
    untouched — their payload is not on this worker's heap.

    Spill totals accumulate in a *private* :class:`SpillStats` (the
    process-wide one would be polluted by fork-inherited parent counts)
    and are drained per superstep into the counter dict the worker
    already ships at every barrier; the master folds the deltas into
    its own process-wide totals.
    """

    def __init__(
        self,
        budget_bytes: int,
        worker_id: int,
        job_name: str = "job",
        registry=None,
    ) -> None:
        stats = SpillStats()
        self.ledger = MemoryLedger(
            budget_bytes, name=f"mp:{job_name}:w{worker_id}", registry=registry
        )
        self.manager = SpillManager(
            owner=f"mp:{job_name}:w{worker_id}", stats=stats, registry=registry
        )
        self._last_snapshot: Dict[str, int] = {}

    def account_partition(self, vertices: Dict[int, Any]) -> None:
        """Track the resident partition so staged batches feel the squeeze."""
        self.ledger.track("partition", estimate_nbytes(vertices))

    def stash(self, for_superstep: int, sender: int, batch: Any) -> Any:
        """Account a staged batch; spill it if the worker is over budget."""
        if _is_shm_descriptor(batch) or _is_spilled_token(batch):
            return batch
        name = f"batch:{for_superstep}:{sender}"
        self.ledger.track(name, estimate_nbytes(batch))
        if not self.ledger.over_budget:
            return batch
        if self.manager.spill(name, batch):
            self.ledger.release(name)
            return (SPILLED_BATCH, name)
        return batch

    def resolve(self, for_superstep: int, sender: int, batch: Any) -> Any:
        """Materialise a staged batch whose superstep has arrived."""
        if _is_spilled_token(batch):
            return self.manager.load(batch[1])
        self.ledger.release(f"batch:{for_superstep}:{sender}")
        return batch

    def drain_stats(self) -> Dict[str, int]:
        """Spill/load growth since the previous drain (peak is absolute)."""
        snapshot = self.manager.stats.snapshot()
        previous = self._last_snapshot
        delta = {
            "spill_events": snapshot["spill_events"] - previous.get("spill_events", 0),
            "spill_bytes": snapshot["spill_bytes"] - previous.get("spill_bytes", 0),
            "load_events": snapshot["load_events"] - previous.get("load_events", 0),
            "load_bytes": snapshot["load_bytes"] - previous.get("load_bytes", 0),
            "ledger_peak_bytes": self.ledger.peak_bytes,
        }
        self._last_snapshot = snapshot
        return delta

    def close(self) -> None:
        self.manager.close()
