"""Pluggable execution runtimes for the Pregel engine.

The engine's BSP superstep loop is abstracted behind
:class:`~repro.runtime.base.ExecutionBackend` so the same job — and the
same assembly workflow — can run either on the exact in-process cluster
simulation (``"serial"``) or on real shared-nothing worker processes
(``"multiprocess"``).  Select a backend by name anywhere a worker count
is configured::

    PregelEngine(num_workers=4, backend="multiprocess")
    WorkflowRunner(num_workers=4, backend="multiprocess")
    AssemblyConfig(k=21, backend="multiprocess")

Both backends produce identical vertex states, aggregate histories and
metrics (see ``tests/runtime/``); the serial backend remains the
default because the paper's tables are reproduced from its exact
counters, while the multiprocess backend trades exact simulation for
wall-clock parallelism on multi-core hosts.
"""

from .base import (
    ExecutionBackend,
    available_backends,
    create_backend,
    ensure_backend,
    register_backend,
)
from .multiprocess import MultiprocessBackend
from .serial import SerialBackend

__all__ = [
    "ExecutionBackend",
    "MultiprocessBackend",
    "SerialBackend",
    "available_backends",
    "create_backend",
    "ensure_backend",
    "register_backend",
]
