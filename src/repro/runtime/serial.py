"""Serial backend: the original in-process Pregel cluster simulation.

Workers execute one after another inside the calling process, exactly
as :class:`~repro.pregel.engine.PregelEngine` always did.  This keeps
counter-based reproduction of the paper bit-exact and deterministic:
the per-worker compute/message/byte breakdowns feed the BSP cost model
that regenerates Tables 2-5 and Figure 12, so this backend remains the
default for every benchmark that reports simulated cluster numbers.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..errors import InvalidJobError, SuperstepLimitExceededError
from ..pregel.aggregator import AggregatorRegistry
from ..pregel.engine import JobResult, PregelJob
from ..pregel.message import MessageRouter
from ..pregel.metrics import JobMetrics, SuperstepMetrics
from ..pregel.worker import Worker
from ..telemetry import span
from .base import ExecutionBackend, SuperstepInstruments, register_backend
from .spilling import SerialSpillPlane


@register_backend
class SerialBackend(ExecutionBackend):
    """Sequential in-process execution with exact simulated-cluster counters."""

    name = "serial"

    def run(self, job: PregelJob) -> JobResult:
        initial_vertices = list(job.vertices)
        partitioner = self.job_partitioner(initial_vertices)
        workers = self.partition_into_workers(initial_vertices, partitioner)
        num_vertices = sum(len(worker) for worker in workers)
        if num_vertices == 0:
            raise InvalidJobError(f"job {job.name!r} has no vertices")

        # With a memory budget, the spill plane takes custody of the
        # partitions: workers are loaded just-in-time and idle ones may
        # live on disk between supersteps.  Dropping the flat vertex
        # list matters — it would otherwise pin every vertex in memory
        # regardless of what the plane evicts.
        plane = None
        if self.memory_budget_bytes is not None:
            plane = SerialSpillPlane(self.memory_budget_bytes, job.name)
            plane.adopt(workers)
            workers = None
            del initial_vertices

        registry = AggregatorRegistry()
        for aggregator in job.aggregators:
            registry.register(aggregator)

        router = MessageRouter(partitioner, job.combiner, columnar=self.columnar_messages)
        metrics = JobMetrics(job_name=job.name, num_workers=self.num_workers)
        aggregate_history: List[Dict[str, Any]] = []
        instruments = SuperstepInstruments(job.name)

        try:
            superstep = 0
            inboxes: Dict[int, Dict[int, List[Any]]] = {}
            while True:
                if superstep >= job.max_supersteps:
                    raise SuperstepLimitExceededError(job.max_supersteps)

                if plane is None:
                    active = sum(worker.active_count() for worker in workers)
                else:
                    active = plane.active_total()
                pending = any(inboxes.get(w, {}) for w in range(self.num_workers))
                if active == 0 and not pending:
                    break

                step_started = time.perf_counter()
                with span(f"superstep-{superstep}") as step_span:
                    step_metrics = self._run_superstep(
                        superstep, job, workers, inboxes, router, registry,
                        num_vertices, instruments, plane,
                    )
                    step_span.set(
                        messages_sent=step_metrics.messages_sent,
                        bytes_sent=step_metrics.bytes_sent,
                        active_vertices=step_metrics.active_vertices,
                    )
                instruments.record_superstep(
                    step_metrics, time.perf_counter() - step_started
                )
                metrics.add(step_metrics)

                snapshot = registry.finish_superstep()
                aggregate_history.append(snapshot)

                inboxes = router.deliver()
                if plane is not None:
                    inboxes = plane.stash_inboxes(inboxes)
                superstep += 1

                if job.halt_condition is not None and job.halt_condition(snapshot):
                    break

            if plane is not None:
                workers = plane.restore_all()
            vertices = {}
            for worker in workers:
                vertices.update(worker.vertices)
        finally:
            if plane is not None:
                plane.close()
        return JobResult(
            job_name=job.name,
            vertices=vertices,
            metrics=metrics,
            aggregates=aggregate_history,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_superstep(
        self,
        superstep: int,
        job: PregelJob,
        workers: List[Worker],
        inboxes: Dict[int, Dict[int, List[Any]]],
        router: MessageRouter,
        registry: AggregatorRegistry,
        num_vertices: int,
        instruments: SuperstepInstruments,
        plane: "SerialSpillPlane | None" = None,
    ) -> SuperstepMetrics:
        step = SuperstepMetrics(superstep=superstep)
        previous_aggregates = registry.previous_values()
        cross_before = router.cross_message_count

        for worker_id in range(self.num_workers):
            if plane is None:
                worker = workers[worker_id]
                inbox = inboxes.get(worker_id, {})
            else:
                worker = plane.worker(worker_id)
                inbox = plane.take_inbox(worker_id, inboxes)
            aggregator_copies = registry.current_copies()
            with span(f"worker-{worker.worker_id}", worker=worker.worker_id) as wspan:
                outbox, counters = worker.execute_superstep(
                    superstep=superstep,
                    inbox=inbox,
                    aggregator_copies=aggregator_copies,
                    previous_aggregates=previous_aggregates,
                    num_vertices=num_vertices,
                    vertex_factory=job.vertex_factory,
                )
                wspan.set(
                    messages_sent=counters["messages_sent"],
                    compute_calls=counters["compute_calls"],
                )
            instruments.record_worker(worker.worker_id, counters)
            registry.merge_from(aggregator_copies)
            router.post(outbox, sender=worker.worker_id)

            step.compute_calls += counters["compute_calls"]
            step.compute_ops += counters["compute_ops"]
            step.messages_sent += counters["messages_sent"]
            step.bytes_sent += counters["bytes_sent"]
            step.worker_compute_ops.append(counters["compute_ops"])
            step.worker_messages_sent.append(counters["messages_sent"])
            step.worker_bytes_sent.append(counters["bytes_sent"])
            step.worker_messages_received.append(counters["messages_received"])
            step.worker_bytes_received.append(counters["bytes_received"])

            if plane is not None:
                # Execution mutated the partition (values, factory-made
                # vertices): refresh its ledger entry, then shed memory
                # before the next worker loads.  The just-executed
                # partition is excluded — it is still on this frame.
                plane.reaccount(worker)
                plane.rebalance(exclude_worker=worker_id)

        step.cross_worker_messages = router.cross_message_count - cross_before
        if plane is None:
            step.active_vertices = sum(worker.active_count() for worker in workers)
        else:
            step.active_vertices = plane.active_total()
        return step
