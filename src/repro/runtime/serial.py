"""Serial backend: the original in-process Pregel cluster simulation.

Workers execute one after another inside the calling process, exactly
as :class:`~repro.pregel.engine.PregelEngine` always did.  This keeps
counter-based reproduction of the paper bit-exact and deterministic:
the per-worker compute/message/byte breakdowns feed the BSP cost model
that regenerates Tables 2-5 and Figure 12, so this backend remains the
default for every benchmark that reports simulated cluster numbers.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..errors import InvalidJobError, SuperstepLimitExceededError
from ..pregel.aggregator import AggregatorRegistry
from ..pregel.engine import JobResult, PregelJob
from ..pregel.message import MessageRouter
from ..pregel.metrics import JobMetrics, SuperstepMetrics
from ..pregel.worker import Worker
from ..telemetry import span
from .base import ExecutionBackend, SuperstepInstruments, register_backend


@register_backend
class SerialBackend(ExecutionBackend):
    """Sequential in-process execution with exact simulated-cluster counters."""

    name = "serial"

    def run(self, job: PregelJob) -> JobResult:
        initial_vertices = list(job.vertices)
        partitioner = self.job_partitioner(initial_vertices)
        workers = self.partition_into_workers(initial_vertices, partitioner)
        num_vertices = sum(len(worker) for worker in workers)
        if num_vertices == 0:
            raise InvalidJobError(f"job {job.name!r} has no vertices")

        registry = AggregatorRegistry()
        for aggregator in job.aggregators:
            registry.register(aggregator)

        router = MessageRouter(partitioner, job.combiner, columnar=self.columnar_messages)
        metrics = JobMetrics(job_name=job.name, num_workers=self.num_workers)
        aggregate_history: List[Dict[str, Any]] = []
        instruments = SuperstepInstruments(job.name)

        superstep = 0
        inboxes: Dict[int, Dict[int, List[Any]]] = {}
        while True:
            if superstep >= job.max_supersteps:
                raise SuperstepLimitExceededError(job.max_supersteps)

            active = sum(worker.active_count() for worker in workers)
            pending = any(inboxes.get(w, {}) for w in range(self.num_workers))
            if active == 0 and not pending:
                break

            step_started = time.perf_counter()
            with span(f"superstep-{superstep}") as step_span:
                step_metrics = self._run_superstep(
                    superstep, job, workers, inboxes, router, registry,
                    num_vertices, instruments,
                )
                step_span.set(
                    messages_sent=step_metrics.messages_sent,
                    bytes_sent=step_metrics.bytes_sent,
                    active_vertices=step_metrics.active_vertices,
                )
            instruments.record_superstep(
                step_metrics, time.perf_counter() - step_started
            )
            metrics.add(step_metrics)

            snapshot = registry.finish_superstep()
            aggregate_history.append(snapshot)

            inboxes = router.deliver()
            superstep += 1

            if job.halt_condition is not None and job.halt_condition(snapshot):
                break

        vertices = {}
        for worker in workers:
            vertices.update(worker.vertices)
        return JobResult(
            job_name=job.name,
            vertices=vertices,
            metrics=metrics,
            aggregates=aggregate_history,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_superstep(
        self,
        superstep: int,
        job: PregelJob,
        workers: List[Worker],
        inboxes: Dict[int, Dict[int, List[Any]]],
        router: MessageRouter,
        registry: AggregatorRegistry,
        num_vertices: int,
        instruments: SuperstepInstruments,
    ) -> SuperstepMetrics:
        step = SuperstepMetrics(superstep=superstep)
        previous_aggregates = registry.previous_values()
        cross_before = router.cross_message_count

        for worker in workers:
            inbox = inboxes.get(worker.worker_id, {})
            aggregator_copies = registry.current_copies()
            with span(f"worker-{worker.worker_id}", worker=worker.worker_id) as wspan:
                outbox, counters = worker.execute_superstep(
                    superstep=superstep,
                    inbox=inbox,
                    aggregator_copies=aggregator_copies,
                    previous_aggregates=previous_aggregates,
                    num_vertices=num_vertices,
                    vertex_factory=job.vertex_factory,
                )
                wspan.set(
                    messages_sent=counters["messages_sent"],
                    compute_calls=counters["compute_calls"],
                )
            instruments.record_worker(worker.worker_id, counters)
            registry.merge_from(aggregator_copies)
            router.post(outbox, sender=worker.worker_id)

            step.compute_calls += counters["compute_calls"]
            step.compute_ops += counters["compute_ops"]
            step.messages_sent += counters["messages_sent"]
            step.bytes_sent += counters["bytes_sent"]
            step.worker_compute_ops.append(counters["compute_ops"])
            step.worker_messages_sent.append(counters["messages_sent"])
            step.worker_bytes_sent.append(counters["bytes_sent"])
            step.worker_messages_received.append(counters["messages_received"])
            step.worker_bytes_received.append(counters["bytes_received"])

        step.cross_worker_messages = router.cross_message_count - cross_before
        step.active_vertices = sum(worker.active_count() for worker in workers)
        return step
