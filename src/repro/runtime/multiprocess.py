"""Multiprocess backend: shared-nothing worker processes.

This backend runs each Pregel worker as a real operating-system
process, the way the paper's Pregel+ substrate runs one worker per
cluster slot:

* every worker process owns its hash partition of vertices for the
  whole job (vertices never migrate);
* outgoing messages are grouped into per-destination-worker batches,
  combined sender-side when the job has a combiner (so the bytes that
  cross the process boundary are the combined ones), and shipped
  either through the destination worker's data queue (pickled) or —
  for columnar batches on the default ``shm`` message plane — written
  into the sender's shared-memory arena with only a
  ``(name, offset, count)`` descriptor crossing the queue (see
  :mod:`repro.runtime.shm`);
* per-worker aggregator partials are shipped to the master at the
  superstep barrier as plain ``(value, touched)`` state pairs and
  merged in worker-id order, mirroring how Pregel ships partial
  aggregates to the master;
* the master runs the BSP control loop: it collects the per-worker
  counters, merges aggregates, evaluates the halt condition, and
  broadcasts either the next superstep command or a stop command.

Determinism: message batches are merged at the receiver in sender-id
order and combiners are required to be associative and commutative, so
vertex values, aggregate histories and metrics are identical to the
:class:`~repro.runtime.serial.SerialBackend` (the parity tests under
``tests/runtime/`` assert this for the PPA primitives and an
end-to-end assembly).

The default start method is ``fork`` where available: the job's vertex
objects, combiner and vertex factory are inherited by the children
without pickling, so jobs may use lambdas and closures.  Under
``spawn`` all job state must be picklable.
"""

from __future__ import annotations

import cProfile
import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..errors import BackendExecutionError, InvalidJobError, SuperstepLimitExceededError
from ..pregel.aggregator import Aggregator
from ..pregel.aggregator import AggregatorRegistry
from ..pregel.engine import JobResult, PregelJob
from ..pregel.message import (
    COLUMNAR_MIN_BATCH,
    Combiner,
    columns_from_pairs,
    combine_columns,
    combiner_vectorizable,
    group_columns,
)
from ..pregel.metrics import JobMetrics, SuperstepMetrics
from ..pregel.vertex import Vertex, VertexFactory
from ..pregel.worker import Worker
from ..telemetry import (
    ResourceSampler,
    TimelineRecorder,
    get_profiler,
    get_registry,
    get_timeline,
    remote_context,
    span,
    start_remote_span,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.profiling import stats_state
from ..store.spill import process_spill_stats
from . import shm as shm_plane
from .base import ExecutionBackend, SuperstepInstruments, register_backend, worker_messages_counter
from .spilling import WorkerBatchSpiller

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - containers without numpy
    np = None  # type: ignore[assignment]

#: Marker tag for columnar message batches on the data queues.
_COLS = "cols"

#: Commands on the master -> worker channel.
_STEP = "step"
_STOP = "stop"

#: Tags on the worker -> master control channel.
_OK = "ok"
_FAILED = "failed"

#: Seconds between liveness checks while waiting on a queue.
_POLL_SECONDS = 0.2

#: Give a straggler this long to exit before terminating it.
_JOIN_SECONDS = 5.0

#: After noticing a dead worker, wait this long for data it may have
#: flushed into the pipe just before dying, then give up.
_DEAD_GRACE_SECONDS = 2.0


class _WorkerFailure(Exception):
    """Internal: carries a worker's exception back to the master loop."""

    def __init__(self, worker_id: int, original: BaseException, remote_traceback: str) -> None:
        super().__init__(f"worker {worker_id} failed: {original!r}")
        self.worker_id = worker_id
        self.original = original
        self.remote_traceback = remote_traceback


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
def _route_outbox(
    outbox: List[Tuple[int, Any]],
    partitioner,
    combiner: Optional[Combiner],
    columnar: bool = True,
    sender: Optional[int] = None,
) -> Tuple[Dict[int, Any], int]:
    """Group an outbox into per-destination batches, combining sender-side.

    With a combiner, each destination batch carries at most one message
    per target vertex — this happens *before* pickling, so combined
    traffic is what crosses the process boundary, exactly like the
    sender-side combining of real Pregel systems.

    Qualifying integer outboxes are shipped as columnar batches
    ``("cols", targets, values)`` — two ndarrays pickle orders of
    magnitude faster than millions of tuples — preserving the scalar
    batches' first-occurrence ordering so receivers fold identically.

    Returns ``(batches, cross)`` where ``cross`` counts the raw
    (pre-combine) outbox messages routed to a worker other than
    ``sender`` (0 when ``sender`` is None).
    """
    cross = 0
    if columnar and np is not None and len(outbox) >= COLUMNAR_MIN_BATCH and combiner_vectorizable(combiner):
        columns = columns_from_pairs(outbox)
        if columns is not None:
            targets, values = columns
            # Cross-worker accounting is charged on the *raw* outbox,
            # before combining shrinks it (matching the serial router).
            if sender is not None:
                raw_destinations = partitioner.worker_for_array(targets)
                cross = int(targets.size) - int(
                    np.count_nonzero(raw_destinations == sender)
                )
            if combiner is not None:
                combined = combine_columns(targets, values, combiner.kind)
                if combined is None:
                    columns = None  # sum could wrap: fall through to scalar
                else:
                    targets, values = combined
            if columns is not None:
                # Shipping destinations are computed on the (possibly
                # combined) targets; the raw array is only reusable when
                # combining removed nothing.
                if sender is not None and targets.size == raw_destinations.size:
                    destinations = raw_destinations
                else:
                    destinations = partitioner.worker_for_array(targets)
                batches: Dict[int, Any] = {}
                for destination in np.unique(destinations).tolist():
                    selector = destinations == destination
                    batches[destination] = (_COLS, targets[selector], values[selector])
                return batches, cross
    cross = 0
    if combiner is None:
        batches: Dict[int, List[Tuple[int, Any]]] = {}
        for target_id, message in outbox:
            destination = partitioner.worker_for(target_id)
            if sender is not None and destination != sender:
                cross += 1
            batches.setdefault(destination, []).append((target_id, message))
        return batches, cross
    combined: Dict[int, Dict[int, Any]] = {}
    for target_id, message in outbox:
        destination = partitioner.worker_for(target_id)
        if sender is not None and destination != sender:
            cross += 1
        slot = combined.setdefault(destination, {})
        if target_id in slot:
            slot[target_id] = combiner.combine(slot[target_id], message)
        else:
            slot[target_id] = message
    return {
        destination: list(slot.items()) for destination, slot in combined.items()
    }, cross


def _is_cols(batch) -> bool:
    return isinstance(batch, tuple) and len(batch) == 3 and batch[0] == _COLS


def _resolve_batch(batch, reader):
    """Materialise a shared-memory descriptor into a columnar batch.

    Queue batches (scalar lists and ``("cols", ...)`` tuples) pass
    through unchanged; ``("shmb", name, offset, count)`` descriptors
    are read out of the named arena segment.
    """
    if (
        isinstance(batch, tuple)
        and len(batch) == 4
        and batch[0] == shm_plane.SHM_BATCH
    ):
        targets, values = reader.read(batch[1], batch[2], batch[3])
        return (_COLS, targets, values)
    return batch


def _batch_pairs(batch):
    """Iterate a data-queue batch as ``(target, message)`` pairs.

    Accepts both the scalar tuple-list format and the columnar
    ``("cols", targets, values)`` format; columnar values come back as
    plain Python ints, so folding is identical either way.
    """
    if _is_cols(batch):
        return zip(batch[1].tolist(), batch[2].tolist())
    return iter(batch)


def _merge_batches(
    batches_by_sender: Dict[int, Any],
    num_workers: int,
    combiner: Optional[Combiner],
) -> Dict[int, List[Any]]:
    """Fold sender batches into a per-vertex inbox, in sender-id order.

    The fixed sender order makes the fold sequence a deterministic
    function of the job, so results match the serial backend for any
    associative combine function.

    When every non-empty batch is columnar and the combiner has an
    exact array reduction, the fold itself is vectorized: the batches
    are concatenated in sender-id order and segment-reduced, which
    preserves the scalar fold's first-occurrence key order and (for
    ``min``/``sum`` without uint64 overflow) its exact values.
    """
    ordered = [batches_by_sender.get(sender, ()) for sender in range(num_workers)]
    if np is not None and combiner_vectorizable(combiner):
        columnar_parts = []
        all_columnar = True
        for batch in ordered:
            if _is_cols(batch):
                columnar_parts.append(batch)
            elif len(batch):
                all_columnar = False
                break
        if all_columnar and columnar_parts:
            targets = np.concatenate([batch[1] for batch in columnar_parts])
            values = np.concatenate([batch[2] for batch in columnar_parts])
            if combiner is None:
                return {
                    target: messages
                    for target, messages in group_columns(targets, values)
                }
            combined = combine_columns(targets, values, combiner.kind)
            if combined is not None:
                return {
                    target: [message]
                    for target, message in zip(
                        combined[0].tolist(), combined[1].tolist()
                    )
                }
            # A sum could wrap the uint64 lane: fold exactly in Python.
    inbox: Dict[int, List[Any]] = {}
    for batch in ordered:
        for target_id, message in _batch_pairs(batch):
            if combiner is not None and target_id in inbox:
                inbox[target_id] = [combiner.combine(inbox[target_id][0], message)]
            else:
                inbox.setdefault(target_id, []).append(message)
    return inbox


def _pack_partition(vertices: List[Vertex]):
    """Pack a finished partition for the result queue.

    Partitions whose vertex class opted into ``columnar_state`` and
    whose state is uniformly small non-negative integers are shipped as
    a handful of ndarrays (IDs, values, halted flags, CSR adjacency) —
    orders of magnitude cheaper to pickle than per-object state.  Any
    vertex that does not conform drops the whole partition back to the
    plain object list, so the fast path is purely an optimisation.
    """
    if np is None or not vertices:
        return ("objs", vertices)
    cls = type(vertices[0])
    if not getattr(cls, "columnar_state", False):
        return ("objs", vertices)
    ids: List[int] = []
    values: List[int] = []
    halted: List[bool] = []
    offsets: List[int] = [0]
    edge_ids: List[int] = []
    for vertex in vertices:
        value = vertex.value
        edges = vertex.edges
        if (
            type(vertex) is not cls
            or type(vertex.vertex_id) is not int
            or type(value) is not int
            or vertex.vertex_id < 0
            or value < 0
            or type(edges) is not list
        ):
            return ("objs", vertices)
        for edge in edges:
            if type(edge) is not int or edge < 0:
                return ("objs", vertices)
        ids.append(vertex.vertex_id)
        values.append(value)
        halted.append(vertex.halted)
        edge_ids.extend(edges)
        offsets.append(len(edge_ids))
    try:
        packed = (
            "vcols",
            cls,
            np.array(ids, dtype=np.uint64),
            np.array(values, dtype=np.uint64),
            np.array(halted, dtype=bool),
            np.array(offsets, dtype=np.int64),
            np.array(edge_ids, dtype=np.uint64),
        )
    except (OverflowError, ValueError):
        return ("objs", vertices)
    return packed


def _unpack_partition(payload) -> List[Vertex]:
    """Reverse :func:`_pack_partition`, preserving vertex order."""
    if payload[0] == "objs":
        return payload[1]
    _tag, cls, ids, values, halted, offsets, edge_ids = payload
    edge_list = edge_ids.tolist()
    bounds = offsets.tolist()
    halted_list = halted.tolist()
    vertices: List[Vertex] = []
    for index, (vertex_id, value) in enumerate(zip(ids.tolist(), values.tolist())):
        vertex = cls(vertex_id, value, edge_list[bounds[index] : bounds[index + 1]])
        vertex.halted = halted_list[index]
        vertices.append(vertex)
    return vertices


def _worker_main(
    worker_id: int,
    num_workers: int,
    vertices: List[Vertex],
    combiner: Optional[Combiner],
    vertex_factory: Optional[VertexFactory],
    aggregator_template: Dict[str, Aggregator],
    num_vertices: int,
    columnar: bool,
    partitioner,
    job_name: str,
    metrics_enabled: bool,
    timeline_enabled: bool,
    profile_enabled: bool,
    budget_bytes: Optional[int],
    command_queue,
    data_queues,
    control_queue,
    result_queue,
) -> None:
    """Superstep loop of one shared-nothing worker process."""
    arena_writer = None
    arena_reader = None
    spiller = None
    sampler = None
    try:
        worker = Worker(worker_id)
        for vertex in vertices:
            worker.add_vertex(vertex)
        own_queue = data_queues[worker_id]
        arena_reader = shm_plane.ArenaReader()
        # Batches this worker sent to itself stay local (no pickling).
        local_batches: Dict[int, List[Tuple[int, Any]]] = {}
        # Batches received early for a future superstep, keyed by superstep.
        staged: Dict[int, Dict[int, List[Tuple[int, Any]]]] = {}
        # Telemetry is recorded into a registry local to this process
        # (never the fork-inherited global one — the master merges the
        # shipped deltas, so recording globally here would double-count)
        # and shipped to the master as a delta at each barrier.
        local_registry = MetricsRegistry() if metrics_enabled else None
        worker_messages = (
            worker_messages_counter(local_registry).labels(job_name, worker_id)
            if local_registry is not None
            else None
        )
        # Timeline events mirror the metric-delta transport: recorded
        # into a process-local buffer, drained at every barrier and
        # shipped to the master inside the counters dict (either
        # message plane — the control queue is plane-independent).
        local_timeline = TimelineRecorder() if timeline_enabled else None
        if local_timeline is not None:
            sampler = ResourceSampler(
                local_timeline, source=f"worker-{worker_id}"
            ).start()
        if budget_bytes is not None:
            # Each worker polices an equal share of the job budget;
            # staged future-superstep batches spill once the share is
            # exceeded.  Spill totals ride the counter dict to the
            # master at each barrier.
            spiller = WorkerBatchSpiller(
                max(1, budget_bytes // num_workers),
                worker_id,
                job_name,
                registry=local_registry,
            )
            spiller.account_partition(worker.vertices)

        while True:
            command = command_queue.get()
            if command[0] == _STOP:
                if command[1]:  # collect: ship the final partition back
                    result_queue.put(
                        (worker_id, _pack_partition(list(worker.vertices.values())))
                    )
                break
            _, superstep, previous_aggregates, trace_ctx, arena_names = command
            if arena_names is not None:
                if arena_writer is None:
                    arena_writer = shm_plane.ArenaWriter(worker_id)
                arena_writer.begin_superstep(superstep, arena_names)

            # One profile per superstep: the raw pstats table ships at
            # the barrier and the master merges it, so per-worker CPU
            # time survives the process boundary (a profiler cannot
            # straddle a fork).
            step_profiler = cProfile.Profile() if profile_enabled else None
            if step_profiler is not None:
                try:
                    step_profiler.enable()
                except (ValueError, RuntimeError):
                    step_profiler = None

            if superstep == 0:
                inbox: Dict[int, List[Any]] = {}
            else:
                expected = set(range(num_workers)) - {worker_id}
                arrived = staged.setdefault(superstep, {})
                while set(arrived) != expected:
                    for_superstep, sender, batch = own_queue.get()
                    if spiller is not None and for_superstep > superstep:
                        batch = spiller.stash(for_superstep, sender, batch)
                    staged.setdefault(for_superstep, {})[sender] = batch
                    arrived = staged.setdefault(superstep, {})
                batches = staged.pop(superstep)
                batches[worker_id] = local_batches.pop(superstep, [])
                for sender in list(batches):
                    batch = batches[sender]
                    if spiller is not None:
                        batch = spiller.resolve(superstep, sender, batch)
                    batches[sender] = _resolve_batch(batch, arena_reader)
                inbox = _merge_batches(batches, num_workers, combiner)

            aggregator_copies = {
                name: aggregator.fresh_copy()
                for name, aggregator in aggregator_template.items()
            }
            remote_span = (
                start_remote_span(f"worker-{worker_id}", trace_ctx, worker=worker_id)
                if trace_ctx is not None
                else None
            )
            outbox, counters = worker.execute_superstep(
                superstep=superstep,
                inbox=inbox,
                aggregator_copies=aggregator_copies,
                previous_aggregates=previous_aggregates,
                num_vertices=num_vertices,
                vertex_factory=vertex_factory,
            )
            span_dict = (
                remote_span.finish(
                    messages_sent=counters["messages_sent"],
                    compute_calls=counters["compute_calls"],
                )
                if remote_span is not None
                else None
            )
            if worker_messages is not None:
                worker_messages.inc(counters["messages_sent"])

            batches, cross_messages = _route_outbox(
                outbox, partitioner, combiner, columnar, sender=worker_id
            )
            counters["messages_cross"] = cross_messages
            for destination in range(num_workers):
                batch = batches.get(destination, [])
                if destination == worker_id:
                    if spiller is not None:
                        batch = spiller.stash(superstep + 1, worker_id, batch)
                    local_batches[superstep + 1] = batch
                else:
                    if arena_writer is not None and _is_cols(batch):
                        descriptor = arena_writer.try_write(batch[1], batch[2])
                        if descriptor is not None:
                            batch = descriptor
                    data_queues[destination].put((superstep + 1, worker_id, batch))
            if step_profiler is not None:
                step_profiler.disable()
                counters["profile"] = stats_state(step_profiler)
            if local_timeline is not None:
                # Guarantee at least one sample per superstep even when
                # the step finishes inside the sampling interval.
                sampler.sample_once()
                counters["timeline"] = local_timeline.drain_events()
            counters["arena_wanted"] = (
                arena_writer.wanted_bytes if arena_writer is not None else 0
            )
            if spiller is not None:
                # The factory may have grown the partition this superstep.
                spiller.account_partition(worker.vertices)
                counters["spill_stats"] = spiller.drain_stats()

            aggregator_states = {
                name: copy.dump_state() for name, copy in aggregator_copies.items()
            }
            metrics_state = (
                local_registry.drain_state() if local_registry is not None else None
            )
            control_queue.put(
                (
                    _OK,
                    worker_id,
                    counters,
                    aggregator_states,
                    worker.active_count(),
                    span_dict,
                    metrics_state,
                )
            )
    except BaseException as exc:  # noqa: BLE001 - must reach the master
        try:
            # Full round-trip check: exceptions with multi-argument
            # constructors can pickle fine but explode on unpickling
            # (BaseException reduces to cls(str(...))), which would
            # crash the master's queue reader with an opaque TypeError.
            pickle.loads(pickle.dumps(exc))
            shipped: BaseException = exc
        except Exception:
            shipped = BackendExecutionError(repr(exc))
        control_queue.put((_FAILED, worker_id, shipped, traceback.format_exc()))
    finally:
        if sampler is not None:
            sampler.stop()
        # Workers only *attach* to arena segments — closing the local
        # mappings is all that is required here; the master owns the
        # unlink.
        if arena_writer is not None:
            arena_writer.close()
        if arena_reader is not None:
            arena_reader.close()
        # Undelivered final-superstep batches are intentionally discarded;
        # don't let their feeder threads block process exit.
        if spiller is not None:
            spiller.close()
        for data_queue in data_queues:
            data_queue.cancel_join_thread()


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------
@register_backend
class MultiprocessBackend(ExecutionBackend):
    """Real parallel execution across shared-nothing worker processes."""

    name = "multiprocess"

    def __init__(
        self,
        num_workers: int = 4,
        start_method: Optional[str] = None,
        columnar_messages: bool = True,
        partitioner: str = "hash",
        message_plane: str = "shm",
        shm_arena_bytes: int = shm_plane.DEFAULT_ARENA_BYTES,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        super().__init__(
            num_workers,
            columnar_messages=columnar_messages,
            partitioner=partitioner,
            message_plane=message_plane,
            memory_budget_mb=memory_budget_mb,
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.shm_arena_bytes = shm_arena_bytes
        self._context = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, job: PregelJob) -> JobResult:
        # Worker processes live for exactly one job: forking at run()
        # time is what lets children inherit the job's vertices,
        # combiner and vertex factory without pickling (lambdas and
        # closures included).  A persistent pool would have to ship
        # job state through queues instead, restricting jobs to
        # picklable state — revisit if per-job start-up cost ever
        # dominates a workload that can accept that restriction.
        initial_vertices = list(job.vertices)
        partitioner = self.job_partitioner(initial_vertices)
        partitions: List[List[Vertex]] = [[] for _ in range(self.num_workers)]
        for vertex in initial_vertices:
            partitions[partitioner.worker_for(vertex.vertex_id)].append(vertex)
        num_vertices = sum(len(partition) for partition in partitions)
        if num_vertices == 0:
            raise InvalidJobError(f"job {job.name!r} has no vertices")

        registry = AggregatorRegistry()
        for aggregator in job.aggregators:
            registry.register(aggregator)
        aggregator_template = {
            aggregator.name: aggregator.fresh_copy() for aggregator in job.aggregators
        }

        context = self._context
        command_queues = [context.Queue() for _ in range(self.num_workers)]
        data_queues = [context.Queue() for _ in range(self.num_workers)]
        control_queue = context.Queue()
        result_queue = context.Queue()

        # The shared-memory plane needs the columnar path (descriptors
        # only describe array batches) and a host whose /dev/shm works;
        # anything else degrades to the pickled queue plane, which is
        # bit-identical, just slower.
        arena_pool = None
        if (
            self.message_plane == "shm"
            and self.columnar_messages
            and shm_plane.shm_plane_usable()
        ):
            try:
                arena_pool = shm_plane.ArenaPool(
                    self.num_workers, self.shm_arena_bytes
                )
                arena_pool.create_all()
            except Exception:
                if arena_pool is not None:
                    arena_pool.unlink_all()
                arena_pool = None

        processes = [
            context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.num_workers,
                    partitions[worker_id],
                    job.combiner,
                    job.vertex_factory,
                    aggregator_template,
                    num_vertices,
                    self.columnar_messages,
                    partitioner,
                    job.name,
                    get_registry().enabled,
                    get_timeline().enabled,
                    get_profiler().enabled,
                    self.memory_budget_bytes,
                    command_queues[worker_id],
                    data_queues,
                    control_queue,
                    result_queue,
                ),
                daemon=True,
                name=f"pregel-worker-{worker_id}",
            )
            for worker_id in range(self.num_workers)
        ]
        for process in processes:
            process.start()

        metrics = JobMetrics(job_name=job.name, num_workers=self.num_workers)
        aggregate_history: List[Dict[str, Any]] = []
        instruments = SuperstepInstruments(job.name)
        metrics_registry = get_registry()
        timeline = get_timeline()
        profiler = get_profiler()
        active = sum(
            1
            for partition in partitions
            for vertex in partition
            if not vertex.halted
        )
        pending = False
        superstep = 0

        try:
            while True:
                if superstep >= job.max_supersteps:
                    raise SuperstepLimitExceededError(job.max_supersteps)
                if active == 0 and not pending:
                    break

                previous_aggregates = registry.previous_values()
                step_started = time.perf_counter()
                with span(f"superstep-{superstep}") as step_span:
                    trace_ctx = remote_context()
                    for worker_id, command_queue in enumerate(command_queues):
                        command_queue.put(
                            (
                                _STEP,
                                superstep,
                                previous_aggregates,
                                trace_ctx,
                                arena_pool.names(worker_id)
                                if arena_pool is not None
                                else None,
                            )
                        )

                    reports = self._collect_control(control_queue, processes)
                    step = SuperstepMetrics(superstep=superstep)
                    active = 0
                    messages_in_flight = 0
                    for worker_id in range(self.num_workers):
                        (
                            counters,
                            aggregator_states,
                            active_count,
                            span_dict,
                            metrics_state,
                        ) = reports[worker_id]
                        registry.merge_states(aggregator_states)
                        if span_dict is not None:
                            step_span.add_child(span_dict)
                        if metrics_state is not None:
                            metrics_registry.merge_state(metrics_state)
                        timeline.merge_events(counters.pop("timeline", None))
                        profiler.merge_state(counters.pop("profile", None))
                        spill_delta = counters.get("spill_stats")
                        if spill_delta is not None:
                            process_spill_stats().merge(spill_delta)
                        step.compute_calls += counters["compute_calls"]
                        step.compute_ops += counters["compute_ops"]
                        step.messages_sent += counters["messages_sent"]
                        step.bytes_sent += counters["bytes_sent"]
                        step.cross_worker_messages += counters.get("messages_cross", 0)
                        if arena_pool is not None:
                            arena_pool.request(
                                worker_id, counters.get("arena_wanted", 0)
                            )
                        step.worker_compute_ops.append(counters["compute_ops"])
                        step.worker_messages_sent.append(counters["messages_sent"])
                        step.worker_bytes_sent.append(counters["bytes_sent"])
                        step.worker_messages_received.append(counters["messages_received"])
                        step.worker_bytes_received.append(counters["bytes_received"])
                        active += active_count
                        messages_in_flight += counters["messages_sent"]
                    step.active_vertices = active
                    step_span.set(
                        messages_sent=step.messages_sent,
                        bytes_sent=step.bytes_sent,
                        active_vertices=step.active_vertices,
                    )
                instruments.record_superstep(
                    step, time.perf_counter() - step_started
                )
                metrics.add(step)
                if arena_pool is not None:
                    # The buffers read during this superstep are idle
                    # until superstep + 1 starts writing them: the only
                    # window where an undersized buffer may be replaced.
                    arena_pool.grow_idle(superstep % 2)

                snapshot = registry.finish_superstep()
                aggregate_history.append(snapshot)
                pending = messages_in_flight > 0
                superstep += 1

                if job.halt_condition is not None and job.halt_condition(snapshot):
                    break

            vertices = self._collect_vertices(command_queues, result_queue, processes)
        except _WorkerFailure as failure:
            self._abort(
                command_queues,
                [control_queue, result_queue] + data_queues,
                processes,
                arena_pool,
            )
            original = failure.original
            original.remote_traceback = failure.remote_traceback  # type: ignore[attr-defined]
            raise original from None
        except BaseException:
            self._abort(
                command_queues,
                [control_queue, result_queue] + data_queues,
                processes,
                arena_pool,
            )
            raise
        self._shutdown(
            command_queues,
            [control_queue, result_queue] + data_queues,
            processes,
            arena_pool,
        )
        return JobResult(
            job_name=job.name,
            vertices=vertices,
            metrics=metrics,
            aggregates=aggregate_history,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _get_checked(self, source_queue, processes, waiting_on):
        """Blocking get that notices dead workers instead of hanging.

        ``waiting_on`` is the set of worker ids whose data has not been
        seen yet.  A worker found dead while we still expect data from
        it gets a short grace period (its queue feeder may have flushed
        just before exit), after which the backend gives up loudly.
        """
        deadline = None
        while True:
            try:
                return source_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                dead = [w for w in waiting_on if not processes[w].is_alive()]
                if not dead:
                    deadline = None
                    continue
                now = time.monotonic()
                if deadline is None:
                    deadline = now + _DEAD_GRACE_SECONDS
                elif now > deadline:
                    exit_codes = {w: processes[w].exitcode for w in dead}
                    raise BackendExecutionError(
                        f"worker process(es) {sorted(dead)} exited "
                        f"(exit codes {exit_codes}) without delivering expected data"
                    ) from None

    def _collect_control(self, control_queue, processes) -> Dict[int, tuple]:
        """One barrier: gather every worker's end-of-superstep report."""
        reports: Dict[int, tuple] = {}
        while len(reports) < self.num_workers:
            waiting_on = set(range(self.num_workers)) - set(reports)
            message = self._get_checked(control_queue, processes, waiting_on)
            tag, worker_id = message[0], message[1]
            if tag == _FAILED:
                raise _WorkerFailure(worker_id, message[2], message[3])
            reports[worker_id] = message[2:]
        return reports

    def _collect_vertices(
        self, command_queues, result_queue, processes
    ) -> Dict[int, Vertex]:
        """Stop all workers and reassemble the vertex map in worker order."""
        for command_queue in command_queues:
            command_queue.put((_STOP, True))
        collected: Dict[int, List[Vertex]] = {}
        while len(collected) < self.num_workers:
            waiting_on = set(range(self.num_workers)) - set(collected)
            worker_id, payload = self._get_checked(
                result_queue, processes, waiting_on
            )
            collected[worker_id] = _unpack_partition(payload)
        # Worker-id order matches how the serial backend concatenates
        # partitions, so downstream iteration order is identical.
        vertices: Dict[int, Vertex] = {}
        for worker_id in range(self.num_workers):
            for vertex in collected[worker_id]:
                vertices[vertex.vertex_id] = vertex
        return vertices

    def _abort(self, command_queues, drain_queues, processes, arena_pool=None) -> None:
        """Best-effort stop after an error: never raise from here."""
        for command_queue in command_queues:
            try:
                command_queue.put_nowait((_STOP, False))
            except Exception:
                pass
        self._shutdown(command_queues, drain_queues, processes, arena_pool)

    def _shutdown(self, command_queues, drain_queues, processes, arena_pool=None) -> None:
        for source_queue in drain_queues:
            while True:
                try:
                    source_queue.get_nowait()
                except Exception:
                    break
        for process in processes:
            process.join(timeout=_JOIN_SECONDS)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_SECONDS)
        for command_queue in command_queues:
            command_queue.cancel_join_thread()
        for source_queue in drain_queues:
            source_queue.cancel_join_thread()
        # Unlink the arena segments last: every worker process has been
        # joined or terminated by now, so no attachment can outlive
        # this (and a worker that died mid-superstep could not have
        # unlinked anything itself — workers never own segments).
        if arena_pool is not None:
            arena_pool.unlink_all()
