"""The execution-backend interface behind the Pregel superstep loop.

The engine historically *simulated* a Pregel cluster by looping over
:class:`~repro.pregel.worker.Worker` objects sequentially.  This module
abstracts that loop behind :class:`ExecutionBackend` so the same job
can run on different runtimes:

* :class:`~repro.runtime.serial.SerialBackend` — the original
  in-process simulation with exact, deterministic counters (used for
  reproducing the paper's Tables 2-5 and Figure 12);
* :class:`~repro.runtime.multiprocess.MultiprocessBackend` —
  shared-nothing worker processes exchanging pickled message batches,
  for real wall-clock parallelism on multi-core hosts.

Backends register themselves in a name registry so that configuration
layers (``AssemblyConfig(backend="multiprocess")``, the bench harness,
the CLI) can select one by name without importing its module directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterable, List, Type, Union

from ..errors import InvalidJobError, UnknownBackendError
from ..pregel.partitioner import HashPartitioner
from ..pregel.vertex import Vertex
from ..pregel.worker import Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..pregel.engine import JobResult, PregelJob


class ExecutionBackend(ABC):
    """Runs one Pregel job to termination on ``num_workers`` workers.

    A backend owns partitioning (all backends use the same
    :class:`~repro.pregel.partitioner.HashPartitioner` so that per-worker
    load and message routing are identical regardless of runtime) and
    the BSP loop itself.  Implementations must preserve the engine's
    observable semantics: superstep counts, aggregate histories, the
    per-superstep metrics, and the final vertex states must not depend
    on which backend executed the job.
    """

    #: Registry key; subclasses override and register via :func:`register_backend`.
    name: str = "abstract"

    #: Whether qualifying integer-message jobs use the columnar batch
    #: path of :mod:`repro.pregel.message` (bit-identical results; the
    #: flag exists so parity tests can pin the scalar reference path).
    columnar_messages: bool = True

    def __init__(self, num_workers: int = 4, columnar_messages: bool = True) -> None:
        if num_workers <= 0:
            raise InvalidJobError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.columnar_messages = bool(columnar_messages)
        self.partitioner = HashPartitioner(num_workers)

    @abstractmethod
    def run(self, job: "PregelJob") -> "JobResult":
        """Execute ``job`` until global termination and return the result."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def partition_into_workers(self, vertices: Iterable[Vertex]) -> List[Worker]:
        """Assign vertices to per-worker partitions by hashed vertex ID."""
        workers = [Worker(worker_id) for worker_id in range(self.num_workers)]
        for vertex in vertices:
            workers[self.partitioner.worker_for(vertex.vertex_id)].add_vertex(vertex)
        return workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_workers={self.num_workers})"


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Class decorator adding ``cls`` to the name registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"backend class {cls.__name__} must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def ensure_backend(name: str) -> str:
    """Validate a backend name, raising :class:`UnknownBackendError`.

    Shared by every configuration layer that accepts a backend string
    (``AssemblyConfig``, the baselines, the CLI) so the error message
    and the set of accepted names never drift apart.
    """
    if name not in _REGISTRY:
        raise UnknownBackendError(str(name), available_backends())
    return name


def create_backend(
    backend: Union[str, ExecutionBackend],
    num_workers: int = 4,
    **kwargs: object,
) -> ExecutionBackend:
    """Instantiate a backend by name (or pass an instance through).

    ``kwargs`` are forwarded to the backend constructor (e.g.
    ``start_method`` for the multiprocess backend).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        backend_class = _REGISTRY[backend]
    except KeyError:
        raise UnknownBackendError(str(backend), available_backends()) from None
    return backend_class(num_workers=num_workers, **kwargs)
