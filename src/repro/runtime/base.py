"""The execution-backend interface behind the Pregel superstep loop.

The engine historically *simulated* a Pregel cluster by looping over
:class:`~repro.pregel.worker.Worker` objects sequentially.  This module
abstracts that loop behind :class:`ExecutionBackend` so the same job
can run on different runtimes:

* :class:`~repro.runtime.serial.SerialBackend` — the original
  in-process simulation with exact, deterministic counters (used for
  reproducing the paper's Tables 2-5 and Figure 12);
* :class:`~repro.runtime.multiprocess.MultiprocessBackend` —
  shared-nothing worker processes exchanging pickled message batches,
  for real wall-clock parallelism on multi-core hosts.

Backends register themselves in a name registry so that configuration
layers (``AssemblyConfig(backend="multiprocess")``, the bench harness,
the CLI) can select one by name without importing its module directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterable, List, Type, Union

from ..errors import InvalidJobError, UnknownBackendError
from ..pregel.partitioner import HashPartitioner, ensure_partitioner, make_partitioner
from ..pregel.vertex import Vertex
from ..pregel.worker import Worker
from ..telemetry import get_registry, get_timeline

#: Message-plane names accepted by the multiprocess backend ("shm"
#: falls back to "queue" when shared memory is unusable; the serial
#: backend has no process boundary, so the flag is accepted for config
#: uniformity and has no effect there).
MESSAGE_PLANES = ("shm", "queue")


def ensure_message_plane(name: str) -> str:
    """Validate a message-plane name (shared by every config layer)."""
    if name not in MESSAGE_PLANES:
        raise ValueError(
            f"unknown message plane {name!r}; choose from {', '.join(MESSAGE_PLANES)}"
        )
    return name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..pregel.engine import JobResult, PregelJob
    from ..pregel.metrics import SuperstepMetrics


# ----------------------------------------------------------------------
# telemetry instruments shared by every backend
# ----------------------------------------------------------------------
def worker_messages_counter(registry):
    """The per-worker message counter family, declared identically
    everywhere it is touched — master-side by the serial backend,
    child-side by multiprocess worker processes — so cross-process
    merges land in the same series and per-worker sums equal the
    job-level totals exactly.
    """
    return registry.counter(
        "repro_pregel_worker_messages_total",
        "Messages sent by each Pregel worker partition.",
        labelnames=("job", "worker"),
    )


class SuperstepInstruments:
    """Job-scoped handles on the Pregel metric families.

    Instantiated once per :meth:`ExecutionBackend.run` so the hot loop
    pays label resolution once, not per superstep.  All operations are
    no-ops under the default :class:`~repro.telemetry.metrics.NullRegistry`.
    """

    def __init__(self, job_name: str) -> None:
        registry = get_registry()
        self.job_name = job_name
        labels = ("job",)
        self._supersteps = registry.counter(
            "repro_pregel_supersteps_total",
            "Supersteps executed, by job.",
            labelnames=labels,
        ).labels(job_name)
        self._messages = registry.counter(
            "repro_pregel_messages_total",
            "Messages sent across all supersteps, by job (pre-combine).",
            labelnames=labels,
        ).labels(job_name)
        self._bytes = registry.counter(
            "repro_pregel_message_bytes_total",
            "Message bytes sent across all supersteps, by job.",
            labelnames=labels,
        ).labels(job_name)
        self._delivered = registry.counter(
            "repro_pregel_messages_delivered_total",
            "Messages delivered to vertices after combining, by job "
            "(delivered/sent is the combine ratio).",
            labelnames=labels,
        ).labels(job_name)
        self._cross = registry.counter(
            "repro_pregel_cross_worker_messages_total",
            "Raw messages routed to a different worker than their "
            "sender, by job (the traffic that crosses a process or "
            "network boundary; partitioner locality shrinks it).",
            labelnames=labels,
        ).labels(job_name)
        self._active = registry.gauge(
            "repro_pregel_active_vertices",
            "Active vertices after the most recent superstep, by job.",
            labelnames=labels,
        ).labels(job_name)
        self._seconds = registry.histogram(
            "repro_pregel_superstep_seconds",
            "Wall-clock seconds per superstep, by job.",
            labelnames=labels,
        ).labels(job_name)
        self._worker_messages = worker_messages_counter(registry)
        # Timeline events are recorded at the same barrier point on
        # every backend, so serial and multiprocess runs of the same
        # job emit identical superstep event sequences.  Spill totals
        # are reported relative to job start (the process counters are
        # cumulative).
        self._timeline = get_timeline()
        if self._timeline.enabled:
            from ..store.spill import process_spill_stats

            self._spill_base = process_spill_stats().snapshot()

    def record_superstep(self, step: "SuperstepMetrics", elapsed_seconds: float) -> None:
        """Charge one finished superstep's counters to the registry."""
        self._supersteps.inc()
        self._messages.inc(step.messages_sent)
        self._bytes.inc(step.bytes_sent)
        self._cross.inc(step.cross_worker_messages)
        self._delivered.inc(sum(step.worker_messages_received))
        self._active.set(step.active_vertices)
        self._seconds.observe(elapsed_seconds)
        if self._timeline.enabled:
            from ..store.spill import process_spill_stats

            spill = process_spill_stats().delta_since(self._spill_base)
            self._timeline.record(
                "superstep",
                job=self.job_name,
                superstep=step.superstep,
                active_vertices=step.active_vertices,
                messages_sent=step.messages_sent,
                bytes_sent=step.bytes_sent,
                cross_worker_messages=step.cross_worker_messages,
                messages_delivered=sum(step.worker_messages_received),
                elapsed_seconds=round(elapsed_seconds, 6),
                spill_events=spill["spill_events"],
                spill_bytes=spill["spill_bytes"],
                ledger_peak_bytes=spill["ledger_peak_bytes"],
            )

    def record_worker(self, worker_id: int, counters: Dict[str, int]) -> None:
        """Charge one worker's share of a superstep (serial backend —
        the multiprocess backend's children record this themselves)."""
        self._worker_messages.labels(self.job_name, worker_id).inc(
            counters["messages_sent"]
        )


class ExecutionBackend(ABC):
    """Runs one Pregel job to termination on ``num_workers`` workers.

    A backend owns partitioning (all backends build the partitioner
    from the same named strategy — ``"hash"`` by default — so that
    per-worker load and message routing are identical regardless of
    runtime) and the BSP loop itself.  Implementations must preserve
    the engine's observable semantics: superstep counts, aggregate
    histories, the per-superstep metrics, and the final vertex states
    must not depend on which backend executed the job.
    """

    #: Registry key; subclasses override and register via :func:`register_backend`.
    name: str = "abstract"

    #: Whether qualifying integer-message jobs use the columnar batch
    #: path of :mod:`repro.pregel.message` (bit-identical results; the
    #: flag exists so parity tests can pin the scalar reference path).
    columnar_messages: bool = True

    def __init__(
        self,
        num_workers: int = 4,
        columnar_messages: bool = True,
        partitioner: str = "hash",
        message_plane: str = "shm",
        memory_budget_mb: "Union[int, float, None]" = None,
    ) -> None:
        if num_workers <= 0:
            raise InvalidJobError(f"num_workers must be positive, got {num_workers}")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise InvalidJobError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        self.num_workers = num_workers
        self.columnar_messages = bool(columnar_messages)
        self.partitioner_name = ensure_partitioner(partitioner)
        self.message_plane = ensure_message_plane(message_plane)
        self.partitioner = make_partitioner(partitioner, num_workers)
        self.memory_budget_mb = memory_budget_mb
        #: Soft cap on live bytes; None disables the spill plane entirely.
        self.memory_budget_bytes = (
            None if memory_budget_mb is None else int(memory_budget_mb * 1024 * 1024)
        )

    @abstractmethod
    def run(self, job: "PregelJob") -> "JobResult":
        """Execute ``job`` until global termination and return the result."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def job_partitioner(self, vertices: Iterable[Vertex]):
        """The partitioner instance to use for one job.

        Range partitioning calibrates its ID-space width to the job's
        initial vertex IDs (a deterministic function of the job, so
        every backend computes the same calibration); hash partitioning
        returns the shared instance unchanged.
        """
        return self.partitioner.for_job(vertex.vertex_id for vertex in vertices)

    def partition_into_workers(
        self, vertices: Iterable[Vertex], partitioner=None
    ) -> List[Worker]:
        """Assign vertices to per-worker partitions by partitioned vertex ID."""
        partitioner = partitioner or self.partitioner
        workers = [Worker(worker_id) for worker_id in range(self.num_workers)]
        for vertex in vertices:
            workers[partitioner.worker_for(vertex.vertex_id)].add_vertex(vertex)
        return workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_workers={self.num_workers})"


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Class decorator adding ``cls`` to the name registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"backend class {cls.__name__} must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def ensure_backend(name: str) -> str:
    """Validate a backend name, raising :class:`UnknownBackendError`.

    Shared by every configuration layer that accepts a backend string
    (``AssemblyConfig``, the baselines, the CLI) so the error message
    and the set of accepted names never drift apart.
    """
    if name not in _REGISTRY:
        raise UnknownBackendError(str(name), available_backends())
    return name


def create_backend(
    backend: Union[str, ExecutionBackend],
    num_workers: int = 4,
    **kwargs: object,
) -> ExecutionBackend:
    """Instantiate a backend by name (or pass an instance through).

    ``kwargs`` are forwarded to the backend constructor (e.g.
    ``start_method`` for the multiprocess backend).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        backend_class = _REGISTRY[backend]
    except KeyError:
        raise UnknownBackendError(str(backend), available_backends()) from None
    return backend_class(num_workers=num_workers, **kwargs)
