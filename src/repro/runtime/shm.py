"""Shared-memory message arenas for the multiprocess backend.

The multiprocess backend's original data plane pickles every message
batch into a ``multiprocessing.Queue`` — for columnar batches that
means copying megabytes of ndarray payload through a pipe per
superstep.  This module provides the zero-copy alternative: the master
creates one double-buffered *arena* (a ``multiprocessing.shared_memory``
segment pair) per worker, workers write their outgoing columnar batches
directly into their own arena, and only a tiny ``(name, offset, count)``
descriptor crosses the queue.  Receivers attach the named segment once
and read the arrays in place.

Why the double buffer works
---------------------------
Messages produced during superstep ``s`` are delivered at superstep
``s + 1``; a batch for delivery superstep ``d`` lives in buffer
``d % 2`` of its sender's arena.  During superstep ``s`` a worker
*writes* its buffer ``(s + 1) % 2`` and *reads* other workers' buffers
``s % 2``.  The BSP barrier at the end of each superstep guarantees
every read of a buffer finishes before that buffer is rewritten two
supersteps later, so two buffers per worker suffice and no segment is
ever reallocated while a reader may touch it.

Lifecycle and crash-safety
--------------------------
The *master* process owns every segment: it creates them before the
first superstep, reallocates a just-drained buffer at a barrier when a
worker requested more room (the grow path), and closes + unlinks all of
them in its shutdown/abort paths — including the path where a worker
died mid-superstep, so a killed worker can never leak ``/dev/shm``
segments (workers only ever *attach*).  Segment names embed the
master's PID so an outside supervisor (the job service) can sweep the
segments of a master that was itself SIGKILLed; the interpreter's
``resource_tracker`` remains the final safety net behind both.

Python 3.12 and earlier register attached segments with the resource
tracker as if the attaching process owned them, which triggers spurious
unlink attempts and warnings at worker exit; :func:`attach` therefore
unregisters the segment right after attaching.
"""

from __future__ import annotations

import glob
import os
import secrets
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - containers without numpy
    np = None  # type: ignore[assignment]

try:  # pragma: no cover - platforms without shared memory support
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: Prefix for every arena segment.  It deliberately keeps the standard
#: ``psm_`` prefix so generic ``/dev/shm/psm_*`` leak checks see our
#: segments, and appends ``repro_<master-pid>`` so a supervisor can
#: sweep the segments of one dead master precisely.
_NAME_PREFIX = "psm_repro_"

#: Default size of each arena buffer.  Small enough that idle jobs cost
#: ~2 MiB per worker, big enough that most supersteps fit; the grow
#: protocol doubles a buffer that overflowed (overflow batches fall
#: back to the pickled queue path, so growth is a performance matter,
#: not a correctness one).
DEFAULT_ARENA_BYTES = 1 << 20

#: Tag marking a shared-memory batch descriptor on the data queues.
SHM_BATCH = "shmb"


def segment_name(master_pid: int, token: str, worker: int, buf: int, gen: int) -> str:
    return f"{_NAME_PREFIX}{master_pid}_{token}_{worker}_{buf}_g{gen}"


def attach(name: str):
    """Attach an existing segment without adopting cleanup ownership.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker as if the attaching process owned it (fixed only in Python
    3.13's ``track=False``).  Under ``fork`` the children share the
    master's tracker, so an attach-side registration followed by any
    unregister makes the master's own ``unlink()`` unregister fail
    noisily.  Suppressing registration for the duration of the attach
    keeps exactly one owner — the master — in the tracker's books.
    (Attaches happen on the worker's single control thread, so the
    brief monkeypatch cannot race another registration.)
    """
    try:  # pragma: no cover - tracker layout is version-dependent
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
    except Exception:
        return _shared_memory.SharedMemory(name=name)
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def shm_plane_usable() -> bool:
    """True when the shared-memory plane can actually be used here.

    Consults the fault plane first (``shm_alloc_fail`` simulates a host
    where ``/dev/shm`` allocation fails, forcing the queue fallback),
    then probes a real allocate/close/unlink round trip.
    """
    if _shared_memory is None or np is None:
        return False
    try:
        from ..service.faults import FaultPlan

        if FaultPlan.from_env().shm_alloc_fail():
            return False
    except Exception:  # pragma: no cover - fault plane must never break runs
        pass
    try:
        probe = _shared_memory.SharedMemory(create=True, size=64)
    except Exception:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:  # pragma: no cover - best-effort cleanup of the probe
        pass
    return True


def sweep_dead_masters() -> List[str]:
    """Remove arena segments of every master that is no longer alive.

    Covers the gap :func:`sweep_master_segments` cannot: a service (and
    its worker processes — each the Pregel *master* of the backend it
    runs) SIGKILLed wholesale leaves segments whose owners nobody ever
    *observed* dying.  A restarted service calls this once at worker
    pool start-up; segments whose embedded master PID is dead can never
    be unlinked by their owner, so removing them is always safe, while
    a live master's segments are never touched.
    """
    removed: List[str] = []
    for path in glob.glob(f"/dev/shm/{_NAME_PREFIX}*"):
        name = os.path.basename(path)
        try:
            pid = int(name[len(_NAME_PREFIX):].split("_", 1)[0])
        except ValueError:  # pragma: no cover - foreign name under our prefix
            continue
        try:
            os.kill(pid, 0)
            continue  # the owning master is alive; its segment, its call
        except ProcessLookupError:
            pass  # dead owner: definitely orphaned
        except OSError:  # pragma: no cover - e.g. EPERM: someone else's pid
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        removed.append(name)
    return removed


def sweep_master_segments(master_pid: int) -> List[str]:
    """Remove arena segments left by a dead master process.

    Used by the job-service supervisor after reclaiming a SIGKILLed
    worker process (which is the Pregel *master* of any backend it was
    running): masters unlink their segments on every orderly or
    exception exit, so anything still present under this PID is a leak.
    Returns the removed segment names (for logs/tests).
    """
    removed: List[str] = []
    pattern = f"/dev/shm/{_NAME_PREFIX}{master_pid}_*"
    for path in glob.glob(pattern):
        try:
            os.unlink(path)
        except OSError:
            continue
        removed.append(os.path.basename(path))
    return removed


class ArenaPool:
    """Master-side owner of every worker's double-buffered arena."""

    def __init__(self, num_workers: int, arena_bytes: int = DEFAULT_ARENA_BYTES) -> None:
        self.num_workers = num_workers
        self.arena_bytes = max(4096, int(arena_bytes))
        self._token = secrets.token_hex(4)
        self._pid = os.getpid()
        # segments[worker][buf] -> (name, SharedMemory, size)
        self._segments: List[List[Tuple[str, object, int]]] = []
        self._gen = 0
        # Sticky per-worker byte request: the high-water mark of arena
        # space a worker reported needing; both buffers are grown to it
        # (each at the barrier where it is idle).
        self._requested: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _create(self, worker: int, buf: int, size: int):
        self._gen += 1
        name = segment_name(self._pid, self._token, worker, buf, self._gen)
        segment = _shared_memory.SharedMemory(name=name, create=True, size=size)
        return name, segment, size

    def create_all(self) -> None:
        self._segments = [
            [self._create(worker, buf, self.arena_bytes) for buf in (0, 1)]
            for worker in range(self.num_workers)
        ]

    def names(self, worker: int) -> Tuple[str, str]:
        """The (buffer 0, buffer 1) segment names for ``worker``."""
        return (self._segments[worker][0][0], self._segments[worker][1][0])

    # ------------------------------------------------------------------
    # grow protocol
    # ------------------------------------------------------------------
    def request(self, worker: int, wanted_bytes: int) -> None:
        """Record a worker's end-of-superstep arena space request."""
        if wanted_bytes > self._requested.get(worker, 0):
            self._requested[worker] = int(wanted_bytes)

    def grow_idle(self, idle_buf: int) -> None:
        """Reallocate undersized idle buffers at a superstep barrier.

        ``idle_buf`` is the buffer parity that was *read* during the
        superstep that just reached its barrier: every consumer is past
        it and its next writer has not started, so replacing it is safe.
        """
        for worker, wanted in self._requested.items():
            name, segment, size = self._segments[worker][idle_buf]
            if wanted <= size:
                continue
            new_size = size
            while new_size < wanted:
                new_size *= 2
            try:
                replacement = self._create(worker, idle_buf, new_size)
            except Exception:
                continue  # out of /dev/shm: keep the old buffer, queues absorb overflow
            self._segments[worker][idle_buf] = replacement
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - already-gone segment
                pass

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def unlink_all(self) -> None:
        """Close and unlink every segment.  Idempotent, never raises."""
        segments, self._segments = self._segments, []
        for per_worker in segments:
            for _name, segment, _size in per_worker:
                try:
                    segment.close()
                except Exception:
                    pass
                try:
                    segment.unlink()
                except Exception:
                    pass


class ArenaWriter:
    """Worker-side sequential writer into this worker's own arena.

    One writer instance manages both buffers; :meth:`begin_superstep`
    (re)attaches whichever segment names the master announced in the
    step command and resets the write cursor of the buffer this
    superstep writes.
    """

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self._names: List[Optional[str]] = [None, None]
        self._segments: List[Optional[object]] = [None, None]
        self._offset = 0
        self._active: Optional[int] = None
        # Bytes this superstep wanted in total (written + overflowed);
        # reported to the master so it can grow the arena.
        self.wanted_bytes = 0

    def begin_superstep(self, superstep: int, names: Tuple[str, str]) -> None:
        for buf in (0, 1):
            if self._names[buf] != names[buf]:
                old = self._segments[buf]
                if old is not None:
                    try:
                        old.close()
                    except Exception:  # pragma: no cover
                        pass
                self._segments[buf] = attach(names[buf])
                self._names[buf] = names[buf]
        # Superstep s produces messages delivered at s + 1.
        self._active = (superstep + 1) % 2
        self._offset = 0
        self.wanted_bytes = 0

    def try_write(self, targets, values) -> Optional[Tuple[str, str, int, int]]:
        """Copy a columnar batch into the arena; descriptor or None.

        The batch layout is ``count`` uint64 targets followed by
        ``count`` uint64 values at ``offset``.  Returns ``None`` (caller
        falls back to the pickled queue path) when the batch does not
        fit; the bytes are still charged to ``wanted_bytes`` so the
        master grows the arena for later supersteps.
        """
        count = int(targets.size)
        need = 16 * count
        self.wanted_bytes += need
        segment = self._segments[self._active] if self._active is not None else None
        if segment is None:
            return None
        if self._offset + need > segment.size:
            return None
        offset = self._offset
        view = np.frombuffer(segment.buf, dtype=np.uint64, count=2 * count, offset=offset)
        view[:count] = targets
        view[count:] = values
        del view
        self._offset = offset + need
        return (SHM_BATCH, self._names[self._active], offset, count)

    def close(self) -> None:
        for buf in (0, 1):
            segment = self._segments[buf]
            if segment is not None:
                try:
                    segment.close()
                except Exception:  # pragma: no cover
                    pass
            self._segments[buf] = None
            self._names[buf] = None


class ArenaReader:
    """Worker-side cache of attachments to *other* workers' arenas."""

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}

    def read(self, name: str, offset: int, count: int):
        """Materialise a descriptor's (targets, values) arrays.

        The arrays are copied out of the segment: the inbox may outlive
        the buffer's reuse window, and holding views would pin the
        ``memoryview`` export and break ``close()``.
        """
        segment = self._segments.get(name)
        if segment is None:
            segment = attach(name)
            self._segments[name] = segment
        view = np.frombuffer(segment.buf, dtype=np.uint64, count=2 * count, offset=offset)
        targets = view[:count].copy()
        values = view[count:].copy()
        del view
        return targets, values

    def close(self) -> None:
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover
                pass
