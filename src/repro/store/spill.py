"""Spilling objects to a content store, and counting every byte of it.

:class:`SpillManager` is the mechanism half of the out-of-core plane
(the policy half is :class:`~repro.store.ledger.MemoryLedger`): given a
name and a picklable object it serializes the object into a
:class:`~repro.store.content.ContentStore` blob, pins it, and hands
back the memory; :meth:`~SpillManager.load` reverses the trip.  The
content addressing means identical spilled payloads — empty inboxes,
repeated batches — share one file.

Observability is double-booked on purpose:

* telemetry counters ``repro_spill_events_total`` /
  ``repro_spill_bytes_total`` (labeled ``direction=spill|load``) and a
  ``spill:write`` / ``spill:load`` span per trip, for scrape/trace
  consumers when a real registry is installed;
* a process-wide :class:`SpillStats` (:func:`process_spill_stats`)
  that counts unconditionally, so the CLI's ``--metrics-json`` can
  report spill activity without enabling the telemetry plane, and the
  multiprocess master can fold worker-side deltas into one total.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from shutil import rmtree
from typing import Any, Dict, Optional, Set, Union

from ..telemetry import span
from ..telemetry.metrics import get_registry
from .content import ContentStore


@dataclass
class SpillStats:
    """Monotonic spill/load totals, safe to update from any thread."""

    spill_events: int = 0
    spill_bytes: int = 0
    load_events: int = 0
    load_bytes: int = 0
    ledger_peak_bytes: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_spill(self, nbytes: int) -> None:
        with self._lock:
            self.spill_events += 1
            self.spill_bytes += nbytes

    def record_load(self, nbytes: int) -> None:
        with self._lock:
            self.load_events += 1
            self.load_bytes += nbytes

    def record_ledger_peak(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self.ledger_peak_bytes:
                self.ledger_peak_bytes = nbytes

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold another process's counter deltas into these totals."""
        with self._lock:
            self.spill_events += int(delta.get("spill_events", 0))
            self.spill_bytes += int(delta.get("spill_bytes", 0))
            self.load_events += int(delta.get("load_events", 0))
            self.load_bytes += int(delta.get("load_bytes", 0))
            peak = int(delta.get("ledger_peak_bytes", 0))
            if peak > self.ledger_peak_bytes:
                self.ledger_peak_bytes = peak

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spill_events": self.spill_events,
                "spill_bytes": self.spill_bytes,
                "load_events": self.load_events,
                "load_bytes": self.load_bytes,
                "ledger_peak_bytes": self.ledger_peak_bytes,
            }

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter growth since an earlier :meth:`snapshot` (peak is max)."""
        now = self.snapshot()
        return {
            "spill_events": now["spill_events"] - earlier.get("spill_events", 0),
            "spill_bytes": now["spill_bytes"] - earlier.get("spill_bytes", 0),
            "load_events": now["load_events"] - earlier.get("load_events", 0),
            "load_bytes": now["load_bytes"] - earlier.get("load_bytes", 0),
            "ledger_peak_bytes": max(
                now["ledger_peak_bytes"], earlier.get("ledger_peak_bytes", 0)
            ),
        }


_PROCESS_STATS = SpillStats()


def process_spill_stats() -> SpillStats:
    """This process's cumulative spill totals (all managers combined)."""
    return _PROCESS_STATS


class SpillManager:
    """Moves named objects between memory and a content store.

    Pass an existing ``store`` to share blobs with other components, or
    a ``directory`` to root a private store there; with neither, a
    temporary directory is created lazily on first spill and removed by
    :meth:`close`.  Blobs are pinned under this manager's ``owner``
    slug so :meth:`close` can release exactly its own refs and GC.

    An object that fails to pickle is *pinned in memory*: the failure
    is remembered and the entry silently skipped on future spill
    attempts — spilling is an optimisation, never a correctness gate.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        store: Optional[ContentStore] = None,
        owner: str = "spill",
        stats: Optional[SpillStats] = None,
        protocol: int = pickle.HIGHEST_PROTOCOL,
        registry=None,
    ) -> None:
        self.owner = owner
        self.stats = stats if stats is not None else process_spill_stats()
        self.protocol = protocol
        self._store = store
        self._directory = Path(directory) if directory is not None else None
        self._owns_tempdir = False
        self._tickets: Dict[str, str] = {}  # name -> content key
        self._unpicklable: Set[str] = set()
        # Worker processes pass their local registry so the master can
        # merge shipped deltas; None means the process-wide one.
        if registry is None:
            registry = get_registry()
        self._events = registry.counter(
            "repro_spill_events_total",
            "Objects moved between memory and the spill store.",
            labelnames=("direction",),
        )
        self._bytes = registry.counter(
            "repro_spill_bytes_total",
            "Serialized bytes moved between memory and the spill store.",
            labelnames=("direction",),
        )

    # ------------------------------------------------------------------
    # lazy store
    # ------------------------------------------------------------------
    @property
    def store(self) -> ContentStore:
        if self._store is None:
            if self._directory is None:
                self._directory = Path(tempfile.mkdtemp(prefix="repro-spill-"))
                self._owns_tempdir = True
            self._store = ContentStore(self._directory)
        return self._store

    # ------------------------------------------------------------------
    # spill / load
    # ------------------------------------------------------------------
    def spill(self, name: str, obj: Any) -> bool:
        """Serialize ``obj`` to disk under ``name``; True on success.

        False means the object could not be pickled; the entry is then
        pinned (future spills of the same name are skipped cheaply) and
        the caller must keep the object in memory.
        """
        if name in self._unpicklable:
            return False
        try:
            payload = pickle.dumps(obj, protocol=self.protocol)
        except Exception:
            self._unpicklable.add(name)
            return False
        with span("spill:write", entry=name, nbytes=len(payload)):
            key = self.store.put(payload)
            self.store.add_ref(key, self._ref_owner(name))
        previous = self._tickets.get(name)
        self._tickets[name] = key
        if previous is not None and previous != key:
            self.store.drop_ref(previous, self._ref_owner(name))
        self._events.labels("spill").inc()
        self._bytes.labels("spill").inc(len(payload))
        self.stats.record_spill(len(payload))
        return True

    def load(self, name: str, drop: bool = True) -> Any:
        """Deserialize ``name``'s spilled object back into memory.

        ``drop=True`` (the default) releases the blob ref afterwards —
        the object now lives in memory again and may be re-spilled
        later (possibly with different content).  Raises ``KeyError``
        if ``name`` was never spilled or already dropped.
        """
        key = self._tickets[name]
        with span("spill:load", entry=name):
            payload = self.store.get(key)
            obj = pickle.loads(payload)
        self._events.labels("load").inc()
        self._bytes.labels("load").inc(len(payload))
        self.stats.record_load(len(payload))
        if drop:
            del self._tickets[name]
            self.store.drop_ref(key, self._ref_owner(name))
        return obj

    def has(self, name: str) -> bool:
        """Whether ``name`` currently lives on disk."""
        return name in self._tickets

    def spilled_names(self) -> Set[str]:
        return set(self._tickets)

    def _ref_owner(self, name: str) -> str:
        return f"{self.owner}:{name}"

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this manager's refs, GC, and remove an owned tempdir."""
        if self._store is not None:
            for name, key in list(self._tickets.items()):
                self._store.drop_ref(key, self._ref_owner(name))
            self._tickets.clear()
            try:
                self._store.gc()
            except OSError:
                pass
        if self._owns_tempdir and self._directory is not None:
            rmtree(self._directory, ignore_errors=True)
            self._owns_tempdir = False
            self._store = None
            self._directory = None
