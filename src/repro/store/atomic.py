"""Atomic file publication: temp file + ``os.replace``, one copy.

Every durable artifact this repo writes — workflow checkpoints, spill
files, content-store blobs, benchmark caches — follows the same
discipline: write into a uniquely-named temp file in the *target
directory* (same filesystem, so the final rename is atomic), then
``os.replace`` it into place, unlinking the temp file on any failure.
A crash mid-write leaves the previous version intact and at worst
orphans one temp file.

Those orphans are what :func:`sweep_orphan_tmps` cleans up, with the
two guards that make a sweep safe in a *shared* directory: only files
carrying the caller's temp prefix are candidates (a sibling process's
unrelated ``*.tmp`` is not ours to judge), and only files older than
:data:`ORPHAN_TMP_AGE_SECONDS` are deleted (a fresh prefix-matching
temp file is a sibling's write in flight, not an orphan).
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

#: How old (seconds since mtime) a temp file must be before the orphan
#: sweep may delete it.  An in-flight write lives for milliseconds; a
#: temp file this stale can only be the leftover of a killed process.
#: The age guard is what makes several writers sharing one directory
#: (e.g. concurrent jobs of the service) safe: one writer's sweep
#: cannot race another writer's write-in-progress out from under it.
ORPHAN_TMP_AGE_SECONDS = 60.0

#: Suffix shared by all in-flight temp files.
TMP_SUFFIX = ".tmp"


@contextmanager
def atomic_writer(
    path: Union[str, Path], tmp_prefix: str = ".atomic-"
) -> Iterator[IO[bytes]]:
    """Context manager yielding a binary handle; publishes on clean exit.

    The temp file is created in ``path``'s directory (created if
    missing) so the final ``os.replace`` stays within one filesystem
    and is therefore atomic.  If the body raises, the temp file is
    unlinked and the exception propagates — ``path`` is never left
    half-written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=tmp_prefix, suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            yield handle
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, tmp_prefix: str = ".atomic-"
) -> None:
    """Atomically replace ``path``'s contents with ``data``."""
    with atomic_writer(path, tmp_prefix=tmp_prefix) as handle:
        handle.write(data)


def sweep_orphan_tmps(
    directory: Union[str, Path],
    tmp_prefix: str = ".atomic-",
    age_seconds: float = ORPHAN_TMP_AGE_SECONDS,
) -> int:
    """Remove stale ``<tmp_prefix>*.tmp`` leftovers of hard-killed writes.

    Returns the number of files removed.  A missing directory is not an
    error (there is nothing to sweep); so is losing a race to another
    sweeper or to the file's own publication.
    """
    root = Path(directory)
    if not root.is_dir():
        return 0
    cutoff = time.time() - age_seconds
    removed = 0
    for entry in root.glob(tmp_prefix + "*" + TMP_SUFFIX):
        try:
            if entry.stat().st_mtime <= cutoff:
                entry.unlink()
                removed += 1
        except OSError:
            pass
    return removed
