"""Content-addressed blob store: sha256 keys, atomic publish, refcount GC.

Layout under the store root::

    objects/<aa>/<sha256-hex>     the blobs themselves (aa = first two
                                  hex chars, keeps directories shallow)
    refs/<sha256-hex>/<owner>     one empty file per (blob, owner) pin
    names/<slug>                  mutable aliases; the file's content is
                                  the sha256 key it currently points at

Identical payloads share one blob regardless of who stored them — the
key *is* the content hash — which is what makes the store suitable for
spill files (many partitions spill identical empty batches), the bench
dataset cache, and dedup-ready service artifacts.

Publication is atomic (:mod:`repro.store.atomic`): a blob either exists
completely or not at all, and a crash mid-``put`` at worst orphans a
temp file that :meth:`ContentStore.gc` sweeps later.  Deletion is by
garbage collection only: :meth:`~ContentStore.gc` removes blobs that
have no refs and no name pointing at them.  Refs are per-owner files so
two independent components (say, two spill managers sharing a store)
can pin the same blob without coordinating.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Union

from .atomic import atomic_write_bytes, sweep_orphan_tmps

_KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")

#: Temp prefix for in-flight blob/name writes within the store root.
_TMP_PREFIX = ".blob-"


def _slug(name: str) -> str:
    """Filesystem-safe form of a name or owner string."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "item"


def content_key(data: bytes) -> str:
    """The sha256 hex digest that addresses ``data``."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class GCResult:
    """What one :meth:`ContentStore.gc` pass removed."""

    blobs_removed: int = 0
    bytes_reclaimed: int = 0
    tmp_removed: int = 0
    removed_keys: List[str] = field(default_factory=list)


class ContentStore:
    """One directory of content-addressed blobs (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._refs = self.root / "refs"
        self._names = self.root / "names"

    # ------------------------------------------------------------------
    # blobs
    # ------------------------------------------------------------------
    def path(self, key: str) -> Path:
        """Where ``key``'s blob lives (whether or not it exists yet)."""
        if not _KEY_PATTERN.match(key):
            raise ValueError(f"not a sha256 content key: {key!r}")
        return self._objects / key[:2] / key

    def put(self, data: bytes) -> str:
        """Store ``data``; returns its content key.

        Idempotent: an already-present blob is not rewritten (the key
        is the hash, so equal keys mean equal bytes).
        """
        key = content_key(data)
        blob = self.path(key)
        if not blob.exists():
            atomic_write_bytes(blob, data, tmp_prefix=_TMP_PREFIX)
        return key

    def get(self, key: str) -> bytes:
        """The blob's bytes; raises ``FileNotFoundError`` if absent."""
        return self.path(key).read_bytes()

    def has(self, key: str) -> bool:
        return self.path(key).exists()

    def size(self, key: str) -> int:
        """The blob's size in bytes; raises ``FileNotFoundError`` if absent."""
        return self.path(key).stat().st_size

    def keys(self) -> Iterator[str]:
        """Every blob key currently present."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if _KEY_PATTERN.match(entry.name):
                    yield entry.name

    # ------------------------------------------------------------------
    # refs
    # ------------------------------------------------------------------
    def add_ref(self, key: str, owner: str) -> None:
        """Pin ``key`` on behalf of ``owner`` (idempotent per owner)."""
        ref_dir = self._refs / key
        ref_dir.mkdir(parents=True, exist_ok=True)
        (ref_dir / _slug(owner)).touch()

    def drop_ref(self, key: str, owner: str) -> None:
        """Release ``owner``'s pin on ``key`` (missing pins are fine)."""
        try:
            (self._refs / key / _slug(owner)).unlink()
        except OSError:
            pass
        try:
            (self._refs / key).rmdir()  # only succeeds once empty
        except OSError:
            pass

    def ref_count(self, key: str) -> int:
        ref_dir = self._refs / key
        if not ref_dir.is_dir():
            return 0
        return sum(1 for _ in ref_dir.iterdir())

    # ------------------------------------------------------------------
    # names (mutable aliases)
    # ------------------------------------------------------------------
    def put_named(self, name: str, data: bytes) -> str:
        """Store ``data`` and point the alias ``name`` at it."""
        key = self.put(data)
        atomic_write_bytes(
            self._names / _slug(name), key.encode("ascii"), tmp_prefix=_TMP_PREFIX
        )
        return key

    def get_named(self, name: str) -> Optional[bytes]:
        """The bytes ``name`` points at, or None if unset/dangling."""
        key = self.resolve_name(name)
        if key is None:
            return None
        try:
            return self.get(key)
        except OSError:
            return None

    def resolve_name(self, name: str) -> Optional[str]:
        """The key ``name`` points at, or None."""
        try:
            key = (self._names / _slug(name)).read_text("ascii").strip()
        except OSError:
            return None
        return key if _KEY_PATTERN.match(key) else None

    def delete_name(self, name: str) -> None:
        try:
            (self._names / _slug(name)).unlink()
        except OSError:
            pass

    def names(self) -> Iterator[str]:
        if not self._names.is_dir():
            return
        for entry in sorted(self._names.iterdir()):
            if entry.is_file():
                yield entry.name

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self) -> GCResult:
        """Remove blobs with no refs and no name, plus stale temp files.

        Names act as roots: a blob an alias points at survives even
        with zero refs (the bench dataset cache relies on this — cached
        datasets are named, not pinned).
        """
        result = GCResult()
        named = {
            key
            for key in (self.resolve_name(name) for name in self.names())
            if key is not None
        }
        for key in list(self.keys()):
            if key in named or self.ref_count(key) > 0:
                continue
            blob = self.path(key)
            try:
                size = blob.stat().st_size
                blob.unlink()
            except OSError:
                continue
            result.blobs_removed += 1
            result.bytes_reclaimed += size
            result.removed_keys.append(key)
            try:  # drop the now-empty ref dir, if one lingered
                (self._refs / key).rmdir()
            except OSError:
                pass
        for directory in self._tmp_dirs():
            result.tmp_removed += sweep_orphan_tmps(directory, _TMP_PREFIX)
        return result

    def _tmp_dirs(self) -> Iterator[Path]:
        if self._objects.is_dir():
            yield from (d for d in self._objects.iterdir() if d.is_dir())
        if self._names.is_dir():
            yield self._names
