"""Bounded-memory storage plane: atomic files, blobs, ledger, spills.

The out-of-core machinery lives here, one concern per module:

* :mod:`repro.store.atomic` — the temp-file + ``os.replace`` publication
  discipline every on-disk artifact of this repo uses (workflow
  checkpoints, spill files, blobs), extracted so there is exactly one
  copy of the ``.tmp``-sweep logic;
* :mod:`repro.store.content` — :class:`ContentStore`, a sha256-keyed
  content-addressed blob store with atomic publish, named aliases and
  ref-count GC.  It backs the spill files and the bench harness's
  dataset cache, and gives the job service dedup-ready artifact
  storage;
* :mod:`repro.store.ledger` — :class:`MemoryLedger`, the accounting
  layer that tracks live columnar-array bytes against a budget and
  decides eviction order;
* :mod:`repro.store.spill` — :class:`SpillManager`, which serializes
  evicted objects into a :class:`ContentStore` and loads them back,
  with spill activity observable through telemetry counters
  (``repro_spill_bytes_total`` / ``repro_spill_events_total``) and a
  process-wide :class:`SpillStats` snapshot the CLI's
  ``--metrics-json`` reports.

The budget knob rides :class:`~repro.assembler.config.AssemblyConfig.memory_budget_mb`
→ CLI ``--memory-budget-mb`` → service ``JobSpec`` end to end; see
``docs/out_of_core.md``.
"""

from .atomic import (
    ORPHAN_TMP_AGE_SECONDS,
    atomic_write_bytes,
    atomic_writer,
    sweep_orphan_tmps,
)
from .content import ContentStore, GCResult
from .ledger import MemoryLedger, budget_mb_to_bytes, estimate_nbytes
from .spill import SpillManager, SpillStats, process_spill_stats

__all__ = [
    "ORPHAN_TMP_AGE_SECONDS",
    "atomic_write_bytes",
    "atomic_writer",
    "sweep_orphan_tmps",
    "ContentStore",
    "GCResult",
    "MemoryLedger",
    "budget_mb_to_bytes",
    "estimate_nbytes",
    "SpillManager",
    "SpillStats",
    "process_spill_stats",
]
