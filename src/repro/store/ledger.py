"""Memory accounting: who holds how many live bytes, and who spills next.

:class:`MemoryLedger` is the decision layer of the out-of-core plane.
Runtime components register named entries (a worker's partition, a
staged message batch, a k-mer run) with an estimated byte size; the
ledger tracks the live total against a budget, remembers the peak, and
answers the one question the spill machinery asks: *which entries, in
least-recently-used order, should go to disk to get back under
budget?*

Sizes come from :func:`estimate_nbytes`, a deterministic heuristic —
exact for the numpy arrays that dominate the columnar pipeline
(``.nbytes`` plus object header), sampled for containers.  It is an
*estimate*: the point is relative ordering and a stable trigger
threshold, not byte-perfect accounting, and determinism matters more
than precision because the parity suite requires identical spill
decisions on every run.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Any, Iterator, List, Optional, Set, Tuple

from ..telemetry.metrics import get_registry

#: Flat per-object overhead charged when nothing better is known.
_DEFAULT_NBYTES = 128

#: How many elements of a container the estimator inspects before
#: extrapolating.  Containers in this codebase are homogeneous
#: (lists of reads, dicts of vertices), so a small sample is accurate.
_SAMPLE_LIMIT = 16

#: Recursion depth cap for objects holding objects.
_MAX_DEPTH = 3


def budget_mb_to_bytes(memory_budget_mb: Optional[float]) -> Optional[int]:
    """``memory_budget_mb`` in bytes, or None for unlimited."""
    if memory_budget_mb is None:
        return None
    return int(memory_budget_mb * 1024 * 1024)


def estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Deterministic estimate of ``obj``'s resident size in bytes.

    numpy arrays report their exact buffer size; builtin scalars and
    byte/str payloads use fixed CPython header costs; containers sample
    the first :data:`_SAMPLE_LIMIT` elements and scale by length.
    Unknown objects with a ``__dict__`` recurse (to a shallow depth);
    everything else is charged a flat default.  The result only needs
    to be *stable* and *proportional* — eviction order and the budget
    trigger depend on it, byte-exactness does not.
    """
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):  # numpy arrays and scalars
        return _DEFAULT_NBYTES + nbytes
    if obj is None or isinstance(obj, bool):
        return 32
    if isinstance(obj, (int, float)):
        return 32
    if isinstance(obj, bytes):
        return 64 + len(obj)
    if isinstance(obj, str):
        return 56 + len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        length = len(obj)
        if length == 0:
            return 64
        if _depth >= _MAX_DEPTH:
            return 64 + 8 * length
        sample = []
        for index, item in enumerate(obj):
            if index >= _SAMPLE_LIMIT:
                break
            sample.append(estimate_nbytes(item, _depth + 1))
        per_item = sum(sample) / len(sample)
        return int(64 + length * (8 + per_item))
    if isinstance(obj, dict):
        length = len(obj)
        if length == 0:
            return 64
        if _depth >= _MAX_DEPTH:
            return 64 + 16 * length
        sample = []
        for index, (key, value) in enumerate(obj.items()):
            if index >= _SAMPLE_LIMIT:
                break
            sample.append(
                estimate_nbytes(key, _depth + 1) + estimate_nbytes(value, _depth + 1)
            )
        per_item = sum(sample) / len(sample)
        return int(64 + length * (16 + per_item))
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None and _depth < _MAX_DEPTH:
        return 64 + estimate_nbytes(attrs, _depth + 1)
    slots = getattr(obj, "__slots__", None)
    if slots is not None and _depth < _MAX_DEPTH:
        total = 64
        for name in slots:
            total += estimate_nbytes(getattr(obj, name, None), _depth + 1)
        return total
    try:
        return max(_DEFAULT_NBYTES, sys.getsizeof(obj))
    except TypeError:
        return _DEFAULT_NBYTES


class MemoryLedger:
    """Tracks live bytes per named entry against an optional budget.

    Entries are kept in access order (:meth:`touch` refreshes), so
    :meth:`victims` is an LRU walk.  ``budget_bytes=None`` means
    unlimited: the ledger still accounts (the peak gauge is useful on
    its own) but :attr:`over_budget` is always False.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        name: str = "ledger",
        registry=None,
    ) -> None:
        self.budget_bytes = budget_bytes
        self.name = name
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._live = 0
        self._peak = 0
        # Worker processes pass their local registry so the master can
        # merge shipped deltas; None means the process-wide one.
        if registry is None:
            registry = get_registry()
        self._live_gauge = registry.gauge(
            "repro_memory_ledger_bytes",
            "Live bytes currently tracked by a memory ledger.",
            labelnames=("ledger",),
        ).labels(name)
        self._peak_gauge = registry.gauge(
            "repro_memory_ledger_peak_bytes",
            "High-water mark of bytes tracked by a memory ledger.",
            labelnames=("ledger",),
        ).labels(name)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def track(self, name: str, nbytes: int) -> None:
        """Register (or re-register) an entry as live, marking it fresh."""
        self._live -= self._entries.pop(name, 0)
        self._entries[name] = nbytes
        self._live += nbytes
        if self._live > self._peak:
            self._peak = self._live
            self._peak_gauge.set(self._peak)
        self._live_gauge.set(self._live)

    def touch(self, name: str) -> None:
        """Mark an entry recently used (moves it to the MRU end)."""
        if name in self._entries:
            self._entries.move_to_end(name)

    def release(self, name: str) -> int:
        """Drop an entry (spilled or freed); returns its tracked bytes."""
        nbytes = self._entries.pop(name, 0)
        self._live -= nbytes
        self._live_gauge.set(self._live)
        return nbytes

    def tracked(self, name: str) -> bool:
        return name in self._entries

    def nbytes(self, name: str) -> int:
        return self._entries.get(name, 0)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return self._live

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def over_budget(self) -> bool:
        return self.budget_bytes is not None and self._live > self.budget_bytes

    def headroom(self) -> Optional[int]:
        """Bytes left under budget (negative when over), None if unlimited."""
        if self.budget_bytes is None:
            return None
        return self.budget_bytes - self._live

    def victims(self, exclude: Optional[Set[str]] = None) -> Iterator[Tuple[str, int]]:
        """Entries in least-recently-used order, skipping ``exclude``.

        The caller releases each victim (via :meth:`release`) as it
        spills and stops once :attr:`over_budget` clears; iterating
        over a snapshot keeps that mutation safe.
        """
        skip = exclude or set()
        snapshot: List[Tuple[str, int]] = list(self._entries.items())
        for name, nbytes in snapshot:
            if name not in skip:
                yield name, nbytes
