"""Ray-style baseline assembler.

Ray [Boisvert et al. 2010] assembles by *greedy seed extension*: it
selects seed k-mers, then repeatedly asks the distributed k-mer table
which base extends the current contig end, advancing one base per
message round and stopping as soon as the extension is not unanimous
enough.  Two consequences the paper's experiments show:

* **runtime** — extending one base per communication round means the
  number of rounds is proportional to the total assembled length, which
  is why Ray is roughly an order of magnitude slower than the other
  assemblers in Figure 12 (its per-round latency cannot be amortised);
* **quality** — the conservative extension stops early around repeats
  and uneven coverage, which is why Ray covers the smallest genome
  fraction on HC-2 (Table IV) despite producing few misassemblies.

This reproduction implements the same strategy on the shared k-mer
table: seeds are unused high-coverage k-mers, extension continues while
exactly one outgoing base passes the support threshold, and both
directions of a seed are extended before the contig is emitted.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..dna.encoding import canonical_encoded, decode_kmer, encode_kmer
from ..dna.io_fastq import Read
from ..dna.kmer import extract_canonical_kmer_ids
from ..dna.sequence import reverse_complement
from .base import BaselineAssembler, BaselineResult

_BASES = "ACGT"


class RayLikeAssembler(BaselineAssembler):
    """Greedy seed-and-extend assembly over a distributed k-mer table."""

    name = "Ray"

    def __init__(
        self,
        k: int = 21,
        num_workers: int = 4,
        coverage_threshold: int = 1,
        extension_dominance: float = 0.85,
        backend: str = "serial",
    ) -> None:
        super().__init__(k=k, num_workers=num_workers, backend=backend)
        self.coverage_threshold = coverage_threshold
        #: Fraction of the outgoing support a single base must hold for
        #: the extension to continue — Ray's "unanimity" rule.
        self.extension_dominance = extension_dominance

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self, reads: Iterable[Read]) -> BaselineResult:
        reads = list(reads)
        kmer_counts = self._count_kmers(reads)
        contigs, extension_rounds = self._extend_all_seeds(kmer_counts)

        counters = {
            "reads": len(reads),
            "kmers": len(kmer_counts),
            "extension_rounds": extension_rounds,
            "contigs": len(contigs),
            "assembled_length": sum(len(contig) for contig in contigs),
        }
        seconds = self._estimate_seconds(counters)
        return self._result(contigs, counters, seconds)

    def _count_kmers(self, reads: List[Read]) -> Counter:
        counts: Counter = Counter()
        for read in reads:
            for kmer_id in extract_canonical_kmer_ids(read.sequence, self.k):
                counts[kmer_id] += 1
        return Counter(
            {kmer_id: count for kmer_id, count in counts.items() if count > self.coverage_threshold}
        )

    def _extend_all_seeds(self, kmer_counts: Counter) -> Tuple[List[str], int]:
        used: Set[int] = set()
        contigs: List[str] = []
        rounds = 0

        # Seeds in decreasing coverage order: well-covered unique regions
        # first, mirroring Ray's seed selection heuristic.
        seeds = [kmer_id for kmer_id, _count in kmer_counts.most_common()]
        for seed in seeds:
            if seed in used:
                continue
            sequence, consumed, seed_rounds = self._extend_seed(seed, kmer_counts, used)
            rounds += seed_rounds
            used.update(consumed)
            if len(sequence) >= self.k:
                contigs.append(sequence)
        return contigs, rounds

    def _extend_seed(
        self,
        seed: int,
        kmer_counts: Counter,
        used: Set[int],
    ) -> Tuple[str, Set[int], int]:
        """Extend one seed in both directions, one base per round."""
        consumed: Set[int] = {seed}
        sequence = decode_kmer(seed, self.k)
        rounds = 0

        # Forward (3') extension, then backward via the reverse complement.
        for _direction in range(2):
            while True:
                rounds += 1
                next_base = self._choose_extension(sequence, kmer_counts, consumed, used)
                if next_base is None:
                    break
                sequence = sequence + next_base
                tail_id, _ = canonical_encoded(encode_kmer(sequence[-self.k :]), self.k)
                consumed.add(tail_id)
            sequence = reverse_complement(sequence)
        return sequence, consumed, rounds

    def _choose_extension(
        self,
        sequence: str,
        kmer_counts: Counter,
        consumed: Set[int],
        used: Set[int],
    ) -> Optional[str]:
        """The single dominant next base, or None to stop extending."""
        tail = sequence[-(self.k - 1) :]
        support: Dict[str, int] = {}
        for base in _BASES:
            candidate = tail + base
            candidate_id, _ = canonical_encoded(encode_kmer(candidate), self.k)
            count = kmer_counts.get(candidate_id, 0)
            if count > 0:
                support[base] = count
        if not support:
            return None
        total = sum(support.values())
        best_base, best_count = max(support.items(), key=lambda item: item[1])
        if best_count / total < self.extension_dominance:
            # No sufficiently dominant continuation: Ray stops here.
            return None
        candidate_id, _ = canonical_encoded(encode_kmer(tail + best_base), self.k)
        if candidate_id in consumed or candidate_id in used:
            # Looping back onto this contig, or running into sequence an
            # earlier seed already assembled: stop rather than duplicate.
            return None
        return best_base

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _estimate_seconds(self, counters: Dict[str, int]) -> float:
        """Ray-style cost: one communication round per extended base.

        Each extension round is a network round trip whose latency
        cannot be hidden; different seeds extend concurrently, so adding
        workers helps, but imperfectly (the paths being extended compete
        for the same k-mer table shards), which is modelled as a
        square-root speed-up.  The combination keeps Ray roughly an
        order of magnitude slower than the bulk-synchronous assemblers
        while still improving with the worker count — the Figure 12
        behaviour.
        """
        round_latency_seconds = 0.15
        per_kmer_seconds = 2.0e-7
        startup_seconds = 60.0

        round_seconds = counters["extension_rounds"] * round_latency_seconds
        concurrency = max(self.num_workers, 1) ** 0.5
        counting_seconds = counters["kmers"] * per_kmer_seconds * 12 / max(self.num_workers, 1)
        return startup_seconds + round_seconds / concurrency + counting_seconds
