"""SWAP-Assembler-style baseline.

SWAP-Assembler [Meng et al. 2014] targets extreme scale (thousands of
cores) by reformulating contig extension as repeated *semi-group edge
merging* over a "small-world asynchronous parallel" computation model.
Two behaviours matter for the paper's comparison:

* **quality** — SWAP performs little error correction before merging
  and resolves junctions aggressively so that its multi-round merging
  can proceed; on HC-2 (Table IV) this shows up as the most
  misassemblies by far (167), a large unaligned length, and the
  smallest N50/total length of the four assemblers.
* **runtime** — its communication is bulk and well partitioned, so it
  scales with workers (second fastest after PPA-assembler in
  Figure 12), but every merging round touches every edge, which costs
  more than PPA-assembler's O(log n) pointer-doubling.

This reproduction keeps both behaviours: the graph is built without a
coverage filter (error k-mers survive), junctions whose branches can be
paired by coverage similarity are resolved by *joining* the best pair
(occasionally creating chimeric contigs — the misassembly source), and
contigs are extracted by iterative edge merging whose round count is
logarithmic in the longest path.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..dbg.graph import DeBruijnGraph
from ..dbg.kmer_vertex import TYPE_AMBIGUOUS
from ..dbg.polarity import PORT_IN, PORT_OUT, source_port, target_port
from ..dna.io_fastq import Read
from ..dna.kmer import extract_kplus1mers
from .base import BaselineAssembler, BaselineResult
from .walk import extract_unambiguous_contigs


class SwapLikeAssembler(BaselineAssembler):
    """Multi-round edge-merging assembly with aggressive junction resolution."""

    name = "SWAP-Assembler"

    def __init__(
        self,
        k: int = 21,
        num_workers: int = 4,
        coverage_threshold: int = 1,
        resolve_junctions: bool = False,
        junction_coverage_ratio: float = 0.5,
        backend: str = "serial",
    ) -> None:
        super().__init__(k=k, num_workers=num_workers, backend=backend)
        #: SWAP filters singleton (k+1)-mers while counting, but performs
        #: no tip or bubble correction afterwards.
        self.coverage_threshold = coverage_threshold
        self.resolve_junctions = resolve_junctions
        #: Two branches are paired when their coverages are within this
        #: ratio of each other — deliberately permissive, as SWAP is.
        self.junction_coverage_ratio = junction_coverage_ratio

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self, reads: Iterable[Read]) -> BaselineResult:
        reads = list(reads)
        graph, total_edges = self._build_unfiltered_graph(reads)
        ambiguous_before = len(graph.ambiguous_vertices())

        resolved = 0
        if self.resolve_junctions:
            resolved = self._resolve_junctions(graph)

        contigs, ambiguous_after = extract_unambiguous_contigs(graph, min_length=self.k)
        merging_rounds = max(1, max((len(c) for c in contigs), default=1).bit_length())

        counters = {
            "reads": len(reads),
            "kmers": graph.kmer_count(),
            "graph_edges": total_edges,
            "ambiguous_vertices": ambiguous_before,
            "junctions_resolved": resolved,
            "ambiguous_after_resolution": ambiguous_after,
            "merging_rounds": merging_rounds,
            "contigs": len(contigs),
        }
        seconds = self._estimate_seconds(counters)
        return self._result(contigs, counters, seconds)

    def _build_unfiltered_graph(self, reads: List[Read]) -> Tuple[DeBruijnGraph, int]:
        """Build the DBG with only the counting-time coverage filter.

        Low-frequency (k+1)-mers are dropped during counting (as SWAP's
        k-mer filter does), but no tip removal or bubble filtering is
        performed afterwards — surviving error edges and the aggressive
        junction resolution below are what drive SWAP's quality profile
        in Table IV.
        """
        graph = DeBruijnGraph(self.k)
        edges: Dict[Tuple[int, int, int, int], int] = {}
        for read in reads:
            for kp1 in extract_kplus1mers(read.sequence, self.k):
                prefix_port = source_port(kp1.prefix.polarity_label())
                suffix_port = target_port(kp1.suffix.polarity_label())
                key = (kp1.prefix.kmer_id, prefix_port, kp1.suffix.kmer_id, suffix_port)
                edges[key] = edges.get(key, 0) + 1
        kept = 0
        for (source, source_p, target, target_p), coverage in edges.items():
            if coverage > self.coverage_threshold:
                graph.add_edge(source, source_p, target, target_p, coverage)
                kept += 1
        return graph, kept

    def _resolve_junctions(self, graph: DeBruijnGraph) -> int:
        """Pair up branches at ambiguous vertices by coverage similarity.

        For every ⟨m-n⟩ vertex with exactly two entries on each side,
        the branch pair with the closest coverage is "joined" by
        deleting the other pair's edges, turning the junction into a
        ⟨1-1⟩ vertex so that merging can run through it.  Around exact
        repeats this choice is frequently wrong, which is the mechanism
        behind SWAP's misassembly count in Table IV.
        """
        resolved = 0
        for kmer_id in list(graph.ambiguous_vertices()):
            vertex = graph.kmers.get(kmer_id)
            if vertex is None or vertex.vertex_type() != TYPE_AMBIGUOUS:
                continue
            in_entries = vertex.entries_on_port(PORT_IN)
            out_entries = vertex.entries_on_port(PORT_OUT)
            if not in_entries or not out_entries:
                continue
            if len(in_entries) + len(out_entries) < 3:
                continue
            # Rank every (in, out) pairing by how well the two branch
            # coverages match.  A clearly best pairing is joined (and
            # around exact repeats that join is frequently chimeric —
            # the misassembly source of Table IV); an ambiguous junction
            # is broken apart entirely, which is what fragments SWAP's
            # output and keeps its N50 and total length low.
            pairs = sorted(
                ((i, o) for i in in_entries for o in out_entries),
                key=lambda pair: abs(pair[0].coverage - pair[1].coverage),
            )
            best_difference = abs(pairs[0][0].coverage - pairs[0][1].coverage)
            runner_up_difference = (
                abs(pairs[1][0].coverage - pairs[1][1].coverage) if len(pairs) > 1 else None
            )
            unambiguous = runner_up_difference is None or (
                best_difference * 2 < runner_up_difference
            )
            keep: Tuple = pairs[0] if unambiguous else ()
            for entry in in_entries + out_entries:
                if entry in keep:
                    continue
                neighbor = graph.kmers.get(entry.neighbor_id)
                vertex.remove_adjacency(entry.neighbor_id, my_port=entry.my_port)
                if neighbor is not None:
                    neighbor.remove_adjacency(kmer_id, my_port=entry.neighbor_port)
            resolved += 1
        return resolved

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _estimate_seconds(self, counters: Dict[str, int]) -> float:
        """SWAP-style cost: bulk rounds over all edges, good scaling.

        Every merging round scans and exchanges all graph edges; the
        work parallelises well across workers, but the number of rounds
        (log of the longest path) multiplies the full edge volume,
        making SWAP a constant factor slower than PPA-assembler's
        labeling, which only touches each vertex O(1) times per round.
        """
        per_edge_round_seconds = 1.6e-3
        startup_seconds = 20.0
        barrier_seconds_per_round = 0.8

        rounds = counters["merging_rounds"] + 4  # graph construction passes
        edge_volume = counters["graph_edges"] * rounds
        compute_seconds = edge_volume * per_edge_round_seconds / max(self.num_workers, 1)
        barrier_seconds = rounds * barrier_seconds_per_round
        return startup_seconds + compute_seconds + barrier_seconds
