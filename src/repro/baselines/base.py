"""Shared machinery for the baseline assemblers.

The paper compares PPA-assembler against ABySS 1.5.2, Ray 2.3.1 and
SWAP-Assembler 3.0 (Spaler is discussed but not open source).  Those
binaries are not available offline, so :mod:`repro.baselines`
re-implements each tool's *assembly strategy* — the part that drives
both its contig quality and its communication pattern — on top of the
same DNA/DBG substrate used by PPA-assembler.  What is reproduced per
baseline:

* the way it builds the de Bruijn graph (ABySS probes all eight
  possible neighbours; SWAP keeps unfiltered error edges; Ray works
  from a k-mer coverage table);
* the way it extracts contigs (path walking, greedy seed extension,
  aggressive repeat pairing);
* the *communication pattern class* that determines how its execution
  time scales with the number of workers, encoded as a per-baseline
  cost formula evaluated from measured quantities (k-mer counts, edge
  counts, contig lengths).  This is what Figure 12 actually compares:
  PPA-assembler and SWAP scale with workers, ABySS is insensitive to
  the worker count, Ray is an order of magnitude slower.

The absolute seconds produced by these models are not comparable with
the paper's cluster, but the relative ordering and scaling shape are
the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..dna.io_fastq import Read


@dataclass
class BaselineResult:
    """Contigs plus cost accounting from one baseline run."""

    assembler: str
    contigs: List[str]
    num_workers: int
    #: Quantities measured during the run, used by the cost formula and
    #: reported by benchmarks (e.g. number of k-mers, graph edges).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Estimated end-to-end execution seconds on the simulated cluster.
    estimated_seconds: float = 0.0

    def contigs_longer_than(self, min_length: int) -> List[str]:
        return [contig for contig in self.contigs if len(contig) >= min_length]

    def num_contigs(self, min_length: int = 0) -> int:
        return len(self.contigs_longer_than(min_length))

    def total_length(self, min_length: int = 0) -> int:
        return sum(len(contig) for contig in self.contigs_longer_than(min_length))

    def largest_contig(self) -> int:
        return max((len(contig) for contig in self.contigs), default=0)


class BaselineAssembler(ABC):
    """Interface shared by the baseline assemblers.

    ``backend`` selects the execution runtime, mirroring
    :class:`~repro.assembler.config.AssemblyConfig` so that every
    workload in a benchmark run — PPA-assembler and baselines alike —
    can be driven with the same backend choice.  The baseline
    strategies price their communication through per-tool cost
    formulas, so the backend only affects any Pregel machinery a
    strategy chooses to run, not its contigs.
    """

    #: Human-readable tool name, as used in the paper's tables.
    name: str = "baseline"

    def __init__(self, k: int = 21, num_workers: int = 4, backend: str = "serial") -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        from ..runtime import ensure_backend

        self.k = k
        self.num_workers = num_workers
        self.backend = ensure_backend(backend)

    @abstractmethod
    def assemble(self, reads: Iterable[Read]) -> BaselineResult:
        """Assemble ``reads`` and return contigs plus cost estimates."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _result(
        self,
        contigs: List[str],
        counters: Dict[str, int],
        estimated_seconds: float,
    ) -> BaselineResult:
        return BaselineResult(
            assembler=self.name,
            contigs=sorted(contigs, key=len, reverse=True),
            num_workers=self.num_workers,
            counters=dict(counters),
            estimated_seconds=estimated_seconds,
        )
