"""Baseline assemblers used in the paper's experimental comparison.

Re-implementations of the assembly strategies of ABySS, Ray,
SWAP-Assembler and Spaler on the shared substrate (see
:mod:`repro.baselines.base` for what exactly is reproduced and how the
execution-time models are derived).
"""

from .abyss import AbyssLikeAssembler
from .base import BaselineAssembler, BaselineResult
from .ray import RayLikeAssembler
from .spaler import SpalerLikeAssembler
from .swap import SwapLikeAssembler
from .walk import extract_unambiguous_contigs

#: All baselines keyed by the names used in the paper's tables.
BASELINES = {
    "ABySS": AbyssLikeAssembler,
    "Ray": RayLikeAssembler,
    "SWAP-Assembler": SwapLikeAssembler,
    "Spaler": SpalerLikeAssembler,
}

__all__ = [
    "AbyssLikeAssembler",
    "BaselineAssembler",
    "BaselineResult",
    "RayLikeAssembler",
    "SpalerLikeAssembler",
    "SwapLikeAssembler",
    "extract_unambiguous_contigs",
    "BASELINES",
]
