"""Spaler-style baseline assembler.

Spaler [Abu-Doleh & Çatalyürek 2015] maps genome assembly onto Spark
and GraphX.  Its contig-finding strategy — the one the paper singles
out as ad hoc — repeatedly *samples* a subset of unambiguous vertices,
breaks each unambiguous path at the sampled vertices to obtain
segments, merges segments that meet at a sampled boundary vertex, and
repeats until ⟨m-n⟩-typed vertices account for more than a third of
the graph.  The procedure gives no guarantee that the resulting paths
are maximal, so contigs can end up shorter than the DBG allows, and
every iteration is a full GraphX (Spark) pass, which is why the paper
expects it to be over an order of magnitude slower than a tailor-made
Pregel system (it is not open source, so Figure 12 does not include
it; this implementation exists so users can still compare the strategy
on the simulated substrate).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Iterable, List, Set, Tuple

from ..assembler.chain import build_chain_graph
from ..assembler.merging import _stitch_group
from ..dbg.graph import DeBruijnGraph
from ..dbg.polarity import source_port, target_port
from ..dna.io_fastq import Read
from ..dna.kmer import extract_kplus1mers
from .base import BaselineAssembler, BaselineResult


class SpalerLikeAssembler(BaselineAssembler):
    """Spark-style sampled path splitting and segment merging."""

    name = "Spaler"

    def __init__(
        self,
        k: int = 21,
        num_workers: int = 4,
        coverage_threshold: int = 1,
        sample_fraction: float = 0.25,
        seed: int = 0,
        backend: str = "serial",
    ) -> None:
        super().__init__(k=k, num_workers=num_workers, backend=backend)
        self.coverage_threshold = coverage_threshold
        self.sample_fraction = sample_fraction
        self.seed = seed

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self, reads: Iterable[Read]) -> BaselineResult:
        reads = list(reads)
        graph = self._build_graph(reads)
        contigs, iterations = self._sampled_merge(graph)

        counters = {
            "reads": len(reads),
            "kmers": graph.kmer_count(),
            "graph_edges": graph.edge_count(),
            "spark_iterations": iterations,
            "contigs": len(contigs),
        }
        seconds = self._estimate_seconds(counters)
        return self._result(contigs, counters, seconds)

    def _build_graph(self, reads: List[Read]) -> DeBruijnGraph:
        graph = DeBruijnGraph(self.k)
        edges: Dict[Tuple[int, int, int, int], int] = {}
        for read in reads:
            for kp1 in extract_kplus1mers(read.sequence, self.k):
                key = (
                    kp1.prefix.kmer_id,
                    source_port(kp1.prefix.polarity_label()),
                    kp1.suffix.kmer_id,
                    target_port(kp1.suffix.polarity_label()),
                )
                edges[key] = edges.get(key, 0) + 1
        for (source, source_p, target, target_p), coverage in edges.items():
            if coverage > self.coverage_threshold:
                graph.add_edge(source, source_p, target, target_p, coverage)
        return graph

    def _sampled_merge(self, graph: DeBruijnGraph) -> Tuple[List[str], int]:
        """Iterative sampled segment merging (the Spaler heuristic).

        Every iteration breaks the chain graph at a random sample of
        vertices, stitches the segments between consecutive breaks, and
        treats each stitched segment as a single unit for the next
        iteration (represented here by keeping the segment's member set
        and re-sampling on segment boundaries).  Iterations stop when
        the segments stop growing — Spaler's own stop rule (ambiguous
        fraction > 1/3) is graph-dependent and usually fires earlier;
        both rules leave non-maximal contigs, which is the point.
        """
        rng = random.Random(self.seed)
        chain = build_chain_graph(graph, include_contigs=False)
        if not chain.nodes:
            return [], 0

        # Segment = ordered list of chain node IDs.  Start with singletons.
        segments: Dict[int, List[int]] = {node_id: [node_id] for node_id in chain.nodes}
        node_to_segment: Dict[int, int] = {node_id: node_id for node_id in chain.nodes}

        iterations = 0
        while iterations < 16:
            iterations += 1
            # Sample boundary vertices that are *not* allowed to merge
            # across this round; everything else merges with its chain
            # neighbour when both ends agree.
            sampled: Set[int] = {
                node_id for node_id in chain.nodes if rng.random() < self.sample_fraction
            }
            merged_any = False
            for node_id, node in chain.nodes.items():
                if node_id in sampled:
                    continue
                for neighbor_id in node.neighbor_ids():
                    if neighbor_id in sampled:
                        continue
                    left_segment = node_to_segment[node_id]
                    right_segment = node_to_segment.get(neighbor_id)
                    if right_segment is None or left_segment == right_segment:
                        continue
                    # Merge the two segments (order is recovered at stitch
                    # time from the chain links, so concatenation order
                    # here does not matter).
                    segments[left_segment].extend(segments.pop(right_segment))
                    for member in segments[left_segment]:
                        node_to_segment[member] = left_segment
                    merged_any = True
            if not merged_any:
                break

        contigs: List[str] = []
        for member_ids in segments.values():
            nodes = [chain.nodes[node_id] for node_id in member_ids]
            merged, error = _stitch_group(nodes, graph.k)
            if merged is None or error is not None:
                continue
            if len(merged.sequence) >= self.k:
                contigs.append(merged.sequence)
        return contigs, iterations

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _estimate_seconds(self, counters: Dict[str, int]) -> float:
        """Spark/GraphX-style cost: heavy per-iteration framework overhead.

        Each sampling iteration is a full GraphX superstep with RDD
        materialisation; the paper cites measurements that GraphX is
        "often over one order of magnitude slower than tailor-made
        Pregel-like systems", which the per-iteration constants reflect.
        """
        per_edge_iteration_seconds = 2.5e-5
        iteration_overhead_seconds = 15.0
        startup_seconds = 45.0

        iterations = counters["spark_iterations"] + 2
        compute = (
            counters["graph_edges"] * iterations * per_edge_iteration_seconds
            / max(self.num_workers, 1)
        )
        return startup_seconds + iterations * iteration_overhead_seconds + compute
