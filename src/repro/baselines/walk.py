"""Sequential contig extraction shared by the baseline assemblers.

The baselines all end with some variant of "walk the maximal
unambiguous paths of a de Bruijn graph".  This module provides that
walk as a plain sequential routine (no Pregel): it derives the chain
view of the graph, groups chain nodes into connected components with a
union-find, and stitches each component with the same orientation-aware
stitcher PPA-assembler's merge operation uses — so differences between
the baselines and PPA-assembler come from the *graphs they build* and
the *error handling they skip*, not from unrelated stitching bugs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..assembler.chain import build_chain_graph
from ..assembler.merging import _stitch_group
from ..dbg.graph import DeBruijnGraph


def _union_find_components(chain_nodes: Dict[int, object]) -> Dict[int, List[int]]:
    parent: Dict[int, int] = {node_id: node_id for node_id in chain_nodes}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for node_id, node in chain_nodes.items():
        for neighbor_id in node.neighbor_ids():
            if neighbor_id in parent:
                union(node_id, neighbor_id)

    groups: Dict[int, List[int]] = {}
    for node_id in chain_nodes:
        groups.setdefault(find(node_id), []).append(node_id)
    return groups


def extract_unambiguous_contigs(
    graph: DeBruijnGraph,
    min_length: int = 0,
) -> Tuple[List[str], int]:
    """Stitch every maximal unambiguous path of ``graph`` into a contig.

    Returns ``(contig sequences, number of ambiguous vertices)``; the
    ambiguous-vertex count is a useful indicator of how fragmented the
    underlying graph is (ABySS's probing strategy inflates it).
    """
    chain = build_chain_graph(graph, include_contigs=False)
    groups = _union_find_components(chain.nodes)

    contigs: List[str] = []
    for member_ids in groups.values():
        nodes = [chain.nodes[node_id] for node_id in member_ids]
        merged, error = _stitch_group(nodes, graph.k)
        if error is not None or merged is None:
            continue
        if len(merged.sequence) >= min_length:
            contigs.append(merged.sequence)

    num_ambiguous = len(graph.ambiguous_vertices())
    return contigs, num_ambiguous
