"""ABySS-style baseline assembler.

ABySS [Simpson et al. 2009] distributes k-mers across MPI processes and
builds the de Bruijn graph by having every k-mer send messages to its
eight *possible* neighbours (each of A/C/G/T prepended or appended); an
edge is created whenever the probed k-mer exists, regardless of whether
the connecting (k+1)-mer was ever observed in a read.  Section V of the
paper points out that this inflates ambiguity — an edge appears between
"CA" and "AA" as soon as both 2-mers exist, even if "CAA" never occurs
— and therefore shortens contigs.  The same section reports that ABySS's
running time is insensitive to the number of workers (it batches
messages into 1 KB packets and is bottlenecked by its all-to-all
probing traffic), which is reflected in the cost formula below.

This reproduction implements exactly that strategy: k-mers are counted
from the reads (with the same coverage filter PPA-assembler uses, so
the comparison isolates the probing strategy), the graph is built by
probing all eight potential neighbours, unambiguous paths are stitched
into contigs, and short dangling tips are trimmed once (ABySS's
"PopBubbles/Trim" stages are far simpler than PPA-assembler's
operations; the simplification is conservative in ABySS's favour).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from ..dbg.graph import DeBruijnGraph
from ..dbg.polarity import PORT_IN, PORT_OUT
from ..dna.alphabet import NUCLEOTIDES, BASE_TO_BITS
from ..dna.encoding import canonical_encoded, decode_kmer, encode_kmer, reverse_complement_encoded
from ..dna.io_fastq import Read
from ..dna.kmer import extract_canonical_kmer_ids
from .base import BaselineAssembler, BaselineResult
from .walk import extract_unambiguous_contigs


class AbyssLikeAssembler(BaselineAssembler):
    """Distributed-hash-table DBG assembly with 8-neighbour probing."""

    name = "ABySS"

    def __init__(
        self,
        k: int = 21,
        num_workers: int = 4,
        coverage_threshold: int = 1,
        tip_length_threshold: int = 80,
        backend: str = "serial",
    ) -> None:
        super().__init__(k=k, num_workers=num_workers, backend=backend)
        self.coverage_threshold = coverage_threshold
        self.tip_length_threshold = tip_length_threshold

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self, reads: Iterable[Read]) -> BaselineResult:
        reads = list(reads)
        kmer_counts = self._count_kmers(reads)
        graph, probes = self._build_probed_graph(kmer_counts)
        ambiguous_before = len(graph.ambiguous_vertices())

        self._trim_tips(graph)
        contigs, ambiguous_after = extract_unambiguous_contigs(graph, min_length=self.k)

        counters = {
            "reads": len(reads),
            "kmers": len(kmer_counts),
            "probe_messages": probes,
            "graph_edges": graph.edge_count(),
            "ambiguous_vertices": ambiguous_before,
            "ambiguous_after_trim": ambiguous_after,
            "contigs": len(contigs),
        }
        seconds = self._estimate_seconds(counters)
        return self._result(contigs, counters, seconds)

    def _count_kmers(self, reads: List[Read]) -> Counter:
        counts: Counter = Counter()
        for read in reads:
            for kmer_id in extract_canonical_kmer_ids(read.sequence, self.k):
                counts[kmer_id] += 1
        return Counter(
            {kmer_id: count for kmer_id, count in counts.items() if count > self.coverage_threshold}
        )

    def _build_probed_graph(self, kmer_counts: Counter) -> Tuple[DeBruijnGraph, int]:
        """Create an edge for every *possible* neighbour that exists.

        Each canonical k-mer probes the four k-mers reachable by
        appending a base to its 3' end and the four reachable by
        prepending a base to its 5' end — eight messages per k-mer in
        the real system.  An edge is added when the probed canonical
        k-mer is present, which is precisely how spurious edges appear.
        """
        graph = DeBruijnGraph(self.k)
        probes = 0
        kmer_mask = (1 << (2 * self.k)) - 1
        tail_mask = (1 << (2 * (self.k - 1))) - 1

        for kmer_id, count in kmer_counts.items():
            for base_bits in range(4):
                probes += 2
                # Append to the 3' end (our PORT_OUT side).
                appended = ((kmer_id & tail_mask) << 2) | base_bits
                canonical_appended, was_rc = canonical_encoded(appended, self.k)
                if canonical_appended in kmer_counts:
                    neighbor_port = PORT_OUT if was_rc else PORT_IN
                    graph.add_edge(
                        kmer_id,
                        PORT_OUT,
                        canonical_appended,
                        neighbor_port,
                        coverage=min(count, kmer_counts[canonical_appended]),
                    )
                # Prepend to the 5' end (our PORT_IN side).
                prepended = (base_bits << (2 * (self.k - 1))) | (kmer_id >> 2)
                prepended &= kmer_mask
                canonical_prepended, was_rc = canonical_encoded(prepended, self.k)
                if canonical_prepended in kmer_counts:
                    neighbor_port = PORT_IN if was_rc else PORT_OUT
                    graph.add_edge(
                        kmer_id,
                        PORT_IN,
                        canonical_prepended,
                        neighbor_port,
                        coverage=min(count, kmer_counts[canonical_prepended]),
                    )
        return graph, probes

    def _trim_tips(self, graph: DeBruijnGraph) -> None:
        """One round of dead-end trimming (ABySS's Trim stage, simplified)."""
        max_tip_kmers = max(1, self.tip_length_threshold - self.k + 1)
        to_delete: List[int] = []
        for kmer_id, vertex in graph.kmers.items():
            if vertex.vertex_type() != "1":
                continue
            # Walk the dangling path; delete it if it is short.
            path = [kmer_id]
            current = vertex
            previous = None
            while len(path) <= max_tip_kmers:
                next_entries = [
                    adjacency
                    for adjacency in current.adjacencies
                    if adjacency.neighbor_id != previous and not adjacency.is_dead_end()
                ]
                if not next_entries:
                    break
                next_vertex = graph.kmers.get(next_entries[0].neighbor_id)
                if next_vertex is None or next_vertex.vertex_type() != "1-1":
                    break
                previous = current.kmer_id
                current = next_vertex
                path.append(current.kmer_id)
            if len(path) <= max_tip_kmers:
                to_delete.extend(path)
        for kmer_id in set(to_delete):
            graph.remove_kmer(kmer_id)

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    def _estimate_seconds(self, counters: Dict[str, int]) -> float:
        """ABySS-style cost: probing traffic does not shrink with workers.

        Every k-mer sends eight probe messages; the messages are batched
        into packets but the *aggregate* traffic a worker must absorb is
        proportional to the total k-mer count because the distributed
        hash table is touched uniformly — adding workers adds almost as
        much traffic as it removes, which is why the paper observes flat
        (or worsening) scaling.  A small per-worker coordination term
        grows with the worker count to reproduce the "more workers can
        be slower" effect.
        """
        per_message_seconds = 2.5e-4
        per_kmer_compute_seconds = 1.5e-7
        coordination_seconds_per_worker = 0.4
        startup_seconds = 60.0

        probe_seconds = counters["probe_messages"] * per_message_seconds
        compute_seconds = (
            counters["kmers"] * per_kmer_compute_seconds * 8 / max(self.num_workers, 1)
        )
        coordination = coordination_seconds_per_worker * self.num_workers
        return startup_seconds + probe_seconds + compute_seconds + coordination
