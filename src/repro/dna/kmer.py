"""Canonical k-mers and (k+1)-mer extraction from reads.

Section III of the paper: every read is cut into consecutive
``(k+1)``-mers; the prefix and suffix k-mers of each ``(k+1)``-mer
become DBG vertices and the ``(k+1)``-mer itself becomes the edge
between them.  Because reads come from either strand, a k-mer and its
reverse complement identify the same position, so DBG vertices are
*canonical* k-mers and every edge endpoint carries a polarity label
(L if the k-mer was already canonical, H if it had to be
reverse-complemented) — see :mod:`repro.dbg.polarity`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import InvalidKmerError
from .encoding import MAX_K, canonical_encoded, decode_kmer, iter_encoded_kmers
from .sequence import split_on_ambiguous


@dataclass(frozen=True)
class CanonicalKmer:
    """A canonical k-mer plus the orientation of the observation.

    Attributes
    ----------
    kmer_id:
        Packed 64-bit ID of the canonical form.
    was_reverse_complemented:
        True if the observed k-mer had to be reverse-complemented to
        obtain the canonical form — this is what determines the H/L
        polarity label of the corresponding edge endpoint.
    """

    kmer_id: int
    was_reverse_complemented: bool

    def polarity_label(self) -> str:
        """``"H"`` if the observation was the reverse complement, else ``"L"``."""
        return "H" if self.was_reverse_complemented else "L"


@dataclass(frozen=True)
class KPlusOneMer:
    """One observed (k+1)-mer: a DBG edge from its prefix to its suffix."""

    prefix: CanonicalKmer
    suffix: CanonicalKmer
    edge_id: int  # packed (k+1)-mer, as observed (not canonicalised)

    def polarity(self) -> str:
        """Edge polarity string, e.g. ``"LH"`` (⟨L:H⟩ in the paper)."""
        return self.prefix.polarity_label() + self.suffix.polarity_label()


def validate_k(k: int) -> None:
    """Raise unless ``1 <= k <= MAX_K`` (the 64-bit ID limit of Figure 7)."""
    if k < 1 or k > MAX_K:
        raise InvalidKmerError(f"k must be in [1, {MAX_K}], got {k}")


def extract_kplus1mers(read_sequence: str, k: int) -> Iterator[KPlusOneMer]:
    """Yield every (k+1)-mer of a read as prefix/suffix canonical k-mers.

    The read is first split on ``N`` (undetermined bases); fragments
    shorter than ``k + 1`` are skipped, matching the paper's remark that
    reads shorter than ``k + 1`` are ignored.
    """
    validate_k(k)
    window = k + 1
    kmer_mask = (1 << (2 * k)) - 1
    for fragment in split_on_ambiguous(read_sequence):
        if len(fragment) < window:
            continue
        for edge_id in iter_encoded_kmers(fragment, window):
            prefix_id = edge_id >> 2
            suffix_id = edge_id & kmer_mask
            prefix_canonical, prefix_rc = canonical_encoded(prefix_id, k)
            suffix_canonical, suffix_rc = canonical_encoded(suffix_id, k)
            yield KPlusOneMer(
                prefix=CanonicalKmer(prefix_canonical, prefix_rc),
                suffix=CanonicalKmer(suffix_canonical, suffix_rc),
                edge_id=edge_id,
            )


def extract_canonical_kmer_ids(read_sequence: str, k: int) -> List[int]:
    """Canonical IDs of every k-mer in a read (fragments split on ``N``)."""
    validate_k(k)
    ids: List[int] = []
    for fragment in split_on_ambiguous(read_sequence):
        if len(fragment) < k:
            continue
        for encoded in iter_encoded_kmers(fragment, k):
            canonical_id, _ = canonical_encoded(encoded, k)
            ids.append(canonical_id)
    return ids


def kmer_id_to_string(kmer_id: int, k: int) -> str:
    """Readable form of a packed canonical k-mer (delegates to decode)."""
    return decode_kmer(kmer_id, k)
