"""Packed k-mer representation and the vertex-ID formats of Figure 7.

The paper encodes every k-mer (k ≤ 31) directly into a 64-bit integer
vertex ID: each base takes two bits (A=00, C=01, G=10, T=11), the
packed bits are right-aligned, and the remaining high bits are zero.
Special IDs reuse the two most significant bits:

* ``NULL`` (Figure 7(b)) — MSB set, everything else zero; marks a
  dead-end neighbour.
* contig IDs (Figure 7(c)) — MSB set, upper 31 bits hold the worker
  index and the lower 32 bits the per-worker contig counter.
* "flipped" IDs — during contig labeling, a contig-end vertex replaces
  its edge to an ambiguous neighbour with a self-loop whose target has
  the *second* most significant bit set (Section IV-B, op ②).

Working on packed integers keeps the memory footprint close to the
paper's C++ implementation and lets reverse complementation run as a
handful of bit operations.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import InvalidKmerError
from .alphabet import BASE_TO_BITS, BITS_TO_BASE

#: Maximum k for which a k-mer fits the 62 payload bits of a 64-bit ID.
MAX_K = 31

_UINT64_MASK = (1 << 64) - 1

#: Figure 7(b): the NULL neighbour marker.
NULL_ID = 1 << 63

#: Mask of the "this is not a plain k-mer" bit (MSB).
SPECIAL_BIT = 1 << 63

#: The contig-end marker bit used during labeling (second MSB).
FLIP_BIT = 1 << 62


# ----------------------------------------------------------------------
# k-mer packing
# ----------------------------------------------------------------------
def encode_kmer(sequence: str) -> int:
    """Pack a k-mer string into its 64-bit integer ID (Figure 7(a))."""
    k = len(sequence)
    if k == 0 or k > MAX_K:
        raise InvalidKmerError(f"k must be in [1, {MAX_K}], got {k}")
    encoded = 0
    for base in sequence:
        try:
            bits = BASE_TO_BITS[base]
        except KeyError:
            raise InvalidKmerError(f"invalid base {base!r} in k-mer {sequence!r}") from None
        encoded = (encoded << 2) | bits
    return encoded


def decode_kmer(encoded: int, k: int) -> str:
    """Unpack a 64-bit k-mer ID back into its string form."""
    if k <= 0 or k > MAX_K:
        raise InvalidKmerError(f"k must be in [1, {MAX_K}], got {k}")
    if encoded & SPECIAL_BIT:
        raise InvalidKmerError("cannot decode a NULL/contig ID as a k-mer")
    bases: List[str] = []
    for shift in range(2 * (k - 1), -2, -2):
        bases.append(BITS_TO_BASE[(encoded >> shift) & 0b11])
    return "".join(bases)


def reverse_complement_encoded(encoded: int, k: int) -> int:
    """Reverse complement of a packed k-mer without decoding it.

    Complementation is a bitwise NOT under the paper's base-to-bit
    assignment; the reversal swaps 2-bit groups end to end.
    """
    complemented = (~encoded) & ((1 << (2 * k)) - 1)
    reversed_bits = 0
    for _ in range(k):
        reversed_bits = (reversed_bits << 2) | (complemented & 0b11)
        complemented >>= 2
    return reversed_bits


def canonical_encoded(encoded: int, k: int) -> Tuple[int, bool]:
    """Canonical form of a packed k-mer.

    Returns ``(canonical_id, was_reverse_complemented)``.  The paper
    defines the canonical k-mer as the lexicographically smaller of the
    k-mer and its reverse complement; under the 2-bit code the
    lexicographic order of strings coincides with the numeric order of
    the packed integers, so a plain integer comparison suffices.
    """
    rc = reverse_complement_encoded(encoded, k)
    if rc < encoded:
        return rc, True
    return encoded, False


def iter_encoded_kmers(sequence: str, k: int) -> Iterator[int]:
    """Yield the packed IDs of every k-mer in ``sequence`` (rolling encode)."""
    if len(sequence) < k:
        return
    mask = (1 << (2 * k)) - 1
    encoded = encode_kmer(sequence[:k])
    yield encoded
    for base in sequence[k:]:
        try:
            bits = BASE_TO_BITS[base]
        except KeyError:
            raise InvalidKmerError(f"invalid base {base!r} in sequence") from None
        encoded = ((encoded << 2) | bits) & mask
        yield encoded


# ----------------------------------------------------------------------
# special IDs (Figure 7(b) and 7(c))
# ----------------------------------------------------------------------
def is_null(vertex_id: int) -> bool:
    """True if ``vertex_id`` is the NULL dead-end marker."""
    return vertex_id == NULL_ID


def make_contig_id(worker_id: int, contig_order: int) -> int:
    """Contig vertex ID: MSB set, then 31 bits of worker, 32 bits of order."""
    if worker_id < 0 or worker_id >= (1 << 31):
        raise ValueError(f"worker_id must fit in 31 bits, got {worker_id}")
    if contig_order < 0 or contig_order >= (1 << 32):
        raise ValueError(f"contig_order must fit in 32 bits, got {contig_order}")
    if worker_id == 0 and contig_order == 0:
        # Would collide with NULL_ID; shift the numbering by one.
        raise ValueError("contig_order 0 on worker 0 is reserved for NULL")
    return SPECIAL_BIT | (worker_id << 32) | contig_order


def is_contig_id(vertex_id: int) -> bool:
    """True if ``vertex_id`` identifies a contig vertex (not NULL, not k-mer)."""
    return bool(vertex_id & SPECIAL_BIT) and vertex_id != NULL_ID and not (vertex_id & FLIP_BIT)


def split_contig_id(vertex_id: int) -> Tuple[int, int]:
    """Recover ``(worker_id, contig_order)`` from a contig vertex ID."""
    if not is_contig_id(vertex_id):
        raise ValueError(f"{vertex_id} is not a contig ID")
    payload = vertex_id & ~SPECIAL_BIT
    return payload >> 32, payload & 0xFFFFFFFF


def is_kmer_id(vertex_id: int) -> bool:
    """True for plain packed k-mer IDs (no special bits set)."""
    return not (vertex_id & (SPECIAL_BIT | FLIP_BIT))


def flip_id(vertex_id: int) -> int:
    """Set the contig-end marker bit (op ② uses this for self-loop targets)."""
    return vertex_id | FLIP_BIT


def unflip_id(vertex_id: int) -> int:
    """Clear the contig-end marker bit."""
    return vertex_id & ~FLIP_BIT


def is_flipped(vertex_id: int) -> bool:
    """True if the contig-end marker bit is set."""
    return bool(vertex_id & FLIP_BIT)


# ----------------------------------------------------------------------
# variable-length integers (edge coverage counts, Section IV-A)
# ----------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """LEB128-style varint used for coverage counts ("often just one byte")."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    output = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            output.append(byte | 0x80)
        else:
            output.append(byte)
            return bytes(output)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise ValueError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def encode_varint_list(values: List[int]) -> bytes:
    """Concatenated varints (the per-edge coverage list of a k-mer vertex)."""
    output = bytearray()
    for value in values:
        output.extend(encode_varint(value))
    return bytes(output)


def decode_varint_list(data: bytes, count: int) -> List[int]:
    """Decode exactly ``count`` varints from ``data``."""
    values: List[int] = []
    offset = 0
    for _ in range(count):
        value, offset = decode_varint(data, offset)
        values.append(value)
    if offset != len(data):
        raise ValueError("trailing bytes after decoding varint list")
    return values
