"""FASTQ and FASTA parsing and writing.

The paper's datasets are FASTQ files ("All the datasets are in FASTQ
format, which includes the sequence of each DNA read").  The read
simulator writes FASTQ so the full pipeline — file on disk, parse,
assemble — matches what a user of the original toolkit would do;
assembled contigs are written as FASTA, which is what QUAST consumes.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from ..errors import FastqFormatError
from .alphabet import VALID_CHARACTERS

PathOrHandle = Union[str, os.PathLike, TextIO]


@dataclass(frozen=True)
class Read:
    """One sequencing read."""

    name: str
    sequence: str
    quality: Optional[str] = None

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record (used for references and assembled contigs)."""

    name: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


def _open_for_reading(source: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_writing(target: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(target, (str, os.PathLike)):
        return open(target, "w", encoding="ascii"), True
    return target, False


# ----------------------------------------------------------------------
# FASTQ
# ----------------------------------------------------------------------
def parse_fastq(source: PathOrHandle, validate: bool = True) -> Iterator[Read]:
    """Yield :class:`Read` records from a FASTQ file or handle.

    The parser is strict about the four-line record structure but
    tolerant about quality strings (any printable ASCII); sequence
    characters are validated against A/C/G/T/N unless ``validate`` is
    False.
    """
    handle, owns_handle = _open_for_reading(source)
    try:
        line_number = 0
        while True:
            header = handle.readline()
            if not header:
                return
            line_number += 1
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise FastqFormatError(
                    f"expected '@' header, found {header[:20]!r}", line_number
                )
            sequence = handle.readline().rstrip("\n").upper()
            separator = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            line_number += 3
            if not separator.startswith("+"):
                raise FastqFormatError("missing '+' separator line", line_number - 1)
            if len(quality) != len(sequence):
                raise FastqFormatError(
                    f"quality length {len(quality)} != sequence length {len(sequence)}",
                    line_number,
                )
            if validate:
                for position, character in enumerate(sequence):
                    if character not in VALID_CHARACTERS:
                        raise FastqFormatError(
                            f"invalid sequence character {character!r} at column {position}",
                            line_number - 2,
                        )
            yield Read(name=header[1:], sequence=sequence, quality=quality)
    finally:
        if owns_handle:
            handle.close()


def write_fastq(reads: Iterable[Read], target: PathOrHandle) -> int:
    """Write reads in FASTQ format; returns the number of records written."""
    handle, owns_handle = _open_for_writing(target)
    count = 0
    try:
        for read in reads:
            quality = read.quality if read.quality is not None else "I" * len(read.sequence)
            handle.write(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
            count += 1
        return count
    finally:
        if owns_handle:
            handle.close()


# ----------------------------------------------------------------------
# FASTA
# ----------------------------------------------------------------------
def parse_fasta(source: PathOrHandle) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` items from a FASTA file or handle."""
    handle, owns_handle = _open_for_reading(source)
    try:
        name: Optional[str] = None
        chunks: List[str] = []
        for raw_line in handle:
            line = raw_line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield FastaRecord(name=name, sequence="".join(chunks).upper())
                name = line[1:].strip()
                chunks = []
            else:
                if name is None:
                    raise FastqFormatError("FASTA data before the first '>' header")
                chunks.append(line.strip())
        if name is not None:
            yield FastaRecord(name=name, sequence="".join(chunks).upper())
    finally:
        if owns_handle:
            handle.close()


def write_fasta(
    records: Iterable[FastaRecord],
    target: PathOrHandle,
    line_width: int = 80,
) -> int:
    """Write FASTA records wrapped at ``line_width``; returns record count."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    handle, owns_handle = _open_for_writing(target)
    count = 0
    try:
        for record in records:
            handle.write(f">{record.name}\n")
            sequence = record.sequence
            for start in range(0, len(sequence), line_width):
                handle.write(sequence[start : start + line_width] + "\n")
            count += 1
        return count
    finally:
        if owns_handle:
            handle.close()


def reads_from_strings(sequences: Iterable[str], prefix: str = "read") -> List[Read]:
    """Wrap raw sequence strings into :class:`Read` records (test helper)."""
    return [
        Read(name=f"{prefix}-{index}", sequence=sequence.upper())
        for index, sequence in enumerate(sequences)
    ]
