"""FASTQ and FASTA parsing and writing.

The paper's datasets are FASTQ files ("All the datasets are in FASTQ
format, which includes the sequence of each DNA read").  The read
simulator writes FASTQ so the full pipeline — file on disk, parse,
assemble — matches what a user of the original toolkit would do;
assembled contigs are written as FASTA, which is what QUAST consumes.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from ..errors import FastqFormatError
from .alphabet import VALID_CHARACTERS

PathOrHandle = Union[str, os.PathLike, TextIO]


@dataclass(frozen=True)
class Read:
    """One sequencing read."""

    name: str
    sequence: str
    quality: Optional[str] = None

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass(frozen=True)
class ReadPair:
    """One paired-end read: the two mates of a sequenced fragment.

    ``read1`` is the fragment's 5' mate (sequenced forward), ``read2``
    the 3' mate (sequenced as the reverse complement of the fragment's
    far end), so the two mates point *towards each other* — the
    standard Illumina FR ("innie") orientation that scaffolding relies
    on.
    """

    read1: Read
    read2: Read

    def __iter__(self) -> Iterator[Read]:
        yield self.read1
        yield self.read2


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record (used for references and assembled contigs)."""

    name: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


def _open_for_reading(source: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    return source, False


def _open_for_writing(target: PathOrHandle) -> tuple[TextIO, bool]:
    if isinstance(target, (str, os.PathLike)):
        return open(target, "w", encoding="ascii"), True
    return target, False


# ----------------------------------------------------------------------
# FASTQ
# ----------------------------------------------------------------------
def parse_fastq(source: PathOrHandle, validate: bool = True) -> Iterator[Read]:
    """Yield :class:`Read` records from a FASTQ file or handle.

    The parser is strict about the four-line record structure but
    tolerant about quality strings (any printable ASCII); sequence
    characters are validated against A/C/G/T/N unless ``validate`` is
    False.
    """
    handle, owns_handle = _open_for_reading(source)
    try:
        line_number = 0
        while True:
            header = handle.readline()
            if not header:
                return
            line_number += 1
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise FastqFormatError(
                    f"expected '@' header, found {header[:20]!r}", line_number
                )
            sequence = handle.readline().rstrip("\n").upper()
            separator = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            line_number += 3
            if not separator.startswith("+"):
                raise FastqFormatError("missing '+' separator line", line_number - 1)
            if len(quality) != len(sequence):
                raise FastqFormatError(
                    f"quality length {len(quality)} != sequence length {len(sequence)}",
                    line_number,
                )
            if validate:
                for position, character in enumerate(sequence):
                    if character not in VALID_CHARACTERS:
                        raise FastqFormatError(
                            f"invalid sequence character {character!r} at column {position}",
                            line_number - 2,
                        )
            yield Read(name=header[1:], sequence=sequence, quality=quality)
    finally:
        if owns_handle:
            handle.close()


def read_chunks(reads: Iterable[Read], chunk_reads: int) -> Iterator[List[Read]]:
    """Yield ``reads`` in bounded batches of at most ``chunk_reads``.

    The streaming-ingest entry point: consumers that can process reads
    batch by batch (the vectorized k-mer kernels) iterate chunks rather
    than materialising the whole dataset, so peak memory is bounded by
    the chunk size instead of the input size.  Works on any iterable —
    lists pass through in order, generators are drained lazily.
    """
    if chunk_reads <= 0:
        raise ValueError(f"chunk_reads must be positive, got {chunk_reads}")
    chunk: List[Read] = []
    for read in reads:
        chunk.append(read)
        if len(chunk) >= chunk_reads:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def parse_fastq_chunks(
    source: PathOrHandle,
    chunk_reads: int,
    validate: bool = True,
) -> Iterator[List[Read]]:
    """Parse a FASTQ file in bounded batches of at most ``chunk_reads``.

    Equivalent to ``read_chunks(parse_fastq(source), chunk_reads)`` —
    the file is read incrementally, never holding more than one chunk
    of records in memory.
    """
    return read_chunks(parse_fastq(source, validate=validate), chunk_reads)


def write_fastq(reads: Iterable[Read], target: PathOrHandle) -> int:
    """Write reads in FASTQ format; returns the number of records written."""
    handle, owns_handle = _open_for_writing(target)
    count = 0
    try:
        for read in reads:
            quality = read.quality if read.quality is not None else "I" * len(read.sequence)
            handle.write(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
            count += 1
        return count
    finally:
        if owns_handle:
            handle.close()


def _mate_base_name(name: str) -> str:
    """Strip a trailing ``/1`` / ``/2`` mate suffix from a read name."""
    if len(name) >= 2 and name[-2] == "/" and name[-1] in "12":
        return name[:-2]
    return name


def parse_paired_fastq(
    source1: PathOrHandle,
    source2: PathOrHandle,
    validate: bool = True,
) -> Iterator[ReadPair]:
    """Yield :class:`ReadPair` records from two parallel FASTQ files.

    The two files must hold the mates in the same order (the universal
    ``_1.fastq`` / ``_2.fastq`` convention).  Mate names may carry the
    ``/1`` and ``/2`` suffixes; when both do, the base names must agree
    record by record.  A length mismatch between the files is an error
    — truncated pair files silently corrupt scaffolding evidence.
    """
    iterator1 = parse_fastq(source1, validate=validate)
    iterator2 = parse_fastq(source2, validate=validate)
    index = 0
    while True:
        read1 = next(iterator1, None)
        read2 = next(iterator2, None)
        if read1 is None and read2 is None:
            return
        if read1 is None or read2 is None:
            longer = "second" if read1 is None else "first"
            raise FastqFormatError(
                f"paired FASTQ files are out of sync: the {longer} file has "
                f"more records (pair {index} has no mate)"
            )
        base1 = _mate_base_name(read1.name)
        base2 = _mate_base_name(read2.name)
        if base1 != base2:
            raise FastqFormatError(
                f"mate names disagree at pair {index}: {read1.name!r} vs {read2.name!r}"
            )
        yield ReadPair(read1=read1, read2=read2)
        index += 1


def write_paired_fastq(
    pairs: Iterable[ReadPair],
    target1: PathOrHandle,
    target2: PathOrHandle,
) -> int:
    """Write mates to two parallel FASTQ files; returns the pair count.

    Mate names are written exactly as stored; simulators already attach
    the ``/1`` / ``/2`` suffixes.
    """
    handle1, owns1 = _open_for_writing(target1)
    try:
        handle2, owns2 = _open_for_writing(target2)
        try:
            count = 0
            for pair in pairs:
                write_fastq([pair.read1], handle1)
                write_fastq([pair.read2], handle2)
                count += 1
            return count
        finally:
            if owns2:
                handle2.close()
    finally:
        if owns1:
            handle1.close()


# ----------------------------------------------------------------------
# FASTA
# ----------------------------------------------------------------------
def parse_fasta(source: PathOrHandle) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` items from a FASTA file or handle."""
    handle, owns_handle = _open_for_reading(source)
    try:
        name: Optional[str] = None
        chunks: List[str] = []
        for raw_line in handle:
            line = raw_line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield FastaRecord(name=name, sequence="".join(chunks).upper())
                name = line[1:].strip()
                chunks = []
            else:
                if name is None:
                    raise FastqFormatError("FASTA data before the first '>' header")
                chunks.append(line.strip())
        if name is not None:
            yield FastaRecord(name=name, sequence="".join(chunks).upper())
    finally:
        if owns_handle:
            handle.close()


def write_fasta(
    records: Iterable[FastaRecord],
    target: PathOrHandle,
    line_width: int = 80,
) -> int:
    """Write FASTA records wrapped at ``line_width``; returns record count."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    handle, owns_handle = _open_for_writing(target)
    count = 0
    try:
        for record in records:
            handle.write(f">{record.name}\n")
            sequence = record.sequence
            for start in range(0, len(sequence), line_width):
                handle.write(sequence[start : start + line_width] + "\n")
            count += 1
        return count
    finally:
        if owns_handle:
            handle.close()


def reads_from_strings(sequences: Iterable[str], prefix: str = "read") -> List[Read]:
    """Wrap raw sequence strings into :class:`Read` records (test helper)."""
    return [
        Read(name=f"{prefix}-{index}", sequence=sequence.upper())
        for index, sequence in enumerate(sequences)
    ]


def reads_from_pairs(pairs: Iterable[ReadPair]) -> List[Read]:
    """Flatten read pairs into the mate list the DBG stages consume.

    Mates stay adjacent in pair order — the layout every consumer
    (pipeline, CLI, bench harness) relies on.
    """
    return [read for pair in pairs for read in pair]
