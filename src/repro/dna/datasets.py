"""Named dataset profiles mirroring Table I of the paper.

The paper evaluates on four datasets:

=========================  ==========  ===============  ==================
dataset                     # reads     avg read length  reference length
=========================  ==========  ===============  ==================
Homo Sapiens Chromosome 2   4.81 M      100 bp           48,170,570
Homo Sapiens Chromosome X   9.26 M      100 bp           96,301,240
Human Chromosome 14         18.25 M     101 bp           (none published)
Bombus Impatiens            151.55 M    155 bp           (none published)
=========================  ==========  ===============  ==================

Running tens of millions of reads through a pure-Python Pregel
simulator is not feasible, so each profile is scaled down by a constant
factor while keeping the *relative* sizes, read lengths, coverage, and
the presence/absence of a reference, which is what the benchmarks rely
on (relative execution time across datasets, reference-based metrics
only for HC-2/HC-X).  The scale factor is configurable so users with
more patience can enlarge the datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .io_fastq import Read, ReadPair
from .simulator import (
    PairedReadSimulationConfig,
    PairedReadSimulator,
    ReadSimulationConfig,
    ReadSimulator,
    generate_genome,
)


@dataclass(frozen=True)
class DatasetProfile:
    """Scaled-down stand-in for one of the paper's datasets."""

    name: str
    paper_name: str
    genome_length: int
    read_length: int
    coverage: float
    error_rate: float
    repeat_fraction: float
    has_reference: bool
    paper_reads_millions: float
    paper_read_length: int
    paper_reference_length: Optional[int]
    seed: int

    def expected_reads(self) -> int:
        """Approximate number of reads this profile will generate."""
        return max(1, int(round(self.coverage * self.genome_length / self.read_length)))

    def generate(self) -> Tuple[Optional[str], List[Read]]:
        """Materialise the dataset: ``(reference or None, reads)``.

        The reference genome is always generated (reads must come from
        somewhere) but is returned as ``None`` for profiles whose paper
        counterpart has no published reference, so that benchmark code
        cannot accidentally use it (Table V only reports reference-free
        metrics for this reason).
        """
        genome = generate_genome(
            length=self.genome_length,
            repeat_fraction=self.repeat_fraction,
            seed=self.seed,
        )
        simulator = ReadSimulator(
            ReadSimulationConfig(
                read_length=self.read_length,
                coverage=self.coverage,
                error_rate=self.error_rate,
                seed=self.seed + 1,
            )
        )
        reads = simulator.simulate(genome, name_prefix=self.name)
        return (genome if self.has_reference else None, reads)

    def generate_with_reference(self) -> Tuple[str, List[Read]]:
        """Like :meth:`generate` but always return the reference (for tests)."""
        genome = generate_genome(
            length=self.genome_length,
            repeat_fraction=self.repeat_fraction,
            seed=self.seed,
        )
        simulator = ReadSimulator(
            ReadSimulationConfig(
                read_length=self.read_length,
                coverage=self.coverage,
                error_rate=self.error_rate,
                seed=self.seed + 1,
            )
        )
        return genome, simulator.simulate(genome, name_prefix=self.name)

    def generate_paired(
        self,
        insert_size_mean: float = 500.0,
        insert_size_std: float = 50.0,
    ) -> Tuple[Optional[str], List[ReadPair]]:
        """Paired-end variant of :meth:`generate`.

        The paper's datasets are paired-end libraries (GAGE distributes
        HC-14 and BI as fragment + short-jump pairs) even though
        PPA-assembler only consumes the individual reads; this method
        materialises the same profile as read *pairs* so the
        scaffolding stage has insert-size evidence to work with.  The
        reference is withheld for profiles without a published one,
        exactly as in :meth:`generate`.
        """
        genome = generate_genome(
            length=self.genome_length,
            repeat_fraction=self.repeat_fraction,
            seed=self.seed,
        )
        simulator = PairedReadSimulator(
            PairedReadSimulationConfig(
                read_length=self.read_length,
                coverage=self.coverage,
                insert_size_mean=insert_size_mean,
                insert_size_std=insert_size_std,
                error_rate=self.error_rate,
                seed=self.seed + 1,
            )
        )
        pairs = simulator.simulate(genome, name_prefix=self.name)
        return (genome if self.has_reference else None, pairs)

    def table1_row(self) -> Dict[str, object]:
        """The row of Table I this profile stands in for, plus scaled values."""
        return {
            "dataset": self.paper_name,
            "paper_reads_millions": self.paper_reads_millions,
            "paper_read_length_bp": self.paper_read_length,
            "paper_reference_length": self.paper_reference_length,
            "scaled_reads": self.expected_reads(),
            "scaled_read_length_bp": self.read_length,
            "scaled_reference_length": self.genome_length,
        }


def _profile(
    name: str,
    paper_name: str,
    genome_length: int,
    read_length: int,
    coverage: float,
    has_reference: bool,
    paper_reads_millions: float,
    paper_read_length: int,
    paper_reference_length: Optional[int],
    seed: int,
    error_rate: float = 0.005,
    repeat_fraction: float = 0.04,
) -> DatasetProfile:
    return DatasetProfile(
        name=name,
        paper_name=paper_name,
        genome_length=genome_length,
        read_length=read_length,
        coverage=coverage,
        error_rate=error_rate,
        repeat_fraction=repeat_fraction,
        has_reference=has_reference,
        paper_reads_millions=paper_reads_millions,
        paper_read_length=paper_read_length,
        paper_reference_length=paper_reference_length,
        seed=seed,
    )


#: Default scaled profiles.  Relative sizes follow Table I:
#: HC-2 < HC-X < HC-14 << BI.
DEFAULT_PROFILES: Dict[str, DatasetProfile] = {
    "hc2": _profile(
        name="hc2",
        paper_name="Homo Sapiens Chromosome 2",
        genome_length=24_000,
        read_length=100,
        coverage=20.0,
        has_reference=True,
        paper_reads_millions=4.81,
        paper_read_length=100,
        paper_reference_length=48_170_570,
        seed=20,
    ),
    "hcx": _profile(
        name="hcx",
        paper_name="Homo Sapiens Chromosome X",
        genome_length=48_000,
        read_length=100,
        coverage=20.0,
        has_reference=True,
        paper_reads_millions=9.26,
        paper_read_length=100,
        paper_reference_length=96_301_240,
        seed=23,
    ),
    "hc14": _profile(
        name="hc14",
        paper_name="Human Chromosome 14",
        genome_length=90_000,
        read_length=101,
        coverage=20.0,
        has_reference=False,
        paper_reads_millions=18.25,
        paper_read_length=101,
        paper_reference_length=None,
        seed=14,
    ),
    "bi": _profile(
        name="bi",
        paper_name="Bombus Impatiens",
        genome_length=250_000,
        read_length=155,
        coverage=15.0,
        has_reference=False,
        paper_reads_millions=151.55,
        paper_read_length=155,
        paper_reference_length=None,
        seed=8,
    ),
}


def get_profile(name: str, scale: float = 1.0) -> DatasetProfile:
    """Look up a profile by name, optionally rescaling the genome length.

    ``scale`` multiplies the genome length (and therefore the read
    count at constant coverage); the benchmarks use small scales so the
    full suite runs in minutes.
    """
    try:
        base = DEFAULT_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset profile {name!r}; available: {sorted(DEFAULT_PROFILES)}"
        ) from None
    if scale == 1.0:
        return base
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    scaled_length = max(2_000, int(base.genome_length * scale))
    return DatasetProfile(
        name=base.name,
        paper_name=base.paper_name,
        genome_length=scaled_length,
        read_length=base.read_length,
        coverage=base.coverage,
        error_rate=base.error_rate,
        repeat_fraction=base.repeat_fraction,
        has_reference=base.has_reference,
        paper_reads_millions=base.paper_reads_millions,
        paper_read_length=base.paper_read_length,
        paper_reference_length=base.paper_reference_length,
        seed=base.seed,
    )


def all_profiles(scale: float = 1.0) -> List[DatasetProfile]:
    """All four paper datasets in Table I order."""
    return [get_profile(name, scale) for name in ("hc2", "hcx", "hc14", "bi")]
