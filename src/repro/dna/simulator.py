"""Synthetic genomes and an ART-like short-read simulator.

The paper's two smaller datasets were produced by running the ART read
simulator over NCBI reference chromosomes; the two larger ones are real
GAGE read sets.  Neither is available offline, so this module provides
the closest synthetic equivalent:

* :func:`generate_genome` builds a random reference sequence with a
  controllable GC content and, importantly, *repeated segments* —
  repeats are what create ambiguous (⟨m-n⟩-typed) vertices in the de
  Bruijn graph and hence bound contig length, exactly the structural
  property the assembly algorithms have to cope with.
* :class:`ReadSimulator` mimics ART's behaviour at the level that
  matters for assembly: uniform sampling of read start positions to a
  target coverage, reads drawn from both strands, per-base substitution
  errors (which create the tips and bubbles that error correction
  removes), and occasional ``N`` bases.

Every public entry point takes an explicit ``seed`` so that datasets,
and therefore benchmark outputs, are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .alphabet import NUCLEOTIDES
from .io_fastq import Read, ReadPair
from .sequence import reverse_complement

_COMPLEMENTARY_ERROR_CHOICES = {
    "A": "CGT",
    "C": "AGT",
    "G": "ACT",
    "T": "ACG",
}


def _apply_sequencing_errors(
    fragment: str,
    rng: random.Random,
    error_rate: float,
    ambiguous_rate: float,
) -> Tuple[str, int]:
    """Introduce substitution errors and occasional ``N`` bases."""
    if error_rate == 0.0 and ambiguous_rate == 0.0:
        return fragment, 0
    bases = list(fragment)
    errors = 0
    for position, base in enumerate(bases):
        roll = rng.random()
        if roll < error_rate:
            bases[position] = rng.choice(_COMPLEMENTARY_ERROR_CHOICES[base])
            errors += 1
        elif roll < error_rate + ambiguous_rate:
            bases[position] = "N"
            errors += 1
    return "".join(bases), errors


def generate_genome(
    length: int,
    gc_content: float = 0.41,
    repeat_fraction: float = 0.05,
    repeat_length: int = 200,
    seed: int = 0,
) -> str:
    """Generate a random reference genome.

    Parameters
    ----------
    length:
        Total genome length in base pairs.
    gc_content:
        Target fraction of G/C bases (human chromosomes are ≈ 0.41,
        which is the value Table IV reports for HC-2 assemblies).
    repeat_fraction:
        Fraction of the genome covered by copies of earlier segments.
        Repeats longer than k make k-mers ambiguous and are the reason
        assemblies break into contigs rather than one chromosome.
    repeat_length:
        Length of each repeated segment.
    seed:
        Random seed (the genome is fully determined by its arguments).
    """
    if length <= 0:
        raise ValueError(f"genome length must be positive, got {length}")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError(f"repeat_fraction must be in [0, 1), got {repeat_fraction}")

    rng = random.Random(seed)
    at_probability = (1.0 - gc_content) / 2.0
    gc_probability = gc_content / 2.0
    weights = [at_probability, gc_probability, gc_probability, at_probability]

    bases: List[str] = rng.choices(NUCLEOTIDES, weights=weights, k=length)
    genome = "".join(bases)

    # Paste copies of earlier segments over later positions to create
    # exact repeats.  The copies never overwrite the first
    # ``repeat_length`` bases so there is always a unique anchor.
    repeat_budget = int(length * repeat_fraction)
    if repeat_budget >= repeat_length and length > 2 * repeat_length:
        sequence = list(genome)
        placed = 0
        while placed + repeat_length <= repeat_budget:
            source_start = rng.randrange(0, length - repeat_length)
            target_start = rng.randrange(repeat_length, length - repeat_length)
            segment = sequence[source_start : source_start + repeat_length]
            sequence[target_start : target_start + repeat_length] = segment
            placed += repeat_length
        genome = "".join(sequence)
    return genome


@dataclass(frozen=True)
class ReadSimulationConfig:
    """Parameters of one simulated sequencing run."""

    read_length: int = 100
    coverage: float = 30.0
    error_rate: float = 0.01
    ambiguous_rate: float = 0.0005
    both_strands: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError(f"read_length must be positive, got {self.read_length}")
        if self.coverage <= 0:
            raise ValueError(f"coverage must be positive, got {self.coverage}")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {self.error_rate}")
        if not 0.0 <= self.ambiguous_rate < 1.0:
            raise ValueError(f"ambiguous_rate must be in [0, 1), got {self.ambiguous_rate}")


class ReadSimulator:
    """Draws error-bearing short reads from a reference genome."""

    def __init__(self, config: ReadSimulationConfig) -> None:
        self.config = config

    def number_of_reads(self, genome_length: int) -> int:
        """Reads needed to reach the target coverage on ``genome_length``."""
        return max(1, int(round(self.config.coverage * genome_length / self.config.read_length)))

    def simulate(self, genome: str, name_prefix: str = "read") -> List[Read]:
        """Generate the full simulated read set for ``genome``."""
        config = self.config
        if len(genome) < config.read_length:
            raise ValueError(
                f"genome length {len(genome)} is shorter than read length {config.read_length}"
            )
        rng = random.Random(config.seed)
        total_reads = self.number_of_reads(len(genome))
        max_start = len(genome) - config.read_length
        reads: List[Read] = []
        for index in range(total_reads):
            start = rng.randint(0, max_start)
            fragment = genome[start : start + config.read_length]
            from_reverse_strand = config.both_strands and rng.random() < 0.5
            if from_reverse_strand:
                fragment = reverse_complement(fragment)
            sequence, _errors = self._apply_errors(fragment, rng)
            strand = "-" if from_reverse_strand else "+"
            reads.append(
                Read(
                    name=f"{name_prefix}-{index}:{start}:{strand}",
                    sequence=sequence,
                    quality="I" * len(sequence),
                )
            )
        return reads

    def _apply_errors(self, fragment: str, rng: random.Random) -> Tuple[str, int]:
        config = self.config
        return _apply_sequencing_errors(
            fragment, rng, config.error_rate, config.ambiguous_rate
        )


def simulate_dataset(
    genome_length: int,
    read_length: int = 100,
    coverage: float = 30.0,
    error_rate: float = 0.01,
    repeat_fraction: float = 0.05,
    seed: int = 0,
) -> Tuple[str, List[Read]]:
    """One-call helper: generate a genome and its simulated reads."""
    genome = generate_genome(
        length=genome_length,
        repeat_fraction=repeat_fraction,
        seed=seed,
    )
    simulator = ReadSimulator(
        ReadSimulationConfig(
            read_length=read_length,
            coverage=coverage,
            error_rate=error_rate,
            seed=seed + 1,
        )
    )
    return genome, simulator.simulate(genome)


# ----------------------------------------------------------------------
# paired-end simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairedReadSimulationConfig:
    """Parameters of one simulated paired-end sequencing run.

    The fragment (insert) length is drawn from a normal distribution
    with mean ``insert_size_mean`` and standard deviation
    ``insert_size_std`` — the same model ART and wgsim use — and the
    two mates are read from the fragment's ends in FR orientation:
    mate 1 forward from the 5' end, mate 2 reverse-complemented from
    the 3' end.  ``coverage`` counts *base* coverage over both mates
    together, so the pair count is ``coverage * G / (2 * read_length)``.
    """

    read_length: int = 100
    coverage: float = 30.0
    insert_size_mean: float = 500.0
    insert_size_std: float = 50.0
    error_rate: float = 0.01
    ambiguous_rate: float = 0.0005
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError(f"read_length must be positive, got {self.read_length}")
        if self.coverage <= 0:
            raise ValueError(f"coverage must be positive, got {self.coverage}")
        if self.insert_size_mean < 2 * self.read_length:
            raise ValueError(
                f"insert_size_mean must be at least twice the read length "
                f"({2 * self.read_length}), got {self.insert_size_mean}"
            )
        if self.insert_size_std < 0:
            raise ValueError(
                f"insert_size_std must be non-negative, got {self.insert_size_std}"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {self.error_rate}")
        if not 0.0 <= self.ambiguous_rate < 1.0:
            raise ValueError(f"ambiguous_rate must be in [0, 1), got {self.ambiguous_rate}")


class PairedReadSimulator:
    """Draws error-bearing read pairs from a reference genome.

    Mate names follow the ``name/1`` / ``name/2`` convention, with the
    shared base name recording the fragment's start position, insert
    size and source strand (``prefix-index:start:insert:strand``) so
    tests can verify placements.
    """

    def __init__(self, config: PairedReadSimulationConfig) -> None:
        self.config = config

    def number_of_pairs(self, genome_length: int) -> int:
        """Pairs needed to reach the target base coverage on ``genome_length``."""
        return max(
            1,
            int(round(self.config.coverage * genome_length / (2 * self.config.read_length))),
        )

    def _draw_insert(self, rng: random.Random, genome_length: int) -> int:
        config = self.config
        ceiling = min(genome_length, int(config.insert_size_mean + 4 * config.insert_size_std))
        floor = 2 * config.read_length
        if ceiling < floor:
            raise ValueError(
                f"genome length {genome_length} cannot hold an insert of "
                f"{floor} bp (two {config.read_length} bp mates)"
            )
        insert = int(round(rng.gauss(config.insert_size_mean, config.insert_size_std)))
        return max(floor, min(ceiling, insert))

    def simulate(self, genome: str, name_prefix: str = "pair") -> List[ReadPair]:
        """Generate the full simulated pair set for ``genome``."""
        config = self.config
        if len(genome) < 2 * config.read_length:
            raise ValueError(
                f"genome length {len(genome)} is shorter than one insert "
                f"(two {config.read_length} bp mates)"
            )
        rng = random.Random(config.seed)
        total_pairs = self.number_of_pairs(len(genome))
        pairs: List[ReadPair] = []
        for index in range(total_pairs):
            insert = self._draw_insert(rng, len(genome))
            start = rng.randint(0, len(genome) - insert)
            fragment = genome[start : start + insert]
            # Sampling the fragment from the reverse strand swaps which
            # physical end each mate comes from, exactly as on a real
            # flow cell.
            from_reverse_strand = rng.random() < 0.5
            if from_reverse_strand:
                fragment = reverse_complement(fragment)
            mate1 = fragment[: config.read_length]
            mate2 = reverse_complement(fragment[-config.read_length :])
            sequence1, _ = self._apply_errors(mate1, rng)
            sequence2, _ = self._apply_errors(mate2, rng)
            strand = "-" if from_reverse_strand else "+"
            base = f"{name_prefix}-{index}:{start}:{insert}:{strand}"
            pairs.append(
                ReadPair(
                    read1=Read(name=f"{base}/1", sequence=sequence1, quality="I" * len(sequence1)),
                    read2=Read(name=f"{base}/2", sequence=sequence2, quality="I" * len(sequence2)),
                )
            )
        return pairs

    def _apply_errors(self, fragment: str, rng: random.Random) -> Tuple[str, int]:
        config = self.config
        return _apply_sequencing_errors(
            fragment, rng, config.error_rate, config.ambiguous_rate
        )


def simulate_paired_dataset(
    genome_length: int,
    read_length: int = 100,
    coverage: float = 30.0,
    insert_size_mean: float = 500.0,
    insert_size_std: float = 50.0,
    error_rate: float = 0.01,
    repeat_fraction: float = 0.05,
    repeat_length: int = 200,
    seed: int = 0,
) -> Tuple[str, List[ReadPair]]:
    """One-call helper: generate a genome and paired-end reads from it.

    Scaffolding needs a *fragmented* assembly to have anything to join,
    so ``repeat_fraction``/``repeat_length`` matter here: repeats longer
    than k break contigs, and inserts longer than the repeats are what
    lets read pairs bridge those breaks.
    """
    genome = generate_genome(
        length=genome_length,
        repeat_fraction=repeat_fraction,
        repeat_length=repeat_length,
        seed=seed,
    )
    simulator = PairedReadSimulator(
        PairedReadSimulationConfig(
            read_length=read_length,
            coverage=coverage,
            insert_size_mean=insert_size_mean,
            insert_size_std=insert_size_std,
            error_rate=error_rate,
            seed=seed + 1,
        )
    )
    return genome, simulator.simulate(genome)
