"""Nucleotide alphabet, complements, and the paper's 2-bit code.

Section IV-A of the paper fixes the encoding A=00, T=11, G=10, C=01 so
that a k-mer (k ≤ 31) packs into a 64-bit integer.  A convenient
property of this particular assignment is that complementation is a
bitwise NOT of the 2-bit code (00↔11, 01↔10), which the encoding module
exploits to reverse-complement packed k-mers without ever expanding
them back to strings.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import InvalidNucleotideError

#: Valid sequence characters.  ``N`` marks an undetermined base; reads
#: are split on ``N`` during DBG construction (Section IV-B, op ①).
NUCLEOTIDES: Tuple[str, ...] = ("A", "C", "G", "T")
AMBIGUOUS = "N"
VALID_CHARACTERS = frozenset(NUCLEOTIDES) | {AMBIGUOUS}

#: 2-bit code from the paper: A (00), C (01), G (10), T (11).
BASE_TO_BITS: Dict[str, int] = {"A": 0b00, "C": 0b01, "G": 0b10, "T": 0b11}
BITS_TO_BASE: Dict[int, str] = {bits: base for base, bits in BASE_TO_BITS.items()}

#: Watson-Crick complements.
COMPLEMENT: Dict[str, str] = {"A": "T", "T": "A", "G": "C", "C": "G", "N": "N"}

#: Translation table for fast string-level complementation.
_COMPLEMENT_TABLE = str.maketrans("ACGTN", "TGCAN")


def complement_base(base: str) -> str:
    """Complement of a single nucleotide (``A``↔``T``, ``C``↔``G``)."""
    try:
        return COMPLEMENT[base]
    except KeyError:
        raise InvalidNucleotideError(base) from None


def complement_bits(bits: int) -> int:
    """Complement of a 2-bit base code (bitwise NOT within 2 bits)."""
    return (~bits) & 0b11


def encode_base(base: str) -> int:
    """2-bit code of a nucleotide; raises on ``N`` or anything else."""
    try:
        return BASE_TO_BITS[base]
    except KeyError:
        raise InvalidNucleotideError(base) from None


def decode_base(bits: int) -> str:
    """Nucleotide for a 2-bit code."""
    return BITS_TO_BASE[bits & 0b11]


def is_valid_sequence(sequence: str, allow_ambiguous: bool = True) -> bool:
    """True if ``sequence`` only contains A/C/G/T (and optionally N)."""
    allowed = VALID_CHARACTERS if allow_ambiguous else frozenset(NUCLEOTIDES)
    return all(character in allowed for character in sequence)


def validate_sequence(sequence: str, allow_ambiguous: bool = True) -> None:
    """Raise :class:`InvalidNucleotideError` at the first bad character."""
    allowed = VALID_CHARACTERS if allow_ambiguous else frozenset(NUCLEOTIDES)
    for position, character in enumerate(sequence):
        if character not in allowed:
            raise InvalidNucleotideError(character, position)


def complement_translation_table():
    """The ``str.translate`` table used for fast reverse complements."""
    return _COMPLEMENT_TABLE
