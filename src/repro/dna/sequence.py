"""String-level DNA sequence operations.

These helpers operate on plain Python strings (``"ACGT..."``).  The
packed 2-bit representation used inside the de Bruijn graph lives in
:mod:`repro.dna.encoding`; this module is the human-readable side used
by IO, the read simulator and quality assessment.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import InvalidNucleotideError
from .alphabet import AMBIGUOUS, complement_translation_table, validate_sequence

_COMPLEMENT_TABLE = complement_translation_table()


def reverse_complement(sequence: str) -> str:
    """Reverse complement ``rc(s)`` as defined in Section III.

    ``rc(x1 x2 ... xl) = x̄l x̄(l-1) ... x̄1``; reading the opposite strand
    in the 5'→3' direction yields exactly this sequence.
    """
    return sequence.translate(_COMPLEMENT_TABLE)[::-1]


def canonical(sequence: str) -> str:
    """Lexicographically smaller of ``sequence`` and its reverse complement.

    The paper uses canonical k-mers as DBG vertex identities so that a
    k-mer and its reverse complement map to the same vertex.
    """
    rc = reverse_complement(sequence)
    return sequence if sequence <= rc else rc


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases (ignoring ``N``); 0.0 for empty input.

    Uses ``str.count`` (a C-level scan) instead of per-character
    generator passes; on benchmark-sized genomes this is ~30x faster.
    """
    if not sequence:
        return 0.0
    gc = sequence.count("G") + sequence.count("C")
    informative = len(sequence) - sequence.count(AMBIGUOUS)
    if informative == 0:
        return 0.0
    return gc / informative


def split_on_ambiguous(sequence: str) -> List[str]:
    """Split a read on ``N`` characters (op ① of the paper).

    Returns the maximal N-free fragments, dropping empty pieces, e.g.
    ``"ACNNGT"`` → ``["AC", "GT"]``.
    """
    return [fragment for fragment in sequence.split(AMBIGUOUS) if fragment]


def kmerize(sequence: str, k: int) -> Iterator[str]:
    """Yield every length-``k`` substring (sliding window, step 1)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    for start in range(len(sequence) - k + 1):
        yield sequence[start : start + k]


def overlap_concatenate(left: str, right: str, overlap: int) -> str:
    """Stitch two sequences that share ``overlap`` characters.

    Used by contig merging: consecutive k-mers on an unambiguous path
    overlap by ``k - 1`` characters, so only the non-overlapping suffix
    of ``right`` is appended.
    """
    if overlap < 0:
        raise ValueError(f"overlap must be non-negative, got {overlap}")
    if overlap > len(right):
        raise ValueError(
            f"overlap {overlap} exceeds right-hand sequence length {len(right)}"
        )
    if overlap and left[-overlap:] != right[:overlap]:
        raise ValueError(
            f"sequences do not overlap by {overlap} characters: "
            f"{left[-overlap:]!r} vs {right[:overlap]!r}"
        )
    return left + right[overlap:]


def hamming_distance(left: str, right: str) -> int:
    """Number of mismatching positions between equal-length sequences."""
    if len(left) != len(right):
        raise ValueError("hamming_distance requires equal-length sequences")
    return sum(1 for a, b in zip(left, right) if a != b)


def count_mismatches(left: str, right: str) -> Tuple[int, int]:
    """(mismatches over the common prefix length, length difference)."""
    common = min(len(left), len(right))
    mismatches = sum(1 for a, b in zip(left[:common], right[:common]) if a != b)
    return mismatches, abs(len(left) - len(right))


def edit_distance(left: str, right: str, upper_bound: int | None = None) -> int:
    """Levenshtein distance between two sequences.

    Bubble filtering only needs to know whether the distance is below a
    small threshold, so ``upper_bound`` enables the standard band
    optimisation: as soon as every entry of a DP row exceeds the bound
    the function returns ``upper_bound + 1`` ("too different"), which
    keeps the comparison linear in practice.
    """
    if left == right:
        return 0
    if upper_bound is not None and abs(len(left) - len(right)) > upper_bound:
        return upper_bound + 1
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for row, base_left in enumerate(left, start=1):
        current = [row] + [0] * len(right)
        best = row
        for column, base_right in enumerate(right, start=1):
            cost = 0 if base_left == base_right else 1
            current[column] = min(
                previous[column] + 1,        # deletion
                current[column - 1] + 1,     # insertion
                previous[column - 1] + cost,  # substitution / match
            )
            if current[column] < best:
                best = current[column]
        if upper_bound is not None and best > upper_bound:
            return upper_bound + 1
        previous = current
    return previous[-1]


def ensure_valid(sequence: str, allow_ambiguous: bool = True) -> str:
    """Validate and return ``sequence`` (fluent helper for constructors)."""
    validate_sequence(sequence, allow_ambiguous=allow_ambiguous)
    return sequence
