"""NumPy batch kernels for the k-mer pipeline.

The scalar encoders in :mod:`repro.dna.encoding` process one base per
Python bytecode loop iteration; at benchmark scale the DBG-construction
phase spends almost all of its time there.  This module provides the
same operations as array kernels over whole *batches* of reads: bases
are mapped to the paper's 2-bit code with a 256-entry lookup table,
(k+1)-mer windows are packed into ``uint64`` lanes with k shift-or
passes, and reverse complementation is the classic 2-bit-group reversal
bit-twiddle — no per-base Python loops anywhere.

Every kernel is bit-identical to its scalar counterpart (the property
tests in ``tests/dna/test_vectorized_parity.py`` assert this on random
reads), so callers may switch between the two freely; the scalar
implementations remain the reference oracle.

NumPy is an optional dependency: importing this module never raises,
and callers gate on :func:`numpy_available` (e.g.
``AssemblyConfig.use_vectorized`` silently falls back to the scalar
path when NumPy is missing).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidKmerError

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except Exception:  # pragma: no cover - containers without numpy
    np = None  # type: ignore[assignment]

#: Largest window that fits a 64-bit lane.  Construction canonicalises
#: (k+1)-mers, so with MAX_K = 31 windows go up to 32 bases.
MAX_WINDOW = 32

#: Code assigned to ``N`` (and the read separator) in the base LUT:
#: any code >= 4 breaks a sliding window, mirroring the scalar path's
#: split-on-N semantics.
_BREAK_CODE = 4

#: LUT slot for characters that are invalid even as separators.
_INVALID_CODE = 255


def numpy_available() -> bool:
    """True when the NumPy-backed kernels can run in this interpreter."""
    return np is not None


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "NumPy is required for the vectorized k-mer kernels; "
            "install numpy or use the scalar path"
        )


def _base_lut():
    """256-entry ASCII -> 2-bit-code table (cached on first use)."""
    lut = getattr(_base_lut, "_cache", None)
    if lut is None:
        lut = np.full(256, _INVALID_CODE, dtype=np.uint8)
        for base, bits in (("A", 0), ("C", 1), ("G", 2), ("T", 3)):
            lut[ord(base)] = bits
        lut[ord("N")] = _BREAK_CODE
        _base_lut._cache = lut
    return lut


def encode_batch(sequences: Sequence[str]):
    """Encode a batch of reads into one contiguous code array.

    Reads are joined with an ``N`` separator (which breaks sliding
    windows exactly like a real undetermined base, so windows never
    span reads).  Returns ``(codes, starts, lengths)`` where ``codes``
    is the uint8 code array of the joined text, ``starts[i]`` is the
    offset of read ``i`` inside it, and ``lengths[i]`` its length.

    Raises :class:`~repro.errors.InvalidKmerError` on any character
    outside ``ACGTN``, matching the scalar encoders.
    """
    _require_numpy()
    joined = "N".join(sequences)
    try:
        raw = np.frombuffer(joined.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError as exc:
        raise InvalidKmerError(f"invalid non-ASCII base in read batch: {exc}") from None
    codes = _base_lut()[raw]
    if codes.size and codes.max() == _INVALID_CODE:
        bad = joined[int(np.argmax(codes == _INVALID_CODE))]
        raise InvalidKmerError(f"invalid base {bad!r} in read batch")
    lengths = np.fromiter(
        (len(sequence) for sequence in sequences), dtype=np.int64, count=len(sequences)
    )
    starts = np.zeros(len(sequences) + 1, dtype=np.int64)
    if len(sequences):
        np.cumsum(lengths + 1, out=starts[1:])
    return codes, starts[:-1], lengths


def sliding_window_ids(codes, window: int):
    """Packed IDs of every length-``window`` window of a code array.

    Returns ``(ids, valid)``: ``ids[i]`` packs the 2-bit codes of
    ``codes[i : i + window]`` (garbage where the window contains a
    break/N — always check ``valid``), and ``valid[i]`` is True when
    the window contains only A/C/G/T codes.
    """
    _require_numpy()
    if not 1 <= window <= MAX_WINDOW:
        raise InvalidKmerError(f"window must be in [1, {MAX_WINDOW}], got {window}")
    num_windows = codes.size - window + 1
    if num_windows <= 0:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=bool)
    lanes = (codes & np.uint8(3)).astype(np.uint64)
    ids = np.zeros(num_windows, dtype=np.uint64)
    for offset in range(window):
        ids = (ids << np.uint64(2)) | lanes[offset : offset + num_windows]
    breaks = np.zeros(codes.size + 1, dtype=np.int64)
    np.cumsum(codes >= _BREAK_CODE, out=breaks[1:])
    valid = (breaks[window:] - breaks[:-window]) == 0
    return ids, valid


def extract_window_ids(sequences: Sequence[str], window: int):
    """Observed packed window IDs of every read, plus per-read counts.

    Mirrors the scalar pipeline ``split_on_ambiguous`` +
    :func:`~repro.dna.encoding.iter_encoded_kmers` exactly: windows
    containing ``N`` are dropped, fragments shorter than ``window``
    contribute nothing, and the IDs are emitted in read order, then
    position order.  Returns ``(ids, counts)`` with
    ``counts[i] == number of windows emitted by read i``.
    """
    _require_numpy()
    codes, starts, lengths = encode_batch(sequences)
    ids, valid = sliding_window_ids(codes, window)
    num_windows = ids.size
    emitted = ids[valid]
    prefix = np.zeros(num_windows + 1, dtype=np.int64)
    if num_windows:
        np.cumsum(valid, out=prefix[1:])
    low = np.minimum(starts, num_windows)
    high = np.minimum(starts + lengths, num_windows)
    counts = prefix[high] - prefix[low]
    return emitted, counts


def reverse_complement_ids(ids, k: int):
    """Vectorized :func:`~repro.dna.encoding.reverse_complement_encoded`.

    Complementation is a bitwise NOT under the paper's base code; the
    reversal swaps 2-bit groups with five mask-and-shift rounds over
    the full 64-bit lane, then right-aligns the result.
    """
    _require_numpy()
    if not 1 <= k <= MAX_WINDOW:
        raise InvalidKmerError(f"k must be in [1, {MAX_WINDOW}], got {k}")
    ids = ids.astype(np.uint64, copy=False)
    payload_mask = np.uint64(((1 << (2 * k)) - 1) & 0xFFFFFFFFFFFFFFFF)
    x = (~ids) & payload_mask
    pairs = np.uint64(0x3333333333333333)
    x = ((x >> np.uint64(2)) & pairs) | ((x & pairs) << np.uint64(2))
    nibbles = np.uint64(0x0F0F0F0F0F0F0F0F)
    x = ((x >> np.uint64(4)) & nibbles) | ((x & nibbles) << np.uint64(4))
    bytes_ = np.uint64(0x00FF00FF00FF00FF)
    x = ((x >> np.uint64(8)) & bytes_) | ((x & bytes_) << np.uint64(8))
    shorts = np.uint64(0x0000FFFF0000FFFF)
    x = ((x >> np.uint64(16)) & shorts) | ((x & shorts) << np.uint64(16))
    x = (x >> np.uint64(32)) | (x << np.uint64(32))
    return x >> np.uint64(64 - 2 * k)


def canonical_ids(ids, k: int):
    """Vectorized :func:`~repro.dna.encoding.canonical_encoded`.

    Returns ``(canonical, was_reverse_complemented)``; the boolean
    array carries the H/L polarity information of each observation.
    """
    _require_numpy()
    rc = reverse_complement_ids(ids, k)
    was_rc = rc < ids
    return np.where(was_rc, rc, ids), was_rc


def extract_canonical_window_ids(sequences: Sequence[str], window: int):
    """Canonical window IDs per read batch: ``(canonical_ids, counts)``."""
    observed, counts = extract_window_ids(sequences, window)
    canonical, _ = canonical_ids(observed, window)
    return canonical, counts


def edge_vertex_fields(edge_ids, k: int):
    """Decompose packed (k+1)-mer edges into phase-(ii) vertex fields.

    For each edge this computes everything the scalar phase-(ii) map
    UDF derives per record: the canonical prefix/suffix k-mer IDs,
    their reverse-complement flags (the polarity labels), and the
    appended/prepended bases.  Returns a dict of parallel arrays.
    """
    _require_numpy()
    edge_ids = edge_ids.astype(np.uint64, copy=False)
    kmer_mask = np.uint64((1 << (2 * k)) - 1)
    prefix_observed = edge_ids >> np.uint64(2)
    suffix_observed = edge_ids & kmer_mask
    prefix_id, prefix_rc = canonical_ids(prefix_observed, k)
    suffix_id, suffix_rc = canonical_ids(suffix_observed, k)
    return {
        "prefix_id": prefix_id,
        "suffix_id": suffix_id,
        "prefix_rc": prefix_rc,
        "suffix_rc": suffix_rc,
        "appended_base": (edge_ids & np.uint64(3)).astype(np.int64),
        "prepended_base": ((edge_ids >> np.uint64(2 * k)) & np.uint64(3)).astype(np.int64),
    }
