"""Paired-end scaffolding: the first workload built *on top of* the assembler.

PPA-assembler (the paper) stops at contig construction, but every
system it benchmarks against — ABySS, Ray, SWAP-Assembler — continues
to a *scaffolding* stage: paired-end reads whose two mates land on
different contigs reveal which contigs are adjacent in the genome, how
far apart they are (via the library's insert-size model), and in which
relative orientation.  This package adds that stage as a PPA workload:

* :mod:`repro.scaffold.mapping` — maps reads back onto the assembled
  contigs with unique seed k-mers (the contigs themselves become the
  reference);
* :mod:`repro.scaffold.links` — turns mapped pairs into contig-link
  evidence (which contig *ends* face each other, estimated gap) and
  bundles/filters it into a contig-link graph;
* :mod:`repro.scaffold.scaffolder` — runs the link graph through the
  PPA toolkit as a Pregel job chain: Hash-Min connected components
  (:mod:`repro.ppa.hash_min`) finds the scaffold membership, list
  ranking (:mod:`repro.ppa.list_ranking`) orders the contigs inside
  each scaffold path, and the stitcher emits gap-padded (``N``-run)
  scaffold sequences.

The contig-link graph is the second graph *type* the PPA toolkit runs
on — its vertices are the assembler's own output contigs rather than
k-mers — which is exactly the "PPAs compose into new workloads" claim
of the paper's toolkit design.

Quickstart::

    from repro import AssemblyConfig, PPAAssembler
    from repro.dna import simulate_paired_dataset

    genome, pairs = simulate_paired_dataset(40_000, insert_size_mean=600, seed=5)
    config = AssemblyConfig(k=21, scaffold=True)
    result = PPAAssembler(config).assemble_paired(pairs)
    print(len(result.contigs), "contigs ->", len(result.scaffolds), "scaffolds")
"""

from .links import (
    END_HEAD,
    END_TAIL,
    LinkBundle,
    PairLinkObservation,
    estimate_insert_size,
    select_links,
)
from .mapping import ContigSeedIndex, ReadMapping
from .scaffolder import (
    DEFAULT_INSERT_SIZE,
    Scaffold,
    ScaffoldMember,
    ScaffoldingResult,
    build_scaffolding_workflow,
    scaffold_contigs,
)

__all__ = [
    "END_HEAD",
    "END_TAIL",
    "LinkBundle",
    "PairLinkObservation",
    "estimate_insert_size",
    "select_links",
    "ContigSeedIndex",
    "ReadMapping",
    "DEFAULT_INSERT_SIZE",
    "Scaffold",
    "ScaffoldMember",
    "ScaffoldingResult",
    "build_scaffolding_workflow",
    "scaffold_contigs",
]
