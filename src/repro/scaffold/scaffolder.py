"""The scaffolding stage: contig-link graph → ordered, gap-padded scaffolds.

:func:`build_scaffolding_workflow` declares the stage as a
:class:`~repro.workflow.Workflow` — the library's second in-tree
workflow after the assembly itself — and :func:`scaffold_contigs` is
the one-call driver that executes it.  Either way every sub-stage runs
through a :class:`~repro.workflow.executor.StageExecutor`, so it is
metered by the same cost model as the assembly operations:

1. **map pairs** — both mates of every pair are placed on the contigs
   (:class:`~repro.scaffold.mapping.ContigSeedIndex`); same-contig
   pairs calibrate the insert size, cross-contig pairs become link
   observations;
2. **bundle links** — a mini-MapReduce keyed by contig-end pair
   aggregates observations into :class:`~repro.scaffold.links.LinkBundle`
   records, then :func:`~repro.scaffold.links.select_links` keeps at
   most one well-supported link per contig end;
3. **scaffold components** — a Pregel job reusing
   :class:`~repro.ppa.hash_min.HashMinVertex` floods component labels
   over the link graph: every contig learns which scaffold it belongs
   to;
4. **scaffold ordering** — a Pregel job reusing the list-ranking PPA
   (:mod:`repro.ppa.list_ranking`): each contig's predecessor pointer
   is its left neighbour in the scaffold path, and the computed rank
   is its 1-based position in the scaffold;
5. **emission** — contigs are stitched in rank order, reverse
   complemented where the link orientation demands it, with runs of
   ``N`` sized by the bundles' gap estimates between them.

Steps 3 and 4 are deliberately the paper's PPAs run unchanged on a new
graph type (vertices are contigs, not k-mers): connected components is
an O(δ) flood over the tiny link graph, and list ranking keeps the
O(log n) superstep bound even for very long scaffold paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dna.io_fastq import FastaRecord, ReadPair, write_fasta
from ..dna.sequence import reverse_complement
from ..pregel import PregelJob, min_combiner
from ..ppa.hash_min import HashMinVertex
from ..workflow import (
    BranchStage,
    ConvertStage,
    MapReduceStage,
    PregelStage,
    Workflow,
    WorkflowRunner,
)
from ..ppa.list_ranking import ListNode, build_vertices, ranks_from_result
from .links import (
    END_HEAD,
    END_TAIL,
    EndId,
    LinkBundle,
    PairLinkObservation,
    estimate_insert_size,
    observe_pair,
    observed_insert_size,
    select_links,
)
from .mapping import ContigSeedIndex, ReadMapping

#: Gap estimate used when no insert size is configured and no
#: same-contig pair could calibrate one (matches the default library of
#: :class:`~repro.dna.simulator.PairedReadSimulationConfig`).
DEFAULT_INSERT_SIZE = 500.0

#: Emitted gaps are at least this many ``N`` bases, so a scaffold join
#: is always visible in the sequence even when contigs abut or the gap
#: estimate dips negative.
MIN_GAP_RUN = 1


@dataclass(frozen=True)
class ScaffoldMember:
    """One contig placed inside a scaffold."""

    contig: int  # index into the scaffolder's deterministic contig order
    forward: bool
    gap_before: int  # N-run separating this member from the previous one
    position: int  # 1-based rank inside the scaffold (from list ranking)


@dataclass
class Scaffold:
    """An ordered, oriented chain of contigs with gap estimates."""

    members: List[ScaffoldMember]
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass
class ScaffoldingResult:
    """Everything produced by the scaffolding stage."""

    contigs: List[str]  # the deterministic contig order the members index
    scaffolds: List[Scaffold]
    insert_size: float
    num_pairs: int
    num_pairs_mapped: int
    num_cross_links: int  # cross-contig observations before bundling
    num_links_selected: int  # bundles surviving select_links
    num_links_used: int = 0  # joins actually walked (differs on broken cycles)
    used_cycle_break: bool = False

    @property
    def sequences(self) -> List[str]:
        """All scaffold sequences, longest first."""
        return sorted(
            (scaffold.sequence for scaffold in self.scaffolds), key=len, reverse=True
        )

    def sequences_longer_than(self, min_length: int) -> List[str]:
        return [sequence for sequence in self.sequences if len(sequence) >= min_length]

    def num_joined(self) -> int:
        """Scaffolds made of more than one contig."""
        return sum(1 for scaffold in self.scaffolds if len(scaffold.members) > 1)

    def write_fasta(self, path) -> int:
        """Write the scaffolds to a FASTA file; returns the record count."""
        records = [
            FastaRecord(name=f"scaffold_{index}_len_{len(sequence)}", sequence=sequence)
            for index, sequence in enumerate(self.sequences)
        ]
        return write_fasta(records, path)


# ----------------------------------------------------------------------
# link construction
# ----------------------------------------------------------------------
def _map_pairs(
    pairs: Sequence[ReadPair],
    index: ContigSeedIndex,
) -> List[Tuple[ReadMapping, ReadMapping, int, int]]:
    """Both-mates-mapped pairs as (mapping1, mapping2, len1, len2)."""
    mapped = []
    for pair in pairs:
        mapping1 = index.map_read(pair.read1.sequence)
        if mapping1 is None:
            continue
        mapping2 = index.map_read(pair.read2.sequence)
        if mapping2 is None:
            continue
        mapped.append((mapping1, mapping2, len(pair.read1), len(pair.read2)))
    return mapped


def _map_observation(observation: PairLinkObservation):
    yield observation.key, observation.gap


def _reduce_bundle(key, gaps: List[float]):
    contig_a, end_a, contig_b, end_b = key
    yield LinkBundle(
        contig_a=contig_a,
        end_a=end_a,
        contig_b=contig_b,
        end_b=end_b,
        count=len(gaps),
        mean_gap=sum(gaps) / len(gaps),
    )


# ----------------------------------------------------------------------
# path orientation
# ----------------------------------------------------------------------
def _orient_paths(
    num_contigs: int,
    links: List[LinkBundle],
) -> Tuple[Dict[int, Optional[int]], Dict[int, bool], Dict[int, int], int, bool]:
    """Walk every link path, fixing orientation and predecessor pointers.

    Returns ``(predecessor, forward, gap_before, links_used,
    used_cycle_break)``.  A path is walked from its deterministically
    chosen head (the endpoint contig with the smaller index); the head
    is oriented so that its linked end faces right, and each subsequent
    contig so that its linked end faces left — reverse complementing
    whenever the link attaches to the "wrong" physical end.  Pure
    cycles (every end linked) are broken at their smallest contig's
    head-side link so they degrade to a path instead of failing.
    """
    partner: Dict[EndId, Tuple[int, int, float]] = {}
    for bundle in links:
        partner[(bundle.contig_a, bundle.end_a)] = (
            bundle.contig_b, bundle.end_b, bundle.mean_gap,
        )
        partner[(bundle.contig_b, bundle.end_b)] = (
            bundle.contig_a, bundle.end_a, bundle.mean_gap,
        )

    degree = [0] * num_contigs
    for bundle in links:
        degree[bundle.contig_a] += 1
        degree[bundle.contig_b] += 1

    predecessor: Dict[int, Optional[int]] = {}
    forward: Dict[int, bool] = {}
    gap_before: Dict[int, int] = {}
    links_used = 0
    used_cycle_break = False
    visited = [False] * num_contigs

    def walk(head: int, entry_end: int) -> None:
        """Lay out one path left to right starting at ``head``.

        ``entry_end`` is the head's end facing left (unlinked for true
        path heads, the broken side for cycle breaks).
        """
        nonlocal links_used
        current, current_entry = head, entry_end
        predecessor[head] = None
        previous: Optional[int] = None
        while True:
            visited[current] = True
            forward[current] = current_entry == END_HEAD
            if previous is not None:
                predecessor[current] = previous
            exit_end = END_TAIL if current_entry == END_HEAD else END_HEAD
            hop = partner.get((current, exit_end))
            if hop is None:
                return
            next_contig, next_end, gap = hop
            if visited[next_contig]:
                return
            links_used += 1
            gap_before[next_contig] = max(MIN_GAP_RUN, int(round(gap)))
            previous, current, current_entry = current, next_contig, next_end

    # Path heads first: a head's single linked end faces right, so the
    # unlinked end is its entry side.
    for contig in range(num_contigs):
        if visited[contig] or degree[contig] != 1:
            continue
        linked_end = END_TAIL if (contig, END_TAIL) in partner else END_HEAD
        entry_end = END_HEAD if linked_end == END_TAIL else END_TAIL
        # Walk only from the smaller-index endpoint: if the far endpoint
        # has a smaller index the path is (or will be) walked from there.
        other_endpoint = _far_endpoint(contig, entry_end, partner)
        if other_endpoint < contig:
            continue
        walk(contig, entry_end)

    # Remaining unvisited linked contigs sit on pure cycles: break each
    # at its smallest contig by ignoring that contig's head-side link.
    for contig in range(num_contigs):
        if visited[contig] or degree[contig] == 0:
            continue
        used_cycle_break = True
        walk(contig, END_HEAD)

    # Singletons (no links at all).
    for contig in range(num_contigs):
        if degree[contig] == 0:
            predecessor[contig] = None
            forward[contig] = True

    return predecessor, forward, gap_before, links_used, used_cycle_break


def _far_endpoint(
    head: int,
    entry_end: int,
    partner: Dict[EndId, Tuple[int, int, float]],
) -> int:
    """Index of the contig at the other end of ``head``'s path."""
    current, current_entry = head, entry_end
    seen = {head}
    while True:
        exit_end = END_TAIL if current_entry == END_HEAD else END_HEAD
        hop = partner.get((current, exit_end))
        if hop is None:
            return current
        next_contig, next_end, _gap = hop
        if next_contig in seen:
            return current
        seen.add(next_contig)
        current, current_entry = next_contig, next_end


# ----------------------------------------------------------------------
# the workflow stages
#
# Stage bodies read and write the workflow context's state; the two
# Pregel jobs are declared as PregelStage descriptors so the metered
# job boundary is visible in the DAG itself.
# ----------------------------------------------------------------------
def _stage_map_pairs(ctx) -> None:
    """Map both mates of every pair; calibrate the insert size."""
    ordered = sorted(
        ctx.require("contigs"), key=lambda sequence: (-len(sequence), sequence)
    )
    pair_list = ctx.require("pairs")
    insert_size = ctx.require("insert_size")
    contig_lengths = [len(sequence) for sequence in ordered]

    mapped: List[Tuple[ReadMapping, ReadMapping, int, int]] = []
    if ordered:
        index = ContigSeedIndex(ordered, seed_k=ctx.require("seed_k"))
        mapped = _map_pairs(pair_list, index)

    if insert_size is None:
        estimates = []
        for mapping1, mapping2, length1, length2 in mapped:
            observed = observed_insert_size(mapping1, mapping2, length1, length2)
            if observed is not None:
                estimates.append(observed)
        insert_size = estimate_insert_size(estimates) or DEFAULT_INSERT_SIZE

    observations: List[PairLinkObservation] = []
    for mapping1, mapping2, length1, length2 in mapped:
        observation = observe_pair(
            mapping1, mapping2, length1, length2, contig_lengths, insert_size
        )
        if observation is not None:
            observations.append(observation)

    ctx.state.update(
        ordered=ordered,
        num_pairs_mapped=len(mapped),
        insert_size=insert_size,
        observations=observations,
        links=[],
    )


def _has_observations(ctx) -> bool:
    return bool(ctx.state.get("observations"))


def _stage_select_links(ctx) -> List[LinkBundle]:
    """Keep at most one well-supported link per contig end."""
    bundles = list(ctx.require("bundles").outputs)
    return select_links(bundles, min_support=ctx.require("min_links"))


def _has_links(ctx) -> bool:
    return bool(ctx.state.get("links"))


def _components_job(ctx) -> PregelJob:
    """Scaffold membership via Hash-Min over the contig-link graph.

    The link graph's diameter is the longest scaffold path, so the
    O(δ)-superstep Hash-Min flood is acceptable here (unlike on the de
    Bruijn graph, whose paths are millions of vertices long — the
    reason operation ② never uses it).
    """
    links: List[LinkBundle] = ctx.require("links")
    num_contigs = len(ctx.require("ordered"))
    adjacency: Dict[int, List[int]] = {contig: [] for contig in range(num_contigs)}
    for bundle in links:
        adjacency[bundle.contig_a].append(bundle.contig_b)
        adjacency[bundle.contig_b].append(bundle.contig_a)
    vertices = [
        HashMinVertex(contig, value=contig, edges=sorted(set(neighbors)))
        for contig, neighbors in adjacency.items()
    ]
    return PregelJob(
        name="scaffolding/components-hash-min",
        vertices=vertices,
        combiner=min_combiner(),
    )


def _collect_components(ctx, result) -> Dict[int, int]:
    return {contig: vertex.value for contig, vertex in result.vertices.items()}


def _stage_orient(ctx) -> None:
    """Fix every contig's orientation and predecessor pointer."""
    predecessor, forward, gap_before, links_used, used_cycle_break = _orient_paths(
        len(ctx.require("ordered")), ctx.require("links")
    )
    ctx.state.update(
        predecessor=predecessor,
        forward=forward,
        gap_before=gap_before,
        num_links_used=links_used,
        used_cycle_break=used_cycle_break,
    )


def _ordering_job(ctx) -> PregelJob:
    """Position of every contig in its scaffold path via list ranking.

    Each contig's value is 1 and its predecessor pointer is its left
    neighbour, so the prefix sum computed by the list-ranking PPA is
    exactly the 1-based position — in O(log n) supersteps even for
    scaffolds spanning a whole chromosome arm.
    """
    nodes = [
        ListNode(node_id=contig, value=1.0, predecessor=predecessor)
        for contig, predecessor in ctx.require("predecessor").items()
    ]
    return PregelJob(
        name="scaffolding/ordering-list-ranking", vertices=build_vertices(nodes)
    )


def _collect_ranks(ctx, result) -> Dict[int, int]:
    return {contig: int(rank) for contig, rank in ranks_from_result(result).items()}


def _stage_emit(ctx) -> ScaffoldingResult:
    """Stitch contigs in rank order with N-gap runs between them."""
    ordered: List[str] = ctx.require("ordered")
    links: List[LinkBundle] = ctx.require("links")
    components: Dict[int, int] = ctx.require("components")
    ranks: Dict[int, int] = ctx.require("ranks")
    forward: Dict[int, bool] = ctx.require("forward")
    gap_before: Dict[int, int] = ctx.require("gap_before")

    grouped: Dict[int, List[int]] = {}
    for contig in range(len(ordered)):
        grouped.setdefault(components[contig], []).append(contig)

    scaffolds: List[Scaffold] = []
    for label in sorted(grouped):
        members_by_rank = sorted(grouped[label], key=lambda contig: ranks[contig])
        members: List[ScaffoldMember] = []
        parts: List[str] = []
        for position_index, contig in enumerate(members_by_rank):
            gap = 0 if position_index == 0 else gap_before.get(contig, MIN_GAP_RUN)
            members.append(
                ScaffoldMember(
                    contig=contig,
                    forward=forward[contig],
                    gap_before=gap,
                    position=ranks[contig],
                )
            )
            oriented = ordered[contig] if forward[contig] else reverse_complement(ordered[contig])
            if gap:
                parts.append("N" * gap)
            parts.append(oriented)
        scaffolds.append(Scaffold(members=members, sequence="".join(parts)))

    return ScaffoldingResult(
        contigs=ordered,
        scaffolds=scaffolds,
        insert_size=ctx.require("insert_size"),
        num_pairs=len(ctx.require("pairs")),
        num_pairs_mapped=ctx.require("num_pairs_mapped"),
        num_cross_links=len(ctx.require("observations")),
        num_links_selected=len(links),
        num_links_used=ctx.require("num_links_used"),
        used_cycle_break=ctx.require("used_cycle_break"),
    )


def _stage_emit_singletons(ctx) -> ScaffoldingResult:
    """No trusted links: every contig is its own single-member scaffold."""
    ordered: List[str] = ctx.require("ordered")
    insert_size = ctx.require("insert_size")
    scaffolds = [
        Scaffold(
            members=[ScaffoldMember(contig=i, forward=True, gap_before=0, position=1)],
            sequence=sequence,
        )
        for i, sequence in enumerate(ordered)
    ]
    return ScaffoldingResult(
        contigs=ordered,
        scaffolds=scaffolds,
        insert_size=insert_size or DEFAULT_INSERT_SIZE,
        num_pairs=len(ctx.require("pairs")),
        num_pairs_mapped=ctx.require("num_pairs_mapped"),
        num_cross_links=len(ctx.require("observations")),
        num_links_selected=0,
    )


def build_scaffolding_workflow() -> Workflow:
    """Declare the scaffolding stage as a workflow DAG.

    The two decision points of the stage — "any cross-contig evidence?"
    and "any links that survived filtering?" — are
    :class:`~repro.workflow.BranchStage` nodes, so a run on a library
    with no usable pairing degrades to singleton scaffolds without
    charging the cost model for jobs that never ran.  Expected initial
    state keys: ``contigs``, ``pairs``, ``seed_k``, ``min_links``,
    ``insert_size`` (``None`` = self-calibrate); the final
    :class:`ScaffoldingResult` lands under ``scaffolding``.
    """
    workflow = Workflow(
        "scaffolding",
        description="read pairs → contig links → ordered gap-padded scaffolds",
    )
    workflow.add(ConvertStage("scaffolding/map-pairs", _stage_map_pairs))
    workflow.add(
        BranchStage(
            "scaffolding/bundle",
            condition=_has_observations,
            then_stages=[
                MapReduceStage(
                    "scaffolding/link-bundling",
                    records="observations",
                    map_fn=_map_observation,
                    reduce_fn=_reduce_bundle,
                    output="bundles",
                ),
                ConvertStage(
                    "scaffolding/select-links", _stage_select_links, output="links"
                ),
            ],
        )
    )
    workflow.add(
        BranchStage(
            "scaffolding/layout",
            condition=_has_links,
            then_stages=[
                PregelStage(
                    "scaffolding/components-hash-min",
                    job_factory=_components_job,
                    collect=_collect_components,
                    output="components",
                ),
                ConvertStage("scaffolding/orient-paths", _stage_orient),
                PregelStage(
                    "scaffolding/ordering-list-ranking",
                    job_factory=_ordering_job,
                    collect=_collect_ranks,
                    output="ranks",
                ),
                ConvertStage("scaffolding/emit", _stage_emit, output="scaffolding"),
            ],
            else_stages=[
                ConvertStage(
                    "scaffolding/emit-singletons",
                    _stage_emit_singletons,
                    output="scaffolding",
                ),
            ],
        )
    )
    return workflow


# ----------------------------------------------------------------------
# the stage driver
# ----------------------------------------------------------------------
def scaffold_contigs(
    contigs: Iterable[str],
    pairs: Iterable[ReadPair],
    executor,
    seed_k: int = 21,
    min_links: int = 2,
    insert_size: Optional[float] = None,
    checkpoint_dir=None,
    resume: bool = False,
    hooks=None,
) -> ScaffoldingResult:
    """Run the full scaffolding workflow over assembled contigs.

    Parameters
    ----------
    contigs:
        The assembled contig sequences (any order; they are re-sorted
        into a deterministic content-based order internally).
    pairs:
        The paired-end reads the contigs were assembled from.
    executor:
        The :class:`~repro.workflow.executor.StageExecutor` (or
        :class:`~repro.workflow.runner.WorkflowContext`) the Pregel /
        mini-MapReduce stages run on — sharing the assembly's executor
        makes the stage show up in the same pipeline metrics and run on
        the same execution backend.
    seed_k:
        Seed length for read-to-contig mapping (the assembly k is a
        natural choice).
    min_links:
        Minimum number of supporting pairs before a contig link is
        trusted.
    insert_size:
        The library's insert size; when None it is estimated as the
        median fragment length over pairs whose mates map to the same
        contig, falling back to :data:`DEFAULT_INSERT_SIZE` when no
        such pair exists.
    checkpoint_dir / resume / hooks:
        Passed to the underlying
        :class:`~repro.workflow.WorkflowRunner` for standalone runs;
        leave at their defaults when scaffolding inside the assembly
        workflow (which checkpoints the branch as a whole).
    """
    workflow = build_scaffolding_workflow()
    runner = WorkflowRunner(
        executor=executor, checkpoint_dir=checkpoint_dir, hooks=hooks
    )
    state = {
        "contigs": list(contigs),
        "pairs": list(pairs),
        "seed_k": seed_k,
        "min_links": min_links,
        "insert_size": insert_size,
    }
    ctx = runner.run(workflow, state=state, resume=resume)
    return ctx.state["scaffolding"]
