"""Mapping reads onto assembled contigs with unique seed k-mers.

Scaffolding treats the assembled contigs as a reference and asks, for
every read, *which contig did this read come from and where*.  A full
aligner is unnecessary: contigs are near-exact substrings of the
genome, so an error-free k-mer of the read identifies its origin
uniquely as long as the k-mer occurs exactly once across all contigs.
The mapper therefore

1. indexes every contig position by its forward k-mer, dropping k-mers
   that occur more than once (repeat-induced anchors would produce
   exactly the chimeric links scaffolding must avoid — the same
   unique-anchor convention :mod:`repro.quality.alignment` uses);
2. probes a handful of seed positions per read, in both orientations,
   and converts the first unique hit into a contig-coordinate
   placement.

With the default 1% substitution error rate a 21 bp seed is error-free
with probability ≈ 0.81, so three seed positions leave well under 1%
of reads unmapped — ample, since every contig link is supported by
many pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dna.sequence import reverse_complement


@dataclass(frozen=True)
class ReadMapping:
    """One read placed on one contig.

    ``start`` is where the *oriented* read begins in contig
    coordinates: for a forward mapping the read itself aligns at
    ``[start, start + len)``; for a reverse mapping it is the read's
    reverse complement that aligns there.  ``forward`` records that
    orientation, which is what link derivation needs — an aligned mate
    "points" right when forward and left when reverse.
    """

    contig: int
    start: int
    forward: bool


class ContigSeedIndex:
    """Unique-k-mer index over a fixed, ordered set of contigs.

    Uniqueness is strand-symmetric: a seed collides with earlier
    occurrences of *either* itself or its reverse complement, because a
    read sequenced from the opposite strand carries the rc form — a
    forward-only check would let such seeds mismap reads onto the wrong
    contig and strand.
    """

    def __init__(self, contigs: Sequence[str], seed_k: int) -> None:
        if seed_k <= 0:
            raise ValueError(f"seed_k must be positive, got {seed_k}")
        self.seed_k = seed_k
        self.contigs = list(contigs)
        self._seeds: Dict[str, tuple] = {}
        ambiguous = set()
        for contig_index, sequence in enumerate(self.contigs):
            length = len(sequence)
            rc_sequence = reverse_complement(sequence)
            for position in range(length - seed_k + 1):
                seed = sequence[position : position + seed_k]
                if seed in ambiguous:
                    continue
                partner = rc_sequence[length - position - seed_k : length - position]
                if seed == partner:  # palindromic seed: strand-undecidable
                    ambiguous.add(seed)
                    self._seeds.pop(seed, None)
                    continue
                if seed in self._seeds or partner in self._seeds:
                    ambiguous.add(seed)
                    ambiguous.add(partner)
                    self._seeds.pop(seed, None)
                    self._seeds.pop(partner, None)
                else:
                    self._seeds[seed] = (contig_index, position)

    def __len__(self) -> int:
        return len(self._seeds)

    def map_read(self, sequence: str) -> Optional[ReadMapping]:
        """Place ``sequence`` on a contig, or None when no seed hits.

        Seeds are probed at the read's start, middle and end (fewer on
        short reads); each is looked up forward and reverse-complement.
        The first unique hit wins, which keeps the mapping fully
        deterministic.
        """
        k = self.seed_k
        length = len(sequence)
        if length < k:
            return None
        offsets: List[int] = []
        for offset in (0, (length - k) // 2, length - k):
            if offset not in offsets:
                offsets.append(offset)
        for offset in offsets:
            seed = sequence[offset : offset + k]
            if "N" in seed:
                continue
            hit = self._seeds.get(seed)
            if hit is not None:
                contig_index, position = hit
                return ReadMapping(
                    contig=contig_index, start=position - offset, forward=True
                )
            hit = self._seeds.get(reverse_complement(seed))
            if hit is not None:
                contig_index, position = hit
                # The seed sits at offset (length - k - offset) inside
                # the reverse-complemented read, so the rc-read aligns
                # starting that far left of the hit.
                return ReadMapping(
                    contig=contig_index,
                    start=position - (length - k - offset),
                    forward=False,
                )
        return None
