"""From mapped read pairs to a filtered contig-link graph.

A read pair whose mates map to two *different* contigs is evidence that
those contigs are adjacent.  Because the two mates of an FR library
point towards each other, each mate also tells us *which end* of its
contig faces the gap: a forward-mapped mate points right (the fragment
continues past the contig's 3' tail), a reverse-mapped mate points left
(past the 5' head).  The pair therefore links one specific end of
contig A to one specific end of contig B, and the portion of the
fragment that hangs off both contigs estimates the gap:

``gap = insert_size - (bases of the fragment inside A) - (inside B)``.

Individual pairs are noisy (chimeric fragments, mismapped seeds), so
observations are bundled per ``(end of A, end of B)`` key and a bundle
only becomes a link when enough pairs support it.  Finally,
:func:`select_links` keeps at most one link per contig end (greedy by
support), which makes the contig-link graph a disjoint union of simple
paths and cycles — the shape the ordering PPA run expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Dict, Iterable, List, Optional, Tuple

from .mapping import ReadMapping

#: A contig's 5' (left) end.
END_HEAD = 0
#: A contig's 3' (right) end.
END_TAIL = 1

#: ``(contig index, end)`` — one attachment point of a link.
EndId = Tuple[int, int]


def exit_evidence(mapping: ReadMapping, read_length: int, contig_length: int) -> Tuple[int, int]:
    """Which end of the contig the mate's fragment exits, and how much
    of the fragment lies inside the contig up to that end.

    A forward mate points right: the fragment occupies the contig from
    the mate's start to the tail.  A reverse mate points left: the
    fragment occupies from the head to the mate's (rc-aligned) end.
    The inside lengths of the two mates plus the gap add up to the
    insert size, which is what makes the gap estimable.
    """
    if mapping.forward:
        return END_TAIL, contig_length - mapping.start
    return END_HEAD, mapping.start + read_length


@dataclass(frozen=True)
class PairLinkObservation:
    """One cross-contig pair, normalised so ``contig_a < contig_b``."""

    contig_a: int
    end_a: int
    contig_b: int
    end_b: int
    gap: float

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.contig_a, self.end_a, self.contig_b, self.end_b)


@dataclass(frozen=True)
class LinkBundle:
    """All observations between one pair of contig ends."""

    contig_a: int
    end_a: int
    contig_b: int
    end_b: int
    count: int
    mean_gap: float

    @property
    def ends(self) -> Tuple[EndId, EndId]:
        return ((self.contig_a, self.end_a), (self.contig_b, self.end_b))


def observe_pair(
    mapping1: ReadMapping,
    mapping2: ReadMapping,
    read_length1: int,
    read_length2: int,
    contig_lengths: List[int],
    insert_size: float,
) -> Optional[PairLinkObservation]:
    """Turn one mapped pair into a link observation.

    Returns None for same-contig pairs (those estimate the insert size
    instead, see :func:`estimate_insert_size`) and for observations
    whose implied gap is wildly negative (more than a read length of
    overlap means at least one mate is mismapped).
    """
    if mapping1.contig == mapping2.contig:
        return None
    end1, inside1 = exit_evidence(mapping1, read_length1, contig_lengths[mapping1.contig])
    end2, inside2 = exit_evidence(mapping2, read_length2, contig_lengths[mapping2.contig])
    gap = insert_size - inside1 - inside2
    if gap < -max(read_length1, read_length2):
        return None
    if mapping1.contig < mapping2.contig:
        return PairLinkObservation(
            contig_a=mapping1.contig, end_a=end1,
            contig_b=mapping2.contig, end_b=end2, gap=gap,
        )
    return PairLinkObservation(
        contig_a=mapping2.contig, end_a=end2,
        contig_b=mapping1.contig, end_b=end1, gap=gap,
    )


def observed_insert_size(
    mapping1: ReadMapping,
    mapping2: ReadMapping,
    read_length1: int,
    read_length2: int,
) -> Optional[float]:
    """Insert size implied by a *same-contig* pair, or None if improper.

    Proper FR pairs map to the same contig in opposite orientations
    with the forward mate to the left; the distance from the forward
    mate's start to the reverse mate's end is the fragment length.
    """
    if mapping1.contig != mapping2.contig or mapping1.forward == mapping2.forward:
        return None
    if mapping1.forward:
        forward, reverse = mapping1, mapping2
        reverse_length = read_length2
    else:
        forward, reverse = mapping2, mapping1
        reverse_length = read_length1
    insert = (reverse.start + reverse_length) - forward.start
    if insert <= 0:
        return None
    return float(insert)


def estimate_insert_size(observed: Iterable[float]) -> Optional[float]:
    """Median of the same-contig insert observations (robust to outliers)."""
    values = list(observed)
    if not values:
        return None
    return float(median(values))


def select_links(bundles: Iterable[LinkBundle], min_support: int) -> List[LinkBundle]:
    """Filter bundles to a set usable as scaffold joins.

    Bundles below ``min_support`` pairs are noise and dropped.  The
    survivors are taken greedily in order of support (count descending,
    key ascending as the tie-break), each one claiming its two contig
    ends; a bundle whose end is already claimed loses to the stronger
    evidence and is discarded.  The result touches every contig end at
    most once, so the link graph decomposes into simple paths/cycles.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be at least 1, got {min_support}")
    supported = [bundle for bundle in bundles if bundle.count >= min_support]
    supported.sort(key=lambda bundle: (-bundle.count, bundle.ends))
    claimed: Dict[EndId, LinkBundle] = {}
    selected: List[LinkBundle] = []
    for bundle in supported:
        end_a, end_b = bundle.ends
        if end_a in claimed or end_b in claimed:
            continue
        if bundle.contig_a == bundle.contig_b:
            # A contig linking to itself is a circular sequence, not a
            # scaffold join.
            continue
        claimed[end_a] = bundle
        claimed[end_b] = bundle
        selected.append(bundle)
    return selected
