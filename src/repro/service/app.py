"""The assembled service: store + worker pool + REST API in one object.

:class:`AssemblyService` is what ``repro-assemble serve`` runs and what
tests/benchmarks embed in-process.  Its start-up order is the crash
-recovery contract:

1. open (or create) the SQLite store under ``data_dir``;
2. :meth:`~repro.service.store.JobStore.recover_interrupted` — every
   job a dead process left ``running`` goes back to ``queued``;
3. start the worker pool — recovered jobs are claimed like any other
   and, because every run resumes from the job's surviving checkpoint
   directory, continue from their last completed stage bit-identically;
4. bind the HTTP API.

So a ``kill -9`` at any point costs at most the stage that was in
flight; everything completed is never recomputed and never changes.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..errors import InvalidJobSpecError, JobStateError
from ..telemetry import (
    MetricsRegistry,
    Tracer,
    load_run_artifacts,
    read_timeline,
    render_dashboard,
    render_prometheus,
    render_report,
    set_registry,
    set_tracer,
)
from ..telemetry.sampler import TIMELINE_FILENAME
from .api import make_server
from .scheduler import ProcessWorkerPool, WorkerPool
from .spec import JobSpec
from .store import (
    DEFAULT_MAX_ATTEMPTS,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    JobRecord,
    JobStore,
)

#: Worker planes a service may run (see :mod:`repro.service.scheduler`).
WORKER_PLANES = ("process", "thread")


class AssemblyService:
    """A durable, multi-tenant assembly job service."""

    def __init__(
        self,
        data_dir,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 8642,
        poll_interval: float = 0.2,
        worker_plane: str = "process",
        lease_seconds: Optional[float] = None,
        reap_interval: float = 1.0,
        drain_timeout: float = 30.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if worker_plane not in WORKER_PLANES:
            raise ValueError(
                f"worker_plane must be one of {', '.join(WORKER_PLANES)}, "
                f"got {worker_plane!r}"
            )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.logger = logging.getLogger("repro.service")
        self.worker_plane = worker_plane
        store_kwargs = {"max_attempts": max_attempts}
        if lease_seconds is not None:
            store_kwargs["lease_seconds"] = lease_seconds
        self.store = JobStore(self.data_dir / "jobs.sqlite3", **store_kwargs)
        if worker_plane == "process":
            self.pool = ProcessWorkerPool(
                self.store, self.data_dir, num_workers=num_workers,
                poll_interval=poll_interval, reap_interval=reap_interval,
                drain_timeout=drain_timeout,
            )
        else:
            self.pool = WorkerPool(
                self.store, self.data_dir, num_workers=num_workers,
                poll_interval=poll_interval, reap_interval=reap_interval,
            )
        #: Whether the last stop() shut everything down without
        #: escalation (HTTP thread joined, workers drained).
        self.stopped_cleanly: Optional[bool] = None
        self.host = host
        self.port = port
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        # The service always runs with real telemetry — /metrics and
        # /jobs/<id>/trace are part of its API.  The instances are
        # installed process-wide in start() so the runtime/workflow hot
        # paths (which call get_registry()/get_tracer()) feed them, and
        # restored in stop() so embedding a service in tests or
        # notebooks leaves the process as it found it.
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self._previous_registry = None
        self._previous_tracer = None
        self._register_service_metrics()

    def _register_service_metrics(self) -> None:
        counts = self.store.counts
        self.registry.gauge(
            "repro_jobs_queued",
            "Jobs currently waiting in the queue (sampled at scrape time).",
            callback=lambda: counts()[STATE_QUEUED],
        )
        self.registry.gauge(
            "repro_jobs_running",
            "Jobs currently executing (sampled at scrape time).",
            callback=lambda: counts()[STATE_RUNNING],
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover interrupted jobs, start workers, bind the API."""
        self._previous_registry = set_registry(self.registry)
        self._previous_tracer = set_tracer(self.tracer)
        recovered = self.store.recover_interrupted()
        for record in recovered:
            if record.state == STATE_QUEUED:
                self.logger.info(
                    "re-enqueued interrupted job %s (attempt %d, will resume "
                    "from its checkpoints)", record.id, record.attempts,
                )
            else:
                self.logger.warning(
                    "interrupted job %s is %s after %d attempts",
                    record.id, record.state, record.attempts,
                )
        self.pool.start()
        self._server = make_server(self, self.host, self.port)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._server_thread.start()
        self.logger.info(
            "assembly service listening on %s (data dir %s, %d workers)",
            self.base_url, self.data_dir, self.pool.num_workers,
        )

    def stop(self, wait: bool = True) -> bool:
        """Shut down; returns True when everything stopped cleanly.

        The verdict (also kept in :attr:`stopped_cleanly`) covers the
        HTTP thread actually joining and the worker plane draining
        without escalation — a False from a process pool means at
        least one worker had to be terminated or killed (its job was
        reclaimed and will be retried).
        """
        clean = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            if self._server_thread.is_alive():
                # A request handler is wedged mid-response.  The thread
                # is daemonic so process exit is not blocked, but the
                # operator deserves to know the shutdown was not clean.
                self.logger.warning(
                    "HTTP server thread did not exit within 5s; "
                    "a request handler may be hung"
                )
                clean = False
            self._server_thread = None
        if not self.pool.stop(wait=wait):
            clean = False
        set_registry(self._previous_registry)
        set_tracer(self._previous_tracer)
        # With wait=False, workers may still be mid-job; the store must
        # stay open so their final writes land on a live connection
        # rather than crashing on a closed one (the process is exiting
        # anyway, and SQLite recovers the file on reopen).
        if wait:
            self.store.close()
        self.stopped_cleanly = clean
        return clean

    def __enter__(self) -> "AssemblyService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # submission (programmatic and HTTP)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> JobRecord:
        record = self.store.submit(
            spec, priority=priority, idempotency_key=idempotency_key
        )
        self.pool.notify()
        return record

    def submit_payload(self, body: Any) -> Tuple[JobRecord, bool]:
        """Handle a POST /jobs body; returns ``(record, created)``.

        The body is either a bare spec object or an envelope
        ``{"spec": ..., "priority": ..., "idempotency_key": ...}`` —
        bare specs keep the curl quickstart one level flat.
        """
        if not isinstance(body, dict):
            raise InvalidJobSpecError("request body must be a JSON object")
        if "spec" in body:
            envelope = body
            spec_payload = body["spec"]
        else:
            envelope = {}
            spec_payload = body
        spec = JobSpec.from_dict(spec_payload)
        priority = envelope.get("priority", 0)
        if not isinstance(priority, int):
            raise InvalidJobSpecError(f"priority must be an integer, got {priority!r}")
        idempotency_key = envelope.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise InvalidJobSpecError("idempotency_key must be a string")
        record, created = self.store.submit_detecting(
            spec, priority=priority, idempotency_key=idempotency_key
        )
        self.pool.notify()
        return record, created

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _succeeded(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record.state != STATE_SUCCEEDED:
            raise JobStateError(
                f"job {job_id} is {record.state}, not succeeded; "
                "results exist only for succeeded jobs"
            )
        return record

    def _artifact_path(self, record: JobRecord, name: str) -> Path:
        """The artifact's path, waiting out the publish window.

        The worker commits ``succeeded`` first and then renames the
        staged artifacts into the job directory (staging is what keeps
        a fenced zombie from clobbering a retry's files), so a tight
        poller can observe the state a moment before the files land —
        give the renames a grace period before declaring them missing.
        """
        path = Path(record.result_dir or "") / name
        # Bounded by the finish timestamp: a job that finished long ago
        # and has no such file (e.g. scaffolds for an unscaffolded run)
        # fails immediately instead of stalling out the grace period.
        deadline = (record.finished_at or 0.0) + 1.0
        while not path.is_file() and time.time() < deadline:
            time.sleep(0.01)
        return path

    def result_payload(self, job_id: str) -> Dict[str, Any]:
        """The job's quality metrics JSON (written by its worker)."""
        record = self._succeeded(job_id)
        path = self._artifact_path(record, "metrics.json")
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise JobStateError(
                f"result metadata of job {job_id} is unreadable: {exc}"
            ) from exc

    def artifact_text(self, job_id: str, name: str) -> str:
        """A FASTA artifact (``contigs.fasta`` / ``scaffolds.fasta``)."""
        record = self._succeeded(job_id)
        path = self._artifact_path(record, name)
        if not path.is_file():
            raise JobStateError(f"job {job_id} produced no {name} artifact")
        return path.read_text()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The service's metrics in Prometheus text exposition format.

        Worker-process metrics arrive through the spool (each child
        drains its registry to disk after claiming and finishing jobs);
        folding them in at scrape time keeps ``/metrics`` one coherent
        registry regardless of which plane did the work.
        """
        self.pool.drain_metrics(self.registry)
        return render_prometheus(self.registry)

    def trace_payload(self, job_id: str) -> Dict[str, Any]:
        """The job's persisted span tree (written when the job finishes).

        404 for unknown jobs, 409 while the job has not finished (or
        predates tracing) — the same error contract as ``/result``.
        """
        self.store.get(job_id)  # unknown job -> JobNotFoundError -> 404
        path = self.pool.job_dir(job_id) / "trace.json"
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise JobStateError(
                f"job {job_id} has no trace yet; traces are written when "
                f"a job finishes ({exc})"
            ) from exc

    def timeline_payload(self, job_id: str) -> Dict[str, Any]:
        """The job's run timeline (superstep/stage events + samples).

        Same error contract as ``/trace``: 404 for unknown jobs, 409
        while no attempt has finished (the timeline is written with the
        other per-attempt artifacts).
        """
        self.store.get(job_id)  # unknown job -> JobNotFoundError -> 404
        path = self.pool.job_dir(job_id) / TIMELINE_FILENAME
        try:
            events = read_timeline(path)
        except OSError as exc:
            raise JobStateError(
                f"job {job_id} has no timeline yet; timelines are written "
                f"when an attempt finishes ({exc})"
            ) from exc
        return {"job_id": job_id, "events": events}

    def report_html(self, job_id: str) -> str:
        """The job's self-contained HTML ops report.

        Renders whatever artifacts the job has produced so far (404
        for unknown jobs, 409 before any artifact exists) — a failed
        job still gets a report from its trace and timeline.
        """
        record = self.store.get(job_id)
        artifacts = load_run_artifacts(self.pool.job_dir(job_id))
        if (
            artifacts["trace"] is None
            and not artifacts["timeline"]
            and artifacts["metrics"] is None
        ):
            raise JobStateError(
                f"job {job_id} has no artifacts to report on yet; reports "
                "are available once an attempt finishes"
            )
        return render_report(
            f"job {job_id[:12]} — {record.state}",
            trace=artifacts["trace"],
            timeline=artifacts["timeline"],
            metrics=artifacts["metrics"],
        )

    def dashboard_html(self) -> str:
        """The service overview page (queue health + recent jobs)."""
        jobs = self.store.list_jobs(limit=25)
        return render_dashboard(self.health(), [job.to_dict() for job in jobs])

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "version": __version__,
            "workers": self.pool.num_workers,
            "worker_plane": self.worker_plane,
            "worker_pids": self.pool.worker_pids(),
            "lease_seconds": self.store.lease_seconds,
            "counts": self.store.counts(),
        }
