"""Scheduler and bounded worker pool: where queued jobs become contigs.

The pool owns ``num_workers`` daemon threads.  Each thread loops on the
store's atomic :meth:`~repro.service.store.JobStore.claim_next` (so at
most ``num_workers`` jobs are ever ``running``) and executes the claimed
job's declared workflow through a
:class:`~repro.workflow.WorkflowRunner`:

* the job gets its own directory under ``data_dir/jobs/<id>/`` holding
  its checkpoints and, on success, its artifacts (``contigs.fasta``,
  ``scaffolds.fasta``, ``metrics.json``);
* :class:`~repro.workflow.WorkflowHooks` translate stage boundaries
  into store events (``stage-start`` / ``stage-end`` / ``checkpoint``),
  which is what clients poll for live progress;
* the ``on_stage_start`` hook doubles as the cooperative cancellation
  point: a requested cancel aborts the run at the next stage boundary
  (stages are the atomic unit of work, exactly the checkpoint
  granularity);
* every run passes ``resume=True``.  For a fresh job that is a no-op
  (no checkpoint → start from stage 0); for a job re-enqueued by
  :meth:`~repro.service.store.JobStore.recover_interrupted` after a
  crash it means the surviving per-job checkpoints are picked up and
  the run continues bit-identically — the workflow layer's checkpoint
  fingerprint guards against the spec somehow materialising different
  inputs.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path
from typing import Dict, List

from ..assembler import PPAAssembler
from ..errors import ReproError
from ..telemetry import get_registry, get_tracer, span, write_trace
from ..telemetry.trace import Span
from ..workflow import WorkflowHooks
from .store import JobRecord, JobStore


class _JobCancelled(Exception):
    """Internal control-flow signal: a cancel request reached a stage boundary."""


class WorkerPool:
    """Bounded pool of worker threads draining a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        data_dir,
        num_workers: int = 2,
        poll_interval: float = 0.2,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.store = store
        self.data_dir = Path(data_dir)
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self._threads: List[threading.Thread] = []
        self._wakeup = threading.Condition()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads and not self._stopping:
            return  # already running
        # Threads left over from a stop(wait=False) still honour the
        # old stop flag and exit after their current job; join them
        # before spawning a fresh generation, otherwise old and new
        # workers together would exceed the num_workers bound.
        for thread in self._threads:
            thread.join()
        self._threads = []
        self._stopping = False
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}",),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        """Stop claiming new jobs; optionally wait for running ones.

        With ``wait=False`` the handles of still-alive threads are
        kept, so a later :meth:`start` can wait them out instead of
        silently doubling the worker count.
        """
        self._stopping = True
        with self._wakeup:
            self._wakeup.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()
            self._threads = []
        else:
            self._threads = [t for t in self._threads if t.is_alive()]

    def notify(self) -> None:
        """Wake idle workers (called right after a submission)."""
        with self._wakeup:
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # per-job layout
    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.data_dir / "jobs" / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "checkpoints"

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_name: str) -> None:
        while not self._stopping:
            record = self.store.claim_next(worker_name)
            if record is None:
                with self._wakeup:
                    if not self._stopping:
                        self._wakeup.wait(timeout=self.poll_interval)
                continue
            self._run_job(record)

    def _run_job(self, record: JobRecord) -> None:
        job_id = record.id
        store = self.store
        stage_seconds: Dict[str, float] = {}

        def on_stage_start(stage, index, total):
            # The cooperative cancellation point: checked once per
            # stage, so a cancel lands between stages, never inside one.
            if store.cancel_requested(job_id):
                raise _JobCancelled()
            store.append_event(
                job_id,
                "stage-start",
                {"stage": stage.name, "index": index, "total": total},
            )

        def on_stage_end(stage, index, total, seconds):
            stage_seconds[stage.name] = stage_seconds.get(stage.name, 0.0) + seconds
            store.append_event(
                job_id,
                "stage-end",
                {
                    "stage": stage.name,
                    "index": index,
                    "total": total,
                    "seconds": round(seconds, 6),
                },
            )

        def on_stage_skipped(stage, index, total):
            store.append_event(
                job_id,
                "stage-skipped",
                {"stage": stage.name, "index": index, "total": total},
            )

        def on_checkpoint(stage, path):
            store.append_event(
                job_id, "checkpoint", {"stage": stage.name, "path": str(path)}
            )

        hooks = WorkflowHooks(
            on_stage_start=on_stage_start,
            on_stage_end=on_stage_end,
            on_stage_skipped=on_stage_skipped,
            on_checkpoint=on_checkpoint,
        )

        started = time.perf_counter()
        outcome = "failed"
        with span(f"job:{job_id}", job_id=job_id, attempt=record.attempts) as job_span:
            try:
                spec = record.spec
                config = spec.assembly_config()
                material = spec.materialize()
                result = PPAAssembler(config).assemble(
                    material.reads,
                    pairs=material.pairs,
                    checkpoint_dir=self.checkpoint_dir(job_id),
                    resume=True,
                    hooks=hooks,
                )
                wall_seconds = time.perf_counter() - started
                result_dir = self._write_artifacts(
                    job_id, record, result, material, stage_seconds, wall_seconds
                )
                store.mark_succeeded(job_id, result_dir=str(result_dir))
                outcome = "succeeded"
            except _JobCancelled:
                outcome = "cancelled"
                self._finish_quietly(store.mark_cancelled, job_id)
            except ReproError as exc:
                self._finish_quietly(store.mark_failed, job_id, str(exc))
            except Exception as exc:  # noqa: BLE001 — a worker thread must survive
                self._finish_quietly(
                    store.append_event,
                    job_id,
                    "error-detail",
                    {"traceback": traceback.format_exc(limit=20)},
                )
                self._finish_quietly(
                    store.mark_failed, job_id, f"{type(exc).__name__}: {exc}"
                )
            job_span.set(outcome=outcome)
        self._write_trace(job_id, job_span)
        get_registry().counter(
            "repro_jobs_completed_total",
            "Jobs finished by the worker pool, by terminal state.",
            labelnames=("state",),
        ).labels(outcome).inc()

    def _write_trace(self, job_id: str, job_span) -> None:
        """Persist the job's span tree next to its artifacts.

        Only when tracing is enabled (the span is real); written for
        every outcome, so failed jobs can be profiled too.  Best-effort
        by design — a trace-write failure must not fail the job.
        """
        if not get_tracer().enabled or not isinstance(job_span, Span):
            return
        try:
            directory = self.job_dir(job_id)
            directory.mkdir(parents=True, exist_ok=True)
            write_trace(job_span.finish(), directory / "trace.json")
        except Exception:  # noqa: BLE001 — observability must not break jobs
            pass

    @staticmethod
    def _finish_quietly(operation, *args) -> None:
        """Run a terminal store write, swallowing shutdown-time failures.

        A non-waiting service shutdown can close resources while a
        daemon worker is still finishing its job; the worker's last
        store writes must not take the thread down with an unhandled
        exception.
        """
        try:
            operation(*args)
        except Exception:  # noqa: BLE001 — best-effort by design
            pass

    def _write_artifacts(
        self,
        job_id: str,
        record: JobRecord,
        result,
        material,
        stage_seconds: Dict[str, float],
        wall_seconds: float,
    ) -> Path:
        """Persist the job's deliverables next to its checkpoints."""
        import json

        directory = self.job_dir(job_id)
        directory.mkdir(parents=True, exist_ok=True)
        result.write_fasta(directory / "contigs.fasta")
        if result.scaffolding is not None:
            result.write_scaffold_fasta(directory / "scaffolds.fasta")
        payload = result.metrics_payload(
            min_contig=record.spec.min_contig,
            stage_seconds=stage_seconds,
            wall_seconds=wall_seconds,
            reference_length=material.reference_length,
        )
        payload["job_id"] = job_id
        (directory / "metrics.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return directory
