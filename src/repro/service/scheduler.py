"""Worker pools and their supervision: where queued jobs become contigs.

Two pools share one execution path
(:func:`~repro.service.worker.execute_attempt`) and one contract — at
most ``num_workers`` jobs run concurrently, each under a heartbeat-
renewed lease — but differ in what a worker *is*:

:class:`WorkerPool` (``worker_plane="thread"``)
    Workers are daemon threads inside the service process.  Cheap and
    simple, but the GIL serialises their compute and a wedged stage
    cannot be killed, only abandoned at the next stage boundary.

:class:`ProcessWorkerPool` (``worker_plane="process"``, the default)
    Workers are **spawned processes**, each running its own claim loop
    against the shared SQLite store.  Compute scales with cores, and
    the fault model becomes enforceable: a supervisor thread watches
    for worker death (any exit — SIGKILL, a deliberate timeout exit,
    a crash) and immediately reclaims the dead incarnation's jobs for
    retry, then respawns the slot (with a short backoff when a worker
    dies instantly, so a poisoned environment cannot spawn-loop).
    Spawn, not fork: the service process is heavily multi-threaded
    (HTTP server, supervisor, reaper) and forking a threaded process
    inherits locks in undefined states; children are non-daemonic
    because the multiprocess Pregel backend forks its own workers.

Both pools also run the **reaper loop**: every ``reap_interval``
seconds, :meth:`~repro.service.store.JobStore.reap_expired` re-enqueues
any running job whose lease lapsed.  With one replica this catches
workers that died without the supervisor noticing; with several
replicas sharing a store it is what makes *another* replica's death
survivable — its jobs come back to whoever is still alive, with no
restart anywhere.  The process pool's reaper additionally kills any of
its own children that got fenced (their job was reclaimed while they
kept computing — the stalled-heartbeat case), because a fenced worker
is doing work nobody will accept.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..telemetry import get_registry
from .store import JobStore
from .worker import (
    EXIT_REASONS,
    MetricsSpool,
    checkpoint_dir,
    execute_attempt,
    job_dir,
    worker_main,
)

logger = logging.getLogger("repro.service")

#: How long a worker slot must survive for its respawn backoff to reset.
_QUICK_DEATH_SECONDS = 2.0
_MAX_RESPAWN_BACKOFF = 5.0


def _death_reason(exitcode: Optional[int]) -> str:
    """A bounded label for how a worker process ended."""
    if exitcode is None:
        return "unknown"
    if exitcode in EXIT_REASONS:
        return EXIT_REASONS[exitcode]
    if exitcode < 0:
        return f"signal-{-exitcode}"
    return f"exit-{exitcode}"


class _PoolBase:
    """Shared layout/lifecycle surface of both worker planes."""

    store: JobStore
    data_dir: Path
    num_workers: int

    def job_dir(self, job_id: str) -> Path:
        return job_dir(self.data_dir, job_id)

    def checkpoint_dir(self, job_id: str) -> Path:
        return checkpoint_dir(self.data_dir, job_id)

    def worker_pids(self) -> List[int]:
        """PIDs of live worker processes (empty on the thread plane)."""
        return []

    def drain_metrics(self, registry) -> None:
        """Fold spooled worker-process metrics into ``registry`` (no-op here)."""

    def _count_reclaims(self, reclaims) -> None:
        for reclaim in reclaims:
            logger.warning(
                "reclaimed job %s from %s (%s, attempt %d)",
                reclaim.record.id,
                reclaim.previous_owner,
                reclaim.outcome,
                reclaim.record.attempts,
            )


class WorkerPool(_PoolBase):
    """Bounded pool of worker *threads* draining a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        data_dir,
        num_workers: int = 2,
        poll_interval: float = 0.2,
        lease_seconds: Optional[float] = None,
        reap_interval: float = 1.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.store = store
        self.data_dir = Path(data_dir)
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self.lease_seconds = (
            store.lease_seconds if lease_seconds is None else lease_seconds
        )
        self.reap_interval = reap_interval
        self._threads: List[threading.Thread] = []
        self._reaper: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        self._wakeup = threading.Condition()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        try:
            # Same start-up reclamation as the process plane: a prior
            # incarnation killed wholesale cannot unlink its own arenas.
            from ..runtime.shm import sweep_dead_masters

            sweep_dead_masters()
        except Exception:  # pragma: no cover - sweep must never block start-up
            pass
        if self._threads and not self._stopping:
            return  # already running
        # Threads left over from a stop(wait=False) still honour the
        # old stop flag and exit after their current job; join them
        # before spawning a fresh generation, otherwise old and new
        # workers together would exceed the num_workers bound.
        for thread in self._threads:
            thread.join()
        self._threads = []
        self._stopping = False
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}",),
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._reaper_stop.clear()
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="repro-service-reaper", daemon=True
        )
        self._reaper.start()

    def stop(self, wait: bool = True) -> bool:
        """Stop claiming new jobs; optionally wait for running ones.

        With ``wait=False`` the handles of still-alive threads are
        kept, so a later :meth:`start` can wait them out instead of
        silently doubling the worker count.  Returns True when every
        worker actually finished (always, when waiting — threads
        cannot be abandoned with a timeout).
        """
        self._stopping = True
        self._reaper_stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        if self._reaper is not None:
            self._reaper.join(timeout=self.reap_interval + 1.0)
            self._reaper = None
        if wait:
            for thread in self._threads:
                thread.join()
            self._threads = []
            return True
        self._threads = [t for t in self._threads if t.is_alive()]
        return not self._threads

    def notify(self) -> None:
        """Wake idle workers (called right after a submission)."""
        with self._wakeup:
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_name: str) -> None:
        while not self._stopping:
            record = self.store.claim_next(
                worker_name, lease_seconds=self.lease_seconds
            )
            if record is None:
                with self._wakeup:
                    if not self._stopping:
                        self._wakeup.wait(timeout=self.poll_interval)
                continue
            execute_attempt(
                self.store,
                self.data_dir,
                record,
                token=record.lease_token or "",
                lease_seconds=self.lease_seconds,
                hard_exit=False,
            )

    def _reaper_loop(self) -> None:
        while not self._reaper_stop.wait(self.reap_interval):
            try:
                self._count_reclaims(self.store.reap_expired())
            except Exception:  # noqa: BLE001 — the reaper must outlive store hiccups
                pass
            try:
                # An orphaned master from a killed prior incarnation may
                # outlive our start-up sweep (it self-fences only after
                # noticing orphanhood); reclaim its arenas once it dies.
                from ..runtime.shm import sweep_dead_masters

                sweep_dead_masters()
            except Exception:  # noqa: BLE001 — sweep must never break reaping
                pass


class ProcessWorkerPool(_PoolBase):
    """Supervised pool of spawned worker *processes*."""

    def __init__(
        self,
        store: JobStore,
        data_dir,
        num_workers: int = 2,
        poll_interval: float = 0.2,
        lease_seconds: Optional[float] = None,
        reap_interval: float = 1.0,
        drain_timeout: float = 30.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.store = store
        self.data_dir = Path(data_dir)
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self.lease_seconds = (
            store.lease_seconds if lease_seconds is None else lease_seconds
        )
        self.reap_interval = reap_interval
        self.drain_timeout = drain_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._stop_event = None
        self._supervisor: Optional[threading.Thread] = None
        self._stopping = False
        self._lock = threading.Lock()
        self._slots: List[Dict] = []
        self._spool = MetricsSpool(self.data_dir)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        try:
            # A previous service incarnation SIGKILLed wholesale (the
            # crash-recovery path) strands the arena segments of worker
            # processes nobody observed dying; reclaim them before
            # spawning fresh workers.
            from ..runtime.shm import sweep_dead_masters

            sweep_dead_masters()
        except Exception:  # pragma: no cover - sweep must never block start-up
            pass
        with self._lock:
            if self._slots and not self._stopping:
                return  # already running
            self._stopping = False
            self._stop_event = self._ctx.Event()
            self._slots = [
                {
                    "index": index,
                    "process": None,
                    "incarnation": None,
                    "spawned_at": 0.0,
                    "respawn_after": 0.0,
                    "backoff": 0.0,
                }
                for index in range(self.num_workers)
            ]
            for slot in self._slots:
                self._spawn_locked(slot)
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-service-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn_locked(self, slot: Dict) -> None:
        worker_name = f"worker-{slot['index']}"
        options = {
            "poll_interval": self.poll_interval,
            "lease_seconds": self.lease_seconds,
            "max_attempts": self.store.max_attempts,
            "backoff_seconds": self.store.backoff_seconds,
            "backoff_cap_seconds": self.store.backoff_cap_seconds,
        }
        process = self._ctx.Process(
            target=worker_main,
            args=(
                str(self.store.path),
                str(self.data_dir),
                worker_name,
                self._stop_event,
                options,
            ),
            name=f"repro-service-{worker_name}",
            # Non-daemonic on purpose: the multiprocess Pregel backend
            # forks *its* workers from this process, and daemonic
            # processes may not have children.  Orphan safety comes
            # from the child's own getppid() check instead.
            daemon=False,
        )
        process.start()
        slot["process"] = process
        slot["incarnation"] = f"{worker_name}@{process.pid}"
        slot["spawned_at"] = time.monotonic()

    def _supervise_loop(self) -> None:
        last_reap = time.monotonic()
        while not self._stopping:
            time.sleep(0.1)
            if self._stopping:
                return
            now = time.monotonic()
            with self._lock:
                for slot in self._slots:
                    process = slot["process"]
                    if process is not None and not process.is_alive():
                        self._on_death_locked(slot, now)
                    if (
                        slot["process"] is None
                        and not self._stopping
                        and now >= slot["respawn_after"]
                    ):
                        self._spawn_locked(slot)
            if now - last_reap >= self.reap_interval:
                last_reap = now
                self._reap_once()

    def _on_death_locked(self, slot: Dict, now: float) -> None:
        process = slot["process"]
        reason = _death_reason(process.exitcode)
        incarnation = slot["incarnation"]
        dead_pid = process.pid
        process.join()
        slot["process"] = None
        # A SIGKILLed worker was the Pregel *master* of whatever backend
        # it was running and never reached the unlink path of its
        # shared-memory arenas; sweep them by the PID baked into their
        # segment names so /dev/shm cannot accumulate leaks.
        if dead_pid is not None:
            try:
                from ..runtime.shm import sweep_master_segments

                sweep_master_segments(dead_pid)
            except Exception:  # noqa: BLE001 — supervision must survive sweep hiccups
                pass
        get_registry().counter(
            "repro_worker_deaths_total",
            "Worker processes that exited, by reason.",
            labelnames=("reason",),
        ).labels(reason).inc()
        if not self._stopping:
            logger.warning(
                "worker %s died (%s); reclaiming its jobs", incarnation, reason
            )
        # The supervisor knows the owner is dead: reclaim immediately
        # instead of waiting out the lease.
        try:
            self._count_reclaims(
                self.store.reclaim_worker(incarnation, reason=f"worker-{reason}")
            )
        except Exception:  # noqa: BLE001 — supervision must survive store hiccups
            pass
        lifetime = now - slot["spawned_at"]
        if lifetime < _QUICK_DEATH_SECONDS:
            slot["backoff"] = min(
                _MAX_RESPAWN_BACKOFF, max(0.2, slot["backoff"] * 2)
            )
        else:
            slot["backoff"] = 0.0
        slot["respawn_after"] = now + slot["backoff"]

    def _reap_once(self) -> None:
        try:
            # Same late reclamation as the thread plane's reaper: a
            # prior incarnation's orphaned master often dies only after
            # our start-up sweep already ran.
            from ..runtime.shm import sweep_dead_masters

            sweep_dead_masters()
        except Exception:  # noqa: BLE001 — sweep must never break reaping
            pass
        try:
            reclaims = self.store.reap_expired()
        except Exception:  # noqa: BLE001
            return
        self._count_reclaims(reclaims)
        if not reclaims:
            return
        # A reclaimed job whose previous owner is one of *our live*
        # children means that child is fenced (it stopped heartbeating
        # but kept computing).  Nobody will accept its writes; kill it
        # so the slot goes back to useful work.
        owners = {reclaim.previous_owner for reclaim in reclaims}
        with self._lock:
            for slot in self._slots:
                process = slot["process"]
                if (
                    process is not None
                    and process.is_alive()
                    and slot["incarnation"] in owners
                ):
                    logger.warning(
                        "killing fenced worker %s", slot["incarnation"]
                    )
                    process.kill()

    def stop(self, wait: bool = True) -> bool:
        """Drain (or terminate) the worker processes.

        ``wait=True`` is the graceful drain: signal the stop event,
        give every child up to ``drain_timeout`` seconds to finish its
        current job (stages checkpoint as they complete, so even an
        unfinished job loses nothing durable), then escalate to
        SIGTERM and finally SIGKILL, reclaiming whatever the killed
        children held.  Returns True when every worker exited on its
        own, False when escalation was needed — the service surfaces
        this as ``stopped_cleanly``.
        """
        self._stopping = True
        if self._stop_event is not None:
            self._stop_event.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None
        clean = True
        with self._lock:
            processes = [
                (slot, slot["process"])
                for slot in self._slots
                if slot["process"] is not None
            ]
            deadline = time.monotonic() + (self.drain_timeout if wait else 0.5)
            for slot, process in processes:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
                if process.is_alive():
                    clean = False
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
                try:
                    self._count_reclaims(
                        self.store.reclaim_worker(
                            slot["incarnation"], reason="shutdown"
                        )
                    )
                except Exception:  # noqa: BLE001 — the store may already be closed
                    pass
                slot["process"] = None
            self._slots = []
        return clean

    def notify(self) -> None:
        """No-op: worker processes poll the store at ``poll_interval``."""

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        with self._lock:
            return [
                slot["process"].pid
                for slot in self._slots
                if slot["process"] is not None and slot["process"].is_alive()
            ]

    def drain_metrics(self, registry) -> None:
        self._spool.drain_into(registry)
