"""Job specifications: the JSON contract between clients and workers.

A :class:`JobSpec` is everything a worker needs to run one assembly —
an *input* block naming where the reads come from and a *config* block
carrying the full :class:`~repro.assembler.config.AssemblyConfig`
surface (k, backend, workers, scaffolding knobs, …).  Specs travel as
JSON over the REST API and are persisted verbatim in the job store, so
a worker on a restarted service re-materialises exactly the input the
original run saw — which is what makes checkpoint resume bit-identical:
the workflow runner fingerprints the seed state and would refuse a
resume over different reads.

Input modes (mirroring the CLI's source flags):

``inline``
    Reads (or read pairs) embedded in the spec itself — the only mode
    that needs no shared filesystem between client and server.
``fastq`` / ``fastq_pair``
    Paths the *server* reads.  Deterministic as long as the files are.
``simulate``
    A seeded random genome; deterministic by construction.
``dataset``
    One of the Table I dataset profiles (seeded), scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..assembler.config import AssemblyConfig
from ..dna.datasets import get_profile
from ..dna.io_fastq import (
    Read,
    ReadPair,
    parse_fastq,
    parse_paired_fastq,
    reads_from_pairs,
)
from ..dna.simulator import simulate_dataset, simulate_paired_dataset
from ..errors import InvalidJobSpecError, ReproError

#: Input modes a spec may name.
INPUT_MODES = ("inline", "fastq", "fastq_pair", "simulate", "dataset")

#: AssemblyConfig fields a spec's ``config`` block may set.  Kept as an
#: explicit allowlist so a typo ("kmer": 21) fails loudly at submit
#: time instead of being silently ignored.
CONFIG_FIELDS = (
    "k",
    "coverage_threshold",
    "tip_length_threshold",
    "bubble_edit_distance",
    "labeling_method",
    "error_correction_rounds",
    "num_workers",
    "backend",
    "message_plane",
    "partitioner",
    "use_vectorized",
    "scaffold",
    "scaffold_min_links",
    "scaffold_insert_size",
    "memory_budget_mb",
)

#: Fields a spec's optional ``retry`` block may set.  They tune the
#: service's fault handling *for this job*: the attempt budget before
#: quarantine, the backoff curve between attempts, and the watchdog
#: deadlines that kill a hung worker.
RETRY_FIELDS = (
    "max_attempts",
    "backoff_seconds",
    "backoff_cap_seconds",
    "job_timeout_seconds",
    "stage_timeout_seconds",
)


@dataclass
class MaterializedInput:
    """A spec's input block turned into actual reads."""

    reads: List[Read]
    pairs: Optional[List[ReadPair]]
    reference_length: Optional[int]
    description: str


def _require(block: Dict[str, Any], key: str, mode: str) -> Any:
    try:
        return block[key]
    except KeyError:
        raise InvalidJobSpecError(
            f"input mode {mode!r} requires an {key!r} field"
        ) from None


def _parse_inline_reads(raw: Any) -> List[Read]:
    reads = []
    for index, entry in enumerate(raw):
        if isinstance(entry, str):
            reads.append(Read(name=f"read_{index}", sequence=entry))
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            reads.append(Read(name=str(entry[0]), sequence=str(entry[1])))
        else:
            raise InvalidJobSpecError(
                "inline reads must be sequences or [name, sequence] pairs, "
                f"got {entry!r} at index {index}"
            )
    return reads


def _parse_inline_pairs(raw: Any) -> List[ReadPair]:
    pairs = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, (list, tuple)) or len(entry) != 4:
            raise InvalidJobSpecError(
                "inline pairs must be [name1, sequence1, name2, sequence2] "
                f"quadruples, got {entry!r} at index {index}"
            )
        name1, sequence1, name2, sequence2 = entry
        pairs.append(
            ReadPair(
                read1=Read(name=str(name1), sequence=str(sequence1)),
                read2=Read(name=str(name2), sequence=str(sequence2)),
            )
        )
    return pairs


@dataclass
class JobSpec:
    """One assembly job, as submitted by a client.

    ``input`` is the mode-tagged input block, ``config`` the (partial)
    :class:`~repro.assembler.config.AssemblyConfig` keyword set, and
    ``min_contig`` the length cutoff used by the job's reported contig
    statistics (the service's result payload and the CLI's
    ``--metrics-json`` share the same shape).
    """

    input: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    min_contig: int = 0
    retry: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # validation / (de)serialisation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        mode = self.input.get("mode")
        if mode not in INPUT_MODES:
            raise InvalidJobSpecError(
                f"input.mode must be one of {', '.join(INPUT_MODES)}, got {mode!r}"
            )
        unknown = sorted(set(self.config) - set(CONFIG_FIELDS))
        if unknown:
            raise InvalidJobSpecError(
                f"unknown config field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(CONFIG_FIELDS)}"
            )
        if not isinstance(self.min_contig, int) or self.min_contig < 0:
            raise InvalidJobSpecError(
                f"min_contig must be a non-negative integer, got {self.min_contig!r}"
            )
        self._validate_retry()
        try:
            self.assembly_config()
        except ReproError as exc:
            raise InvalidJobSpecError(f"invalid assembly config: {exc}") from exc
        self._validate_input_fields()
        # Materialisation errors for path modes surface at run time (the
        # file must exist on the *server*), but inline payloads can be
        # checked right here at the API boundary.
        if self.input["mode"] == "inline":
            if "pairs" in self.input:
                _parse_inline_pairs(self.input["pairs"])
            elif "reads" in self.input:
                _parse_inline_reads(self.input["reads"])
            else:
                raise InvalidJobSpecError(
                    "input mode 'inline' requires a 'reads' or 'pairs' field"
                )
        # Scaffolding needs pairing evidence; an input that can never
        # produce pairs is rejected up front (mirroring the one-shot
        # CLI) instead of silently succeeding without scaffolds.
        if self.config.get("scaffold"):
            mode = self.input["mode"]
            unpaired = mode == "fastq" or (
                mode == "inline" and "pairs" not in self.input
            )
            if unpaired:
                raise InvalidJobSpecError(
                    "config.scaffold needs pairing information: use input "
                    "mode 'fastq_pair', inline 'pairs', or a simulating "
                    "mode (which then draws read pairs)"
                )

    def _validate_retry(self) -> None:
        if not isinstance(self.retry, dict):
            raise InvalidJobSpecError("'retry' must be an object when present")
        unknown = sorted(set(self.retry) - set(RETRY_FIELDS))
        if unknown:
            raise InvalidJobSpecError(
                f"unknown retry field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(RETRY_FIELDS)}"
            )
        max_attempts = self.retry.get("max_attempts")
        if max_attempts is not None and (
            not isinstance(max_attempts, int)
            or isinstance(max_attempts, bool)
            or max_attempts < 1
        ):
            raise InvalidJobSpecError(
                f"retry.max_attempts must be a positive integer, got {max_attempts!r}"
            )
        for key in (
            "backoff_seconds",
            "backoff_cap_seconds",
            "job_timeout_seconds",
            "stage_timeout_seconds",
        ):
            value = self.retry.get(key)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                raise InvalidJobSpecError(
                    f"retry.{key} must be a positive number, got {value!r}"
                )

    def _validate_input_fields(self) -> None:
        """Mode-required fields are spec-intrinsic: check them at submit.

        Only file *existence* is deferred to run time (paths resolve on
        the server's filesystem); a missing or mistyped field would
        otherwise 201 and only surface as a failed job minutes later.
        """
        mode = self.input["mode"]
        if mode == "simulate":
            length = self.input.get("genome_length")
            if not isinstance(length, int) or isinstance(length, bool) or length <= 0:
                raise InvalidJobSpecError(
                    "input mode 'simulate' requires a positive integer "
                    f"'genome_length', got {length!r}"
                )
            seed = self.input.get("seed", 0)
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise InvalidJobSpecError(
                    f"'seed' must be an integer, got {seed!r}"
                )
        elif mode == "dataset":
            name = self.input.get("name")
            if not isinstance(name, str) or not name:
                raise InvalidJobSpecError(
                    "input mode 'dataset' requires a non-empty 'name'"
                )
            scale = self.input.get("scale", 0.25)
            if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
                raise InvalidJobSpecError(
                    f"'scale' must be a positive number, got {scale!r}"
                )
        elif mode == "fastq":
            if not isinstance(self.input.get("path"), str):
                raise InvalidJobSpecError("input mode 'fastq' requires a 'path'")
        elif mode == "fastq_pair":
            for key in ("path1", "path2"):
                if not isinstance(self.input.get(key), str):
                    raise InvalidJobSpecError(
                        f"input mode 'fastq_pair' requires {key!r}"
                    )
        for key in ("insert_size", "insert_std"):
            if key in self.input:
                value = self.input[key]
                if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                    raise InvalidJobSpecError(
                        f"{key!r} must be a positive number, got {value!r}"
                    )

    def assembly_config(self) -> AssemblyConfig:
        """The spec's config block as a validated :class:`AssemblyConfig`."""
        return AssemblyConfig(**self.config)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "input": dict(self.input),
            "config": dict(self.config),
            "min_contig": self.min_contig,
        }
        # Only serialised when set: keeps the persisted JSON of specs
        # without retry tuning byte-identical to what older service
        # versions wrote (idempotency keys compare the serialised spec).
        # getattr: specs decoded from old pickles/__new__ may predate it.
        if getattr(self, "retry", None):
            payload["retry"] = dict(self.retry)
        return payload

    @classmethod
    def from_dict(cls, payload: Any, validate: bool = True) -> "JobSpec":
        """Decode a spec; ``validate=False`` skips the semantic checks.

        The store uses the trusted path when decoding its own rows:
        every persisted spec already passed :meth:`validate` at submit
        time, and re-validating per row would re-parse e.g. a large
        inline read payload on every status poll.
        """
        if not isinstance(payload, dict):
            raise InvalidJobSpecError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"input", "config", "min_contig", "retry"})
        if unknown:
            raise InvalidJobSpecError(
                f"unknown job spec field(s): {', '.join(unknown)}"
            )
        input_block = payload.get("input")
        if not isinstance(input_block, dict):
            raise InvalidJobSpecError("job spec needs an 'input' object")
        config_block = payload.get("config", {})
        if not isinstance(config_block, dict):
            raise InvalidJobSpecError("'config' must be an object when present")
        retry_block = payload.get("retry", {})
        if not isinstance(retry_block, dict):
            raise InvalidJobSpecError("'retry' must be an object when present")
        spec = cls(
            input=dict(input_block),
            config=dict(config_block),
            min_contig=payload.get("min_contig", 0),
            retry=dict(retry_block),
        )
        if validate:
            spec.validate()
        return spec

    # ------------------------------------------------------------------
    # input materialisation (worker side)
    # ------------------------------------------------------------------
    def materialize(self) -> MaterializedInput:
        """Turn the input block into reads; deterministic per spec.

        Determinism is what crash recovery leans on: a restarted worker
        reconstructs the same seed state, so the checkpoint
        fingerprint matches and ``resume()`` continues bit-identically.
        """
        mode = self.input.get("mode")
        scaffold = bool(self.config.get("scaffold"))
        if mode == "inline":
            if "pairs" in self.input:
                pairs = _parse_inline_pairs(self.input["pairs"])
                return MaterializedInput(
                    reads=reads_from_pairs(pairs),
                    pairs=pairs,
                    reference_length=self.input.get("reference_length"),
                    description=f"{len(pairs)} inline read pairs",
                )
            reads = _parse_inline_reads(_require(self.input, "reads", mode))
            return MaterializedInput(
                reads=reads,
                pairs=None,
                reference_length=self.input.get("reference_length"),
                description=f"{len(reads)} inline reads",
            )
        if mode == "fastq":
            path = _require(self.input, "path", mode)
            return MaterializedInput(
                reads=list(parse_fastq(path)),
                pairs=None,
                reference_length=None,
                description=f"fastq {path}",
            )
        if mode == "fastq_pair":
            path1 = _require(self.input, "path1", mode)
            path2 = _require(self.input, "path2", mode)
            pairs = list(parse_paired_fastq(path1, path2))
            return MaterializedInput(
                reads=reads_from_pairs(pairs),
                pairs=pairs,
                reference_length=None,
                description=f"fastq pair {path1} + {path2}",
            )
        if mode == "simulate":
            length = int(_require(self.input, "genome_length", mode))
            seed = int(self.input.get("seed", 0))
            insert_mean = float(self.input.get("insert_size", 500.0))
            insert_std = float(self.input.get("insert_std", 50.0))
            if scaffold:
                genome, pairs = simulate_paired_dataset(
                    genome_length=length,
                    insert_size_mean=insert_mean,
                    insert_size_std=insert_std,
                    seed=seed,
                )
                return MaterializedInput(
                    reads=reads_from_pairs(pairs),
                    pairs=pairs,
                    reference_length=len(genome),
                    description=f"simulated genome of {length} bp (seed {seed}, paired)",
                )
            genome, reads = simulate_dataset(genome_length=length, seed=seed)
            return MaterializedInput(
                reads=reads,
                pairs=None,
                reference_length=len(genome),
                description=f"simulated genome of {length} bp (seed {seed})",
            )
        if mode == "dataset":
            name = _require(self.input, "name", mode)
            scale = float(self.input.get("scale", 0.25))
            profile = get_profile(name, scale=scale)
            if scaffold:
                insert_mean = float(self.input.get("insert_size", 500.0))
                insert_std = float(self.input.get("insert_std", 50.0))
                reference, pairs = profile.generate_paired(
                    insert_size_mean=insert_mean, insert_size_std=insert_std
                )
                return MaterializedInput(
                    reads=reads_from_pairs(pairs),
                    pairs=pairs,
                    reference_length=len(reference),
                    description=f"dataset {profile.name} (scale {scale}, paired)",
                )
            reference, reads = profile.generate()
            return MaterializedInput(
                reads=reads,
                pairs=None,
                reference_length=len(reference),
                description=f"dataset {profile.name} (scale {scale})",
            )
        raise InvalidJobSpecError(
            f"input.mode must be one of {', '.join(INPUT_MODES)}, got {mode!r}"
        )


def input_block_from_args(args: Any) -> Dict[str, Any]:
    """Build a spec input block from the CLI's source/insert flags.

    The one-shot CLI (``repro-assemble --simulate …``) and the service
    submit verb (``repro-assemble submit --simulate …``) expose the
    same source flags; both funnel through here so identical flags
    always materialise identical reads on both surfaces — the property
    checkpoint fingerprints and crash recovery rely on.
    """
    if getattr(args, "dataset", None) is not None:
        block: Dict[str, Any] = {
            "mode": "dataset",
            "name": args.dataset,
            "scale": args.scale,
        }
    elif getattr(args, "fastq", None) is not None:
        block = {"mode": "fastq", "path": args.fastq}
    elif getattr(args, "fastq_pair", None) is not None:
        block = {
            "mode": "fastq_pair",
            "path1": args.fastq_pair[0],
            "path2": args.fastq_pair[1],
        }
    else:
        block = {
            "mode": "simulate",
            "genome_length": args.simulate,
            "seed": args.seed,
        }
    if getattr(args, "insert_size", None) is not None:
        block["insert_size"] = args.insert_size
    if getattr(args, "insert_std", None) is not None:
        block["insert_std"] = args.insert_std
    return block


