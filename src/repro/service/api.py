"""REST API for the assembly job service (stdlib ``http.server``).

A deliberately small, JSON-over-HTTP surface — every route maps 1:1 to
a :class:`~repro.service.store.JobStore` or filesystem operation, and
the handler holds no state of its own, so the threaded server needs no
locking beyond the store's.

==========  =============================  =======================================
Method      Path                           Meaning
==========  =============================  =======================================
GET         ``/healthz``                   liveness + job counts
POST        ``/jobs``                      submit a job spec (idempotency-key aware)
GET         ``/jobs``                      list jobs (``?state=``, ``?limit=``)
GET         ``/jobs/<id>``                 job status + stage progress
GET         ``/jobs/<id>/events``          append-only event log (``?after=<seq>``)
POST        ``/jobs/<id>/cancel``          cancel (cooperative for running jobs)
GET         ``/jobs/<id>/result``          quality metrics JSON (succeeded only)
GET         ``/jobs/<id>/contigs.fasta``   contig FASTA artifact
GET         ``/jobs/<id>/scaffolds.fasta`` scaffold FASTA artifact
GET         ``/jobs/<id>/trace``           finished job's span tree (JSON)
GET         ``/jobs/<id>/timeline``        finished job's run timeline (JSON)
GET         ``/jobs/<id>/report``          self-contained HTML ops report
GET         ``/metrics``                   Prometheus text-format metrics
GET         ``/dashboard``                 HTML service overview (queue + jobs)
==========  =============================  =======================================

Error contract: unknown jobs are 404, malformed requests 400, wrong-state
requests (e.g. the result of a job that has not succeeded) 409 — each
with a JSON body ``{"error": ...}``.
"""

from __future__ import annotations

import json
import re
import sqlite3
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..errors import (
    InvalidJobSpecError,
    JobNotFoundError,
    JobStateError,
    ServiceError,
)
from .store import JOB_STATES, JobEvent

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[0-9a-f]{32})(?P<rest>/.*)?$")

#: Literal routes, for bounded-cardinality HTTP metric labels.
_KNOWN_PATHS = ("/healthz", "/jobs", "/metrics", "/dashboard")

#: Prometheus text exposition format content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Maximum accepted request body (inline-read submissions are the
#: biggest legitimate payload; 64 MiB of reads is far beyond anything
#: the scaled datasets produce).
MAX_BODY_BYTES = 64 * 1024 * 1024


def job_progress(events: List[JobEvent]) -> Dict[str, Any]:
    """Stage progress of the job's *latest* attempt, from its event log.

    Counts stage completions after the most recent ``started`` event,
    so a crash-recovered job reports the resumed attempt's progress
    (skipped-on-resume stages count as completed — they are).
    Completion is tracked per schedule *index*, not per event: the
    stages inside a :class:`~repro.workflow.stage.BranchStage` fire
    their own hooks but reuse the enclosing stage's index, so counting
    raw ``stage-end`` events would overshoot ``total_stages``.
    """
    completed: set = set()
    total: Optional[int] = None
    current: Optional[str] = None
    for event in events:
        if event.type == "started":
            completed, total, current = set(), None, None
        elif event.type in ("stage-end", "stage-skipped"):
            completed.add(event.payload.get("index"))
            total = event.payload.get("total", total)
            current = None
        elif event.type == "stage-start":
            total = event.payload.get("total", total)
            current = event.payload.get("stage")
        elif event.type in (
            "succeeded",
            "failed",
            "cancelled",
            "poisoned",
            "recovered",
            "retry-scheduled",
            "timeout",
            "lease-lost",
        ):
            # Terminal (or back-to-queued) events: nothing is running,
            # even when the last stage never reached its stage-end.
            current = None
    return {
        "completed_stages": len(completed),
        "total_stages": total,
        "current_stage": current,
    }


class _ApiServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service) -> None:
        self.service = service
        super().__init__(address, handler)


class ApiHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`AssemblyService`."""

    server: _ApiServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        # Route through the service's logger instead of stderr noise.
        self.server.service.logger.debug(
            "%s - %s", self.address_string(), format % args
        )

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"
        self._response_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str = "text/plain") -> None:
        body = text.encode("utf-8")
        self._response_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        """Drain and decode the request body.

        Always called for POST requests (even routes that ignore the
        body): with HTTP/1.1 keep-alive, unread body bytes would be
        parsed as the *next* request line on the same connection.  When
        the body cannot be drained (oversized), the connection is
        flagged for close instead.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # unread bytes poison keep-alive
            raise InvalidJobSpecError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidJobSpecError(f"request body is not valid JSON: {exc}") from exc

    def _route(self) -> Tuple[str, Dict[str, List[str]], Optional[str], str]:
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        match = _JOB_PATH.match(parsed.path)
        if match:
            return parsed.path, query, match.group("id"), match.group("rest") or ""
        return parsed.path, query, None, ""

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")

    #: Known job sub-routes, for bounded-cardinality metric labels.
    _JOB_RESTS = (
        "", "/events", "/cancel", "/result",
        "/contigs.fasta", "/scaffolds.fasta", "/trace",
        "/timeline", "/report",
    )

    @classmethod
    def _route_label(cls, path: str, job_id: Optional[str], rest: str) -> str:
        """Collapse a request path to a bounded route template.

        Metric labels must not grow with traffic: job ids become
        ``<id>`` and unknown paths (scanners, typos) all share one
        ``<other>`` series.
        """
        if job_id is not None:
            return "/jobs/<id>" + (rest if rest in cls._JOB_RESTS else "<other>")
        return path if path in _KNOWN_PATHS else "<other>"

    def _record_http_metrics(
        self, service, verb: str, route: str, started: float
    ) -> None:
        registry = getattr(service, "registry", None)
        if registry is None:
            return
        registry.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency, by method and route.",
            labelnames=("method", "route"),
        ).labels(verb, route).observe(time.perf_counter() - started)
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by method, route and status code.",
            labelnames=("method", "route", "status"),
        ).labels(verb, route, self._response_status).inc()

    def _dispatch(self, verb: str) -> None:
        service = self.server.service
        started = time.perf_counter()
        path, query, job_id, rest = self._route()
        route = self._route_label(path, job_id, rest)
        self._response_status = 0
        try:
            self._handle(service, verb, path, query, job_id, rest)
        finally:
            self._record_http_metrics(service, verb, route, started)

    def _handle(
        self,
        service,
        verb: str,
        path: str,
        query: Dict[str, List[str]],
        job_id: Optional[str],
        rest: str,
    ) -> None:
        try:
            # Drain the body first on every POST, body-carrying route or
            # not — see _read_body on keep-alive correctness.
            body = self._read_body() if verb == "POST" else None
            if verb == "GET" and path == "/metrics":
                self._send_text(
                    200, service.metrics_text(), content_type=PROMETHEUS_CONTENT_TYPE
                )
            elif verb == "GET" and path == "/healthz":
                self._send_json(200, service.health())
            elif verb == "GET" and path == "/dashboard":
                self._send_text(
                    200, service.dashboard_html(),
                    content_type="text/html; charset=utf-8",
                )
            elif verb == "POST" and path == "/jobs":
                record, created = service.submit_payload(body)
                self._send_json(
                    201 if created else 200,
                    {"job": record.to_dict(), "created": created},
                )
            elif verb == "GET" and path == "/jobs":
                state = (query.get("state") or [None])[0]
                if state is not None and state not in JOB_STATES:
                    # A typo'd filter is a malformed request (400), not
                    # a job-state conflict (409, which list_jobs raises).
                    raise ValueError(
                        f"unknown state filter {state!r}; "
                        f"states: {', '.join(JOB_STATES)}"
                    )
                limit = int((query.get("limit") or ["100"])[0])
                jobs = service.store.list_jobs(state=state, limit=limit)
                self._send_json(200, {"jobs": [job.to_dict() for job in jobs]})
            elif job_id is not None:
                self._dispatch_job(verb, job_id, rest, query)
            else:
                self._error(404, f"no route for {verb} {path}")
        except JobNotFoundError as exc:
            self._error(404, str(exc))
        except (InvalidJobSpecError, ValueError) as exc:
            self._error(400, str(exc))
        except JobStateError as exc:
            self._error(409, str(exc))
        except ServiceError as exc:
            self._error(500, str(exc))
        except sqlite3.ProgrammingError as exc:  # pragma: no cover - shutdown race
            # A request thread can still be in flight while stop()
            # closes the store; answer 503 instead of dumping a
            # traceback and resetting the connection.
            self.close_connection = True
            self._error(503, f"service is shutting down: {exc}")
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            self._error(500, f"database error: {exc}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client went away; nothing to answer

    def _dispatch_job(
        self, verb: str, job_id: str, rest: str, query: Dict[str, List[str]]
    ) -> None:
        service = self.server.service
        store = service.store
        if verb == "GET" and rest == "":
            record = store.get(job_id)
            payload = {"job": record.to_dict()}
            # Replaying the log per poll is fine: a job's event count is
            # bounded by ~3 events per workflow stage, not by runtime.
            payload["progress"] = job_progress(store.events(job_id))
            self._send_json(200, payload)
        elif verb == "GET" and rest == "/events":
            after = int((query.get("after") or ["0"])[0])
            events = store.events(job_id, after=after)
            self._send_json(200, {"events": [event.to_dict() for event in events]})
        elif verb == "POST" and rest == "/cancel":
            record = store.request_cancel(job_id)
            service.pool.notify()
            self._send_json(200, {"job": record.to_dict()})
        elif verb == "GET" and rest == "/result":
            self._send_json(200, service.result_payload(job_id))
        elif verb == "GET" and rest == "/trace":
            self._send_json(200, service.trace_payload(job_id))
        elif verb == "GET" and rest == "/timeline":
            self._send_json(200, service.timeline_payload(job_id))
        elif verb == "GET" and rest == "/report":
            self._send_text(
                200, service.report_html(job_id),
                content_type="text/html; charset=utf-8",
            )
        elif verb == "GET" and rest in ("/contigs.fasta", "/scaffolds.fasta"):
            self._send_text(200, service.artifact_text(job_id, rest.lstrip("/")))
        else:
            self._error(404, f"no route for {verb} /jobs/<id>{rest}")


def make_server(service, host: str, port: int) -> _ApiServer:
    """Bind the threaded API server (``port=0`` picks a free port)."""
    return _ApiServer((host, port), ApiHandler, service)
