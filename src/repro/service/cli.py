"""Service verbs of the ``repro-assemble`` CLI.

``repro-assemble`` stays a one-shot assembler when called with flags,
but its first positional argument may name a service verb::

    repro-assemble serve   --data-dir ./service-data --workers 2
    repro-assemble submit  --simulate 20000 -k 21 --wait
    repro-assemble status  JOB_ID --events
    repro-assemble result  JOB_ID --output contigs.fasta
    repro-assemble cancel  JOB_ID

``serve`` runs the durable job service in the foreground;
the other verbs are HTTP clients against ``--url`` (default
``http://127.0.0.1:8642``, overridable via ``REPRO_SERVICE_URL``).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..runtime import available_backends
from .client import ServiceClient
from .spec import JobSpec

SERVICE_VERBS = ("serve", "submit", "status", "result", "cancel", "jobs")

_DEFAULT_URL = "http://127.0.0.1:8642"


def _default_url() -> str:
    return os.environ.get("REPRO_SERVICE_URL", _DEFAULT_URL)


def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assemble",
        description="Assembly job service verbs (see also the one-shot flags).",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    serve = verbs.add_parser("serve", help="run the durable assembly job service")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642, help="TCP port (default 8642; 0 picks a free one)")
    serve.add_argument(
        "--data-dir",
        default="./repro-service-data",
        help="directory for the job database, checkpoints and artifacts "
        "(default ./repro-service-data); reusing it after a crash resumes "
        "interrupted jobs",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="how many assembly jobs may run concurrently (default 2)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="idle worker poll interval in seconds (default 0.2)",
    )
    serve.add_argument(
        "--worker-plane",
        choices=("process", "thread"),
        default="process",
        help="run jobs in supervised child processes (default; survives "
        "worker crashes) or in in-process threads (lighter, test-friendly)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="job lease duration; a worker that misses heartbeats for this "
        "long loses its job to the reaper (default 15)",
    )
    serve.add_argument(
        "--reap-interval",
        type=float,
        default=1.0,
        help="how often the reaper scans for expired leases (default 1.0)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="graceful-shutdown budget per worker before escalating to "
        "SIGTERM/SIGKILL (default 30)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="default attempt budget per job before quarantine as poisoned "
        "(default 3; jobs may override via their spec)",
    )
    serve.add_argument(
        "--log-level",
        metavar="LEVEL",
        default="info",
        help="root log level (debug/info/warning/error; default info)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as JSON lines with trace/span correlation ids",
    )

    submit = verbs.add_parser("submit", help="submit an assembly job")
    submit.add_argument("--url", default=None, help=f"service URL (default {_DEFAULT_URL})")
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", metavar="NAME", help="Table I dataset profile to simulate server-side")
    source.add_argument("--fastq", metavar="PATH", help="FASTQ file (path resolved on the server)")
    source.add_argument(
        "--fastq-pair", nargs=2, metavar=("R1", "R2"),
        help="paired FASTQ files (paths resolved on the server)",
    )
    source.add_argument(
        "--simulate", metavar="LENGTH", type=int,
        help="simulate reads from a random genome of this length server-side",
    )
    submit.add_argument(
        "--inline",
        action="store_true",
        help="read --fastq/--fastq-pair files locally and embed the reads in "
        "the request (no shared filesystem needed)",
    )
    submit.add_argument("--scale", type=float, default=0.25, help="dataset scale (default 0.25)")
    submit.add_argument("--seed", type=int, default=0, help="seed for --simulate (default 0)")
    submit.add_argument("-k", type=int, default=21, help="k-mer size (odd, default 21)")
    submit.add_argument("--coverage-threshold", type=int, default=1)
    submit.add_argument("--labeling", default=None, help="contig-labeling method")
    submit.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="execution backend for the job's Pregel stages",
    )
    submit.add_argument("--workers", type=int, default=None, help="Pregel workers for the job")
    submit.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="bound the job's working memory (streaming ingest + disk spill)",
    )
    submit.add_argument("--no-vectorized", action="store_true")
    submit.add_argument("--scaffold", action="store_true", help="run paired-end scaffolding")
    submit.add_argument("--insert-size", type=float, default=None)
    submit.add_argument("--insert-std", type=float, default=50.0)
    submit.add_argument("--min-links", type=int, default=None)
    submit.add_argument("--min-contig", type=int, default=0)
    submit.add_argument(
        "--max-attempts", type=int, default=None,
        help="attempt budget for this job before quarantine (overrides the server default)",
    )
    submit.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry the job's attempt after this many seconds",
    )
    submit.add_argument(
        "--stage-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry the attempt when any single stage exceeds this",
    )
    submit.add_argument("--priority", type=int, default=0, help="higher runs first (default 0)")
    submit.add_argument("--idempotency-key", default=None, help="resubmitting with the same key dedups")
    submit.add_argument("--wait", action="store_true", help="poll the job to completion, streaming stage events")
    submit.add_argument("--timeout", type=float, default=None, help="give up --wait after this many seconds")

    status = verbs.add_parser("status", help="show a job's state and stage progress")
    status.add_argument("job_id")
    status.add_argument("--url", default=None)
    status.add_argument("--events", action="store_true", help="also print the job's event log")

    result = verbs.add_parser("result", help="fetch a succeeded job's results")
    result.add_argument("job_id")
    result.add_argument("--url", default=None)
    result.add_argument("--output", metavar="FASTA", help="write the contigs FASTA here")
    result.add_argument("--scaffold-output", metavar="FASTA", help="write the scaffolds FASTA here")
    result.add_argument("--metrics-json", metavar="PATH", help="write the metrics JSON here instead of stdout")

    cancel = verbs.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job_id")
    cancel.add_argument("--url", default=None)

    jobs = verbs.add_parser("jobs", help="list jobs, optionally filtered by state")
    jobs.add_argument("--url", default=None)
    jobs.add_argument("--state", default=None, help="queued/running/succeeded/failed/cancelled/poisoned")
    jobs.add_argument("--limit", type=int, default=20)

    return parser


# ----------------------------------------------------------------------
# verb implementations
# ----------------------------------------------------------------------
def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url or _default_url())


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..telemetry import configure_logging
    from .app import AssemblyService

    try:
        configure_logging(args.log_level, json_lines=args.log_json)
    except ValueError as exc:
        print(f"repro-assemble serve: {exc}", file=sys.stderr)
        return 2
    kwargs: Dict[str, Any] = {}
    if args.max_attempts is not None:
        kwargs["max_attempts"] = args.max_attempts
    service = AssemblyService(
        data_dir=args.data_dir,
        num_workers=args.workers,
        host=args.host,
        port=args.port,
        poll_interval=args.poll_interval,
        worker_plane=args.worker_plane,
        lease_seconds=args.lease_seconds,
        reap_interval=args.reap_interval,
        drain_timeout=args.drain_timeout,
        **kwargs,
    )
    service.start()
    print(
        f"assembly service listening on {service.base_url} "
        f"(data dir {service.data_dir}, {args.workers} {args.worker_plane} workers)",
        flush=True,
    )

    stop = {"flag": False}

    def _handle_signal(signum, frame):  # noqa: ARG001 — signal API
        stop["flag"] = True

    signal.signal(signal.SIGINT, _handle_signal)
    signal.signal(signal.SIGTERM, _handle_signal)
    try:
        while not stop["flag"]:
            time.sleep(0.2)
    finally:
        # Graceful drain: let in-flight attempts finish (bounded by
        # --drain-timeout per worker) so SIGTERM from an orchestrator
        # does not cost a retry.  A second signal is answered by the
        # escalation path inside stop() itself.
        print("draining workers…", flush=True)
        if service.stop(wait=True):
            print("shutdown clean", flush=True)
        else:
            print(
                "shutdown forced: at least one worker was killed; its job "
                "was reclaimed and will be retried on the next start",
                flush=True,
            )
    return 0


def _inline_input(args: argparse.Namespace) -> Dict[str, Any]:
    from ..dna.io_fastq import parse_fastq, parse_paired_fastq

    if args.fastq_pair is not None:
        path1, path2 = args.fastq_pair
        pairs = [
            [pair.read1.name, pair.read1.sequence, pair.read2.name, pair.read2.sequence]
            for pair in parse_paired_fastq(path1, path2)
        ]
        return {"mode": "inline", "pairs": pairs}
    reads = [[read.name, read.sequence] for read in parse_fastq(args.fastq)]
    return {"mode": "inline", "reads": reads}


def _build_spec(args: argparse.Namespace) -> JobSpec:
    from .spec import input_block_from_args

    if args.inline:
        if args.fastq is None and args.fastq_pair is None:
            raise ReproError("--inline needs --fastq or --fastq-pair")
        input_block = _inline_input(args)
    else:
        # Shared with the one-shot CLI: identical flags materialise
        # identical reads on both surfaces.
        input_block = input_block_from_args(args)

    config: Dict[str, Any] = {"k": args.k, "coverage_threshold": args.coverage_threshold}
    if args.labeling is not None:
        config["labeling_method"] = args.labeling
    if args.backend is not None:
        config["backend"] = args.backend
    if args.workers is not None:
        config["num_workers"] = args.workers
    if args.memory_budget_mb is not None:
        config["memory_budget_mb"] = args.memory_budget_mb
    if args.no_vectorized:
        config["use_vectorized"] = False
    if args.scaffold:
        config["scaffold"] = True
        if args.min_links is not None:
            config["scaffold_min_links"] = args.min_links
        if args.insert_size is not None:
            config["scaffold_insert_size"] = args.insert_size
    retry: Dict[str, Any] = {}
    if args.max_attempts is not None:
        retry["max_attempts"] = args.max_attempts
    if args.job_timeout is not None:
        retry["job_timeout_seconds"] = args.job_timeout
    if args.stage_timeout is not None:
        retry["stage_timeout_seconds"] = args.stage_timeout
    spec = JobSpec(
        input=input_block, config=config, min_contig=args.min_contig, retry=retry
    )
    spec.validate()
    return spec


def _print_event(event: Dict[str, Any]) -> None:
    payload = event.get("payload", {})
    detail = " ".join(f"{key}={value}" for key, value in payload.items())
    print(f"  [{event['seq']:03d}] {event['type']} {detail}".rstrip(), flush=True)


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    client = _client(args)
    job = client.submit(
        spec, priority=args.priority, idempotency_key=args.idempotency_key
    )
    print(f"job {job['id']} {job['state']} (priority {job['priority']})")
    if not args.wait:
        return 0
    status = client.wait(
        job["id"], timeout=args.timeout, on_event=_print_event
    )
    final = status["job"]
    print(f"job {final['id']} {final['state']}")
    if final["state"] in ("failed", "poisoned"):
        print(f"error: {final['error']}", file=sys.stderr)
        return 1
    return 0 if final["state"] == "succeeded" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    status = client.status(args.job_id)
    job, progress = status["job"], status["progress"]
    total = progress["total_stages"] or "?"
    line = (
        f"job {job['id']} {job['state']} "
        f"stages {progress['completed_stages']}/{total}"
    )
    if progress["current_stage"]:
        line += f" (running {progress['current_stage']})"
    if job["error"]:
        line += f" error: {job['error']}"
    print(line)
    if args.events:
        for event in client.events(args.job_id):
            _print_event(event)
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    client = _client(args)
    metrics = client.result(args.job_id)
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics JSON to {args.metrics_json}")
    else:
        json.dump(metrics, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.output:
        fasta = client.contigs_fasta(args.job_id)
        with open(args.output, "w") as handle:
            handle.write(fasta)
        print(f"wrote contigs to {args.output}")
    if args.scaffold_output:
        fasta = client.scaffolds_fasta(args.job_id)
        with open(args.scaffold_output, "w") as handle:
            handle.write(fasta)
        print(f"wrote scaffolds to {args.scaffold_output}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    job = _client(args).cancel(args.job_id)
    print(f"job {job['id']} {job['state']}"
          + (" (cancel requested)" if job["cancel_requested"] and job["state"] == "running" else ""))
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    jobs = _client(args).list_jobs(state=args.state, limit=args.limit)
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        mode = job["spec"]["input"].get("mode", "?")
        print(
            f"{job['id']}  {job['state']:<9}  priority={job['priority']}"
            f"  input={mode}  attempts={job['attempts']}"
        )
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
    "cancel": _cmd_cancel,
    "jobs": _cmd_jobs,
}


def service_main(argv: Optional[List[str]] = None) -> int:
    parser = build_service_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.verb](args)
    except ReproError as exc:  # includes ServiceClientError
        print(f"repro-assemble {args.verb}: {exc}", file=sys.stderr)
        return 1
