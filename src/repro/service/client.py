"""Thin HTTP client for the assembly job service.

Wraps the REST API (:mod:`repro.service.api`) in typed calls over
stdlib ``urllib`` — no sessions, no retries beyond what the caller
adds, idempotency keys making retried submissions safe.  The CLI verbs
(``repro-assemble submit/status/result/cancel``) and the examples are
built on this; it is also the reference for what each endpoint accepts
and returns.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional
from urllib import error, request

from ..errors import ServiceClientError
from .spec import JobSpec


class ServiceClient:
    """Client for one service instance, e.g. ``ServiceClient("http://localhost:8642")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        decode_json: bool = True,
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = request.Request(url, data=data, headers=headers, method=method)
        try:
            with request.urlopen(req, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceClientError(
                f"{method} {path} failed with HTTP {exc.code}: {detail}",
                status=exc.code,
            ) from exc
        except error.URLError as exc:
            raise ServiceClientError(
                f"could not reach the service at {self.base_url}: {exc.reason}"
            ) from exc
        except OSError as exc:
            # Covers mid-response socket timeouts (TimeoutError), which
            # urlopen raises directly rather than wrapping in URLError.
            raise ServiceClientError(
                f"could not reach the service at {self.base_url}: {exc}"
            ) from exc
        if not decode_json:
            return body
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceClientError(
                f"{method} {path} returned malformed JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a job; returns the job document (existing one on key dedup)."""
        envelope: Dict[str, Any] = {"spec": spec.to_dict(), "priority": priority}
        if idempotency_key is not None:
            envelope["idempotency_key"] = idempotency_key
        return self._request("POST", "/jobs", payload=envelope)["job"]

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[Dict[str, Any]]:
        query = f"?limit={limit}" + (f"&state={state}" if state else "")
        return self._request("GET", "/jobs" + query)["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job document plus a ``progress`` block."""
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, after: int = 0) -> List[Dict[str, Any]]:
        return self._request("GET", f"/jobs/{job_id}/events?after={after}")["events"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel", payload={})["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The succeeded job's quality metrics JSON."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The finished job's span tree (``{"generated_at": ..., "trace": ...}``)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def timeline(self, job_id: str) -> Dict[str, Any]:
        """The finished job's run timeline (``{"job_id": ..., "events": [...]}``)."""
        return self._request("GET", f"/jobs/{job_id}/timeline")

    def report_html(self, job_id: str) -> str:
        """The job's self-contained HTML ops report, verbatim."""
        return self._request("GET", f"/jobs/{job_id}/report", decode_json=False)

    def dashboard_html(self) -> str:
        """The service's HTML overview page, verbatim."""
        return self._request("GET", "/dashboard", decode_json=False)

    def metrics_text(self) -> str:
        """The service's Prometheus text-format metrics, verbatim."""
        return self._request("GET", "/metrics", decode_json=False)

    def contigs_fasta(self, job_id: str) -> str:
        return self._request(
            "GET", f"/jobs/{job_id}/contigs.fasta", decode_json=False
        )

    def scaffolds_fasta(self, job_id: str) -> str:
        return self._request(
            "GET", f"/jobs/{job_id}/scaffolds.fasta", decode_json=False
        )

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    #: States a wait() stops on.
    TERMINAL_STATES = ("succeeded", "failed", "cancelled", "poisoned")

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.25,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        reconnect_window: float = 30.0,
        reconnect_backoff: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its document.

        ``on_event`` receives every new event exactly once as it is
        observed (the cursor advances by event sequence number), which
        is how the CLI and the demo stream live stage progress.

        The poll survives the service going away *temporarily*: jobs
        are durable, so a replica bounce (deploy, crash + restart, LB
        failover) mid-wait should not kill the client.  Connection
        failures (HTTP status 0 — nothing answered at all) are retried
        with exponential backoff for up to ``reconnect_window``
        seconds of *continuous* unreachability; any successful request
        resets the budget.  Real HTTP errors (404, 409, …) still raise
        immediately — the server answered, and its answer is the answer.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        down_since: Optional[float] = None
        backoff = reconnect_backoff

        def call(fn, *args, **kwargs):
            nonlocal down_since, backoff
            while True:
                try:
                    result = fn(*args, **kwargs)
                except ServiceClientError as exc:
                    if exc.status != 0:
                        raise
                    now = time.monotonic()
                    if down_since is None:
                        down_since = now
                    unreachable = now - down_since
                    if unreachable + backoff > reconnect_window or (
                        deadline is not None and now + backoff > deadline
                    ):
                        raise ServiceClientError(
                            f"service unreachable for {unreachable:.1f}s "
                            f"while waiting on job {job_id}: {exc}"
                        ) from exc
                    time.sleep(backoff)
                    backoff = min(backoff * 2, 5.0)
                    continue
                down_since = None
                backoff = reconnect_backoff
                return result

        while True:
            if on_event is not None:
                for event in call(self.events, job_id, after=cursor):
                    cursor = max(cursor, event["seq"])
                    on_event(event)
            status = call(self.status, job_id)
            if status["job"]["state"] in self.TERMINAL_STATES:
                if on_event is not None:
                    for event in call(self.events, job_id, after=cursor):
                        cursor = max(cursor, event["seq"])
                        on_event(event)
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceClientError(
                    f"job {job_id} did not finish within {timeout} seconds "
                    f"(currently {status['job']['state']}"
                    f"{self._progress_detail(job_id, status)})"
                )
            time.sleep(poll_interval)

    def _progress_detail(self, job_id: str, status: Dict[str, Any]) -> str:
        """Server-side progress for a timeout message, best-effort.

        A timeout without context ("did not finish") forces the caller
        to go query the server themselves; this pulls the stage
        progress and the last event into the error text.  Any failure
        while enriching yields an empty string — the timeout error
        itself must never be masked.
        """
        detail = ""
        try:
            progress = status.get("progress") or {}
            total = progress.get("total_stages")
            if total is not None:
                detail += (
                    f"; stages {progress.get('completed_stages', 0)}/{total}"
                )
            if progress.get("current_stage"):
                detail += f", running {progress['current_stage']!r}"
            events = self.events(job_id)
            if events:
                last = events[-1]
                payload = " ".join(
                    f"{key}={value}" for key, value in last.get("payload", {}).items()
                )
                detail += (
                    f"; last event [{last['seq']:03d}] {last['type']}"
                    + (f" {payload}" if payload else "")
                )
        except Exception:  # noqa: BLE001 — enrichment is best-effort
            pass
        return detail
