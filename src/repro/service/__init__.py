"""Durable assembly job service: queue, scheduler, worker pool, REST API.

Everything before this package is a library call: one process, one
assembly, gone when the interpreter exits.  This package is the serving
layer the ROADMAP's north star asks for — a long-lived process that
accepts many assembly jobs, runs them concurrently with bounded
resources, survives being killed mid-assembly, and exposes the whole
lifecycle over plain HTTP.  It is stdlib-only (``sqlite3``,
``http.server``, ``urllib``) so serving needs nothing the library does
not already have.

* :class:`~repro.service.spec.JobSpec` — what to assemble: an input
  source (inline reads, FASTQ paths, a simulated genome, or a Table I
  dataset profile) plus the full
  :class:`~repro.assembler.config.AssemblyConfig` surface;
* :class:`~repro.service.store.JobStore` — SQLite-backed durable queue:
  states ``queued/running/succeeded/failed/cancelled/poisoned``,
  priorities, idempotency keys, time-bounded leases with heartbeats and
  fencing tokens, retry accounting with exponential backoff, and an
  append-only per-job event log;
* :class:`~repro.service.scheduler.ProcessWorkerPool` — supervised
  child processes each running a claim loop through
  :mod:`repro.service.worker`; a crashed or hung worker loses its lease,
  the job is reclaimed and retried (resuming from its checkpoints
  bit-identically) until its attempt budget quarantines it as
  ``poisoned``.  :class:`~repro.service.scheduler.WorkerPool` is the
  in-process thread variant of the same claim loop;
* :mod:`repro.service.faults` — deterministic fault injection
  (``REPRO_FAULTS``) used by the chaos tests to prove the above;
* :class:`~repro.service.app.AssemblyService` — store + pool + REST API
  (:mod:`repro.service.api`) wired together;
* :class:`~repro.service.client.ServiceClient` — thin HTTP client used
  by the CLI verbs (``repro-assemble serve/submit/status/result/cancel``)
  and the examples.
"""

# Lazy re-exports (PEP 562): the one-shot CLI imports
# ``repro.service.spec`` for input materialisation on every run, which
# executes this __init__ — eager imports here would drag the whole
# serving stack (sqlite3, http.server, urllib) into a plain
# ``repro-assemble --simulate …`` invocation.
_EXPORTS = {
    "AssemblyService": ".app",
    "ServiceClient": ".client",
    "FaultInjected": ".faults",
    "FaultInjector": ".faults",
    "FaultPlan": ".faults",
    "ProcessWorkerPool": ".scheduler",
    "WorkerPool": ".scheduler",
    "JobSpec": ".spec",
    "MaterializedInput": ".spec",
    "JobStore": ".store",
    "JobRecord": ".store",
    "JobEvent": ".store",
    "Reclaim": ".store",
    "JOB_STATES": ".store",
    "TERMINAL_STATES": ".store",
    "STATE_QUEUED": ".store",
    "STATE_RUNNING": ".store",
    "STATE_SUCCEEDED": ".store",
    "STATE_FAILED": ".store",
    "STATE_CANCELLED": ".store",
    "STATE_POISONED": ".store",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
