"""Deterministic fault injection for the job service.

Robustness claims are only as good as the failures they were tested
against, so the failure modes the worker plane defends against — worker
death, a stalled heartbeat, a hung stage, a corrupted checkpoint, a
slow store — are injectable on demand.  A :class:`FaultPlan` is a list
of injectors, each naming *what* to break (``kind``), *where* (a stage
name or index), and *when* (which attempt numbers), so a chaos test can
say precisely "kill the worker at stage 2 of attempt 1" and assert the
recovery path byte-for-byte.

Plans travel as JSON in the ``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS='[{"kind": "kill_worker", "stage": 2, "attempts": [1]}]'

The environment is the one channel that reaches *spawned worker
processes* without any plumbing: the service inherits it to its
children, and each child re-reads the plan at startup.  Everything is
deterministic — injectors fire on exact (stage, attempt) matches, never
on randomness — so a chaos scenario either always reproduces or is not
a scenario.

Injector kinds:

``kill_worker``
    SIGKILL the worker process at the matched stage start (the thread
    plane, which cannot kill itself, raises instead).
``stall_heartbeat``
    Stop renewing the job's lease for the matched attempt; the lease
    expires and the reaper fences the worker out mid-run.
``hang_stage``
    Sleep ``seconds`` (default: forever) at the matched stage start —
    what a wedged backend looks like; the watchdog must kill it.
``corrupt_checkpoint``
    Overwrite the just-written checkpoint file with garbage, exercising
    the checkpoint layer's degrade-to-earlier-checkpoint path on resume.
``raise_error``
    Raise a transient ``RuntimeError`` at the matched stage start (the
    retryable-failure path, no process death involved).
``delay_store_writes``
    Sleep ``seconds`` before every event-log write, widening race
    windows that are otherwise microseconds wide.
``shm_alloc_fail``
    Make the Pregel shared-memory message plane report allocation
    failure, forcing the multiprocess backend onto its pickled-queue
    fallback — what a host with an exhausted or missing ``/dev/shm``
    looks like.  Results must be identical either way.

This module is imported by the store and the worker on their hot paths,
so the disabled case must stay near-free: no ``REPRO_FAULTS`` in the
environment means an empty plan whose checks are attribute lookups.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

ENV_VAR = "REPRO_FAULTS"

#: Injector kinds a plan may name (anything else fails loudly).
FAULT_KINDS = (
    "kill_worker",
    "stall_heartbeat",
    "hang_stage",
    "corrupt_checkpoint",
    "raise_error",
    "delay_store_writes",
    "shm_alloc_fail",
)


class FaultInjected(RuntimeError):
    """Raised by ``raise_error`` injectors (and kill fallbacks on threads)."""


@dataclass
class FaultInjector:
    """One deterministic fault: what to break, where, and on which attempts."""

    kind: str
    stage: Optional[Union[int, str]] = None
    attempts: Optional[Sequence[int]] = None
    seconds: float = 0.0

    def matches(self, attempt: Optional[int]) -> bool:
        if self.attempts is None:
            return True
        return attempt in self.attempts

    def matches_stage(self, stage_name: Optional[str], index: Optional[int]) -> bool:
        if self.stage is None:
            return True
        if isinstance(self.stage, int):
            return index == self.stage
        return stage_name == self.stage

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultInjector":
        kind = payload.get("kind")
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; kinds: {', '.join(FAULT_KINDS)}"
            )
        unknown = sorted(set(payload) - {"kind", "stage", "attempts", "seconds"})
        if unknown:
            raise ValueError(f"unknown fault field(s): {', '.join(unknown)}")
        attempts = payload.get("attempts")
        if attempts is not None:
            attempts = tuple(int(a) for a in attempts)
        return cls(
            kind=kind,
            stage=payload.get("stage"),
            attempts=attempts,
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass
class FaultPlan:
    """An ordered list of injectors, consulted at the worker's fault points."""

    injectors: List[FaultInjector] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "FaultPlan":
        text = (environ if environ is not None else os.environ).get(ENV_VAR)
        if not text:
            return cls()
        return cls.from_json(text)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if isinstance(payload, dict):
            payload = [payload]
        if not isinstance(payload, list):
            raise ValueError(f"{ENV_VAR} must be a JSON list of injectors")
        return cls(injectors=[FaultInjector.from_dict(entry) for entry in payload])

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    key: value
                    for key, value in (
                        ("kind", injector.kind),
                        ("stage", injector.stage),
                        ("attempts", list(injector.attempts) if injector.attempts is not None else None),
                        ("seconds", injector.seconds or None),
                    )
                    if value is not None
                }
                for injector in self.injectors
            ]
        )

    @property
    def enabled(self) -> bool:
        return bool(self.injectors)

    def _first(
        self,
        kind: str,
        attempt: Optional[int],
        stage_name: Optional[str] = None,
        index: Optional[int] = None,
    ) -> Optional[FaultInjector]:
        for injector in self.injectors:
            if (
                injector.kind == kind
                and injector.matches(attempt)
                and injector.matches_stage(stage_name, index)
            ):
                return injector
        return None

    # ------------------------------------------------------------------
    # fault points
    # ------------------------------------------------------------------
    def store_write_delay(self) -> float:
        """Seconds to sleep before an event-log write (0 = no fault)."""
        for injector in self.injectors:
            if injector.kind == "delay_store_writes":
                return injector.seconds
        return 0.0

    def stall_heartbeat(self, attempt: Optional[int]) -> bool:
        """True when this attempt's heartbeat renewals should be skipped."""
        return self._first("stall_heartbeat", attempt) is not None

    def shm_alloc_fail(self, attempt: Optional[int] = None) -> bool:
        """True when shared-memory arena allocation should report failure."""
        return self._first("shm_alloc_fail", attempt) is not None

    def on_stage_start(
        self,
        stage_name: str,
        index: int,
        attempt: Optional[int],
        hard_exit: bool,
    ) -> None:
        """Fire stage-start faults: kill, hang, or raise.

        ``hard_exit`` distinguishes a real worker process (which a
        ``kill_worker`` injector SIGKILLs — exit code -9, exactly what
        the supervisor must handle) from the thread plane, where killing
        "the worker" would kill the whole service; there the injector
        degrades to a raised :class:`FaultInjected`.
        """
        injector = self._first("kill_worker", attempt, stage_name, index)
        if injector is not None:
            if hard_exit:
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultInjected(
                f"kill_worker fault at stage {stage_name!r} (attempt {attempt})"
            )
        injector = self._first("hang_stage", attempt, stage_name, index)
        if injector is not None:
            # "Forever" by default: a hang is the absence of progress,
            # and only the watchdog (or test timeout) should end it.
            time.sleep(injector.seconds or 3600.0)
        injector = self._first("raise_error", attempt, stage_name, index)
        if injector is not None:
            raise FaultInjected(
                f"injected transient error at stage {stage_name!r} (attempt {attempt})"
            )

    def on_checkpoint(
        self, path, stage_name: str, attempt: Optional[int]
    ) -> None:
        """Corrupt the just-written checkpoint file when matched."""
        injector = self._first("corrupt_checkpoint", attempt, stage_name, None)
        if injector is None:
            return
        try:
            with open(path, "wb") as handle:
                handle.write(b"\x00corrupted-by-fault-injection\x00")
        except OSError:
            pass
