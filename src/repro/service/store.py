"""SQLite-backed durable job store.

One database file holds the whole serving state: a ``jobs`` table (the
queue *and* the archive — state transitions never delete rows) and an
append-only ``job_events`` table (per-job, monotonically numbered, the
substrate of live progress reporting).  SQLite via the stdlib keeps the
service dependency-free while giving the two properties a durable queue
actually needs: atomic claim (``queued`` → ``running`` under one
transaction, priority-ordered) and crash-safe persistence (WAL mode, so
a ``kill -9`` mid-transaction loses at most the uncommitted write).

States and transitions::

    queued ──claim──> running ──> succeeded
       │                 │  └───> failed         (permanent error)
       │                 └──────> cancelled      (cooperative, between stages)
       └──cancel──> cancelled
    running ──lease expiry / worker death──> queued    (retry, with backoff)
    running ──retryable failure──> queued              (retry, with backoff)
    running ──attempts exhausted──> poisoned            (quarantine)

Claims are **leases**, not permanent ownership: ``claim_next`` stamps a
``lease_token`` (a fencing token unique per claim) and a
``lease_expires_at`` deadline, the worker renews via :meth:`heartbeat`,
and :meth:`reap_expired` re-enqueues any running job whose lease has
lapsed — which is what makes a dead or wedged worker's job recoverable
*without* restarting the service, and what makes several independent
``serve`` replicas sharing one database file safe.  Every write a
worker makes on behalf of a job is guarded by its token, so a fenced
zombie (a worker whose lease was reclaimed while it kept computing)
cannot corrupt the job's next attempt.

Retry accounting lives here too: a reclaimed or transiently-failed job
re-enqueues with ``next_attempt_at`` pushed out by exponential backoff
(deterministic jitter — seeded by job id and attempt, so runs
reproduce), until ``max_attempts`` is reached and the job is
quarantined in the terminal ``poisoned`` state with its captured
failure reason.  ``failed`` remains reserved for *permanent* errors
(invalid input, missing files) where retrying cannot help.

Idempotency keys make submission retry-safe: re-submitting with a key
the store has seen returns the existing job instead of enqueueing a
duplicate — exactly what an HTTP client that lost a response needs.

Thread-safety: one connection guarded by an ``RLock`` per store
instance; cross-process safety comes from SQLite's own locking (with a
``busy_timeout`` so concurrent replicas queue instead of erroring) plus
the rowcount-checked guarded UPDATEs on every state transition.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import JobNotFoundError, JobStateError
from ..telemetry import get_registry
from .faults import FaultPlan
from .spec import JobSpec

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_SUCCEEDED = "succeeded"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
STATE_POISONED = "poisoned"

#: Every state a job can be in, in lifecycle order.
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    STATE_FAILED,
    STATE_CANCELLED,
    STATE_POISONED,
)

#: States a job never leaves.
TERMINAL_STATES = (STATE_SUCCEEDED, STATE_FAILED, STATE_CANCELLED, STATE_POISONED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    state            TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    idempotency_key  TEXT UNIQUE,
    spec             TEXT NOT NULL,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    error            TEXT,
    result_dir       TEXT,
    lease_token      TEXT,
    lease_expires_at REAL,
    next_attempt_at  REAL,
    max_attempts     INTEGER
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, created_at ASC);
CREATE TABLE IF NOT EXISTS job_events (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL,
    type       TEXT NOT NULL,
    payload    TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (job_id, seq)
);
"""

#: Columns added after the first released schema; applied by ALTER TABLE
#: when opening a database file that predates them, so a data dir from
#: an older service version keeps working.
_MIGRATED_COLUMNS = (
    ("lease_token", "TEXT"),
    ("lease_expires_at", "REAL"),
    ("next_attempt_at", "REAL"),
    ("max_attempts", "INTEGER"),
)


@dataclass
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    state: str
    priority: int
    idempotency_key: Optional[str]
    spec: JobSpec
    created_at: float
    updated_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cancel_requested: bool = False
    worker: Optional[str] = None
    error: Optional[str] = None
    result_dir: Optional[str] = None
    lease_token: Optional[str] = None
    lease_expires_at: Optional[float] = None
    next_attempt_at: Optional[float] = None
    max_attempts: Optional[int] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON shape of a job as the REST API reports it.

        Inline read payloads are summarised to counts: a status poll
        must not echo megabytes of sequence data back on every request
        (the worker reads the spec from the store, never from here).
        The lease *token* stays private — it is the fencing credential;
        the lease deadline and retry schedule are reported.
        """
        spec_dict = self.spec.to_dict()
        input_block = spec_dict["input"]
        if input_block.get("mode") == "inline":
            for key in ("reads", "pairs"):
                if key in input_block:
                    input_block[f"num_{key}"] = len(input_block.pop(key))
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "idempotency_key": self.idempotency_key,
            "spec": spec_dict,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "worker": self.worker,
            "error": self.error,
            "lease_expires_at": self.lease_expires_at,
            "next_attempt_at": self.next_attempt_at,
            "max_attempts": self.max_attempts,
        }


@dataclass
class JobEvent:
    """One row of the append-only per-job event log."""

    job_id: str
    seq: int
    created_at: float
    type: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "created_at": self.created_at,
            "type": self.type,
            "payload": self.payload,
        }


@dataclass
class Reclaim:
    """One job taken back from a dead or expired lease holder."""

    record: JobRecord
    previous_owner: Optional[str]
    outcome: str  # "requeued" or "poisoned"


#: Default bound on how often a job may be (re)claimed.  Without a cap,
#: a job that *causes* worker death (OOM, wedged backend) would
#: crash-loop through the pool forever; at the cap it is quarantined in
#: the ``poisoned`` state instead.
DEFAULT_MAX_ATTEMPTS = 3

#: Default lease duration.  Long enough that a healthy worker (which
#: renews every lease_seconds/3) never loses a lease to scheduling
#: hiccups; short enough that a dead replica's jobs come back quickly.
DEFAULT_LEASE_SECONDS = 15.0

#: Exponential backoff between attempts: base * 2^(attempt-1), capped,
#: with deterministic ±20% jitter so reclaimed bursts do not re-claim
#: in lockstep but tests still reproduce exactly.
DEFAULT_BACKOFF_SECONDS = 1.0
DEFAULT_BACKOFF_CAP_SECONDS = 30.0


def retry_backoff(
    job_id: str,
    attempt: int,
    base: float = DEFAULT_BACKOFF_SECONDS,
    cap: float = DEFAULT_BACKOFF_CAP_SECONDS,
) -> float:
    """Backoff before retrying ``job_id`` after its ``attempt``-th try.

    Deterministic: the jitter multiplier (0.8–1.2) is derived from a
    hash of ``job_id:attempt``, never from a random source, so a chaos
    test can predict the exact requeue schedule.
    """
    delay = min(cap, base * (2 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
    jitter = 0.8 + 0.4 * (digest[0] / 255.0)
    return delay * jitter


class JobStore:
    """Durable queue + archive + event log over one SQLite file."""

    def __init__(
        self,
        path,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS,
    ) -> None:
        self.max_attempts = max_attempts
        self.lease_seconds = lease_seconds
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # Monotonic enqueue stamps for queue-latency measurement.  The
        # row's created_at is wall-clock and can jump (NTP slew, DST on
        # naive hosts), so latency is derived from time.monotonic()
        # captured at enqueue whenever this process did the enqueueing;
        # jobs enqueued by a previous process fall back to wall-clock.
        self._enqueue_monotonic: Dict[str, float] = {}
        self._event_write_delay = FaultPlan.from_env().store_write_delay()
        self._connection = sqlite3.connect(
            str(self.path), check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            # WAL survives kill -9 with at most the last uncommitted
            # write lost; NORMAL sync is the standard pairing for it.
            # busy_timeout makes concurrent replicas (and our own worker
            # processes) queue on SQLite's write lock instead of
            # erroring out with "database is locked".
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute("PRAGMA busy_timeout=10000")
            self._connection.executescript(_SCHEMA)
            self._migrate_locked()
            self._connection.commit()

    def _migrate_locked(self) -> None:
        existing = {
            row["name"]
            for row in self._connection.execute("PRAGMA table_info(jobs)")
        }
        for name, column_type in _MIGRATED_COLUMNS:
            if name not in existing:
                self._connection.execute(
                    f"ALTER TABLE jobs ADD COLUMN {name} {column_type}"
                )

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue a job; an already-seen idempotency key dedups.

        Returns the enqueued (or pre-existing) record; use
        :meth:`submit_detecting` when the caller needs to know which
        of the two happened.
        """
        record, _ = self.submit_detecting(
            spec, priority=priority, idempotency_key=idempotency_key
        )
        return record

    def submit_detecting(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ):
        """Like :meth:`submit`, returning ``(record, created)``.

        The created flag is computed under the same lock as the
        insert, so concurrent submissions sharing a new idempotency
        key report exactly one creation between them.  Reusing a key
        with a *different* spec raises
        :class:`~repro.errors.JobStateError` — silently answering with
        the old job's results would hand the caller contigs computed
        from inputs they did not submit.
        """
        spec.validate()
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)
        max_attempts = spec.retry.get("max_attempts")
        now = time.time()
        job_id = uuid.uuid4().hex
        with self._lock:
            if idempotency_key is not None:
                row = self._connection.execute(
                    "SELECT * FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None:
                    if row["spec"] != spec_json:
                        raise JobStateError(
                            f"idempotency key {idempotency_key!r} was "
                            f"already used by job {row['id']} with a "
                            "different spec; pick a new key or resubmit "
                            "the original spec"
                        )
                    return self._record(row), False
            try:
                self._connection.execute(
                    "INSERT INTO jobs (id, state, priority, idempotency_key,"
                    " spec, created_at, updated_at, max_attempts)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        STATE_QUEUED,
                        priority,
                        idempotency_key,
                        spec_json,
                        now,
                        now,
                        max_attempts,
                    ),
                )
            except sqlite3.IntegrityError:
                # Another *process* sharing the database file inserted
                # this key between our SELECT and INSERT (the in-process
                # lock cannot cover that window); dedup instead of 500.
                self._connection.rollback()
                row = self._connection.execute(
                    "SELECT * FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None and row["spec"] == spec_json:
                    return self._record(row), False
                raise JobStateError(
                    f"idempotency key {idempotency_key!r} was concurrently "
                    "used with a different spec"
                ) from None
            self._append_event_locked(job_id, "submitted", {"priority": priority})
            self._connection.commit()
            self._enqueue_monotonic[job_id] = time.monotonic()
        get_registry().counter(
            "repro_jobs_submitted_total", "Jobs accepted into the queue."
        ).inc()
        return self.get(job_id), True

    def find_by_key(self, idempotency_key: str) -> Optional[JobRecord]:
        """The job previously submitted under this key, if any."""
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE idempotency_key = ?",
                (idempotency_key,),
            ).fetchone()
        return self._record(row) if row is not None else None

    # ------------------------------------------------------------------
    # worker side: claim, heartbeat, finish
    # ------------------------------------------------------------------
    def claim_next(
        self, worker: str, lease_seconds: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Atomically lease the best queued job to ``worker``.

        Best = highest priority, then oldest, skipping jobs whose retry
        backoff (``next_attempt_at``) has not elapsed.  Returns None
        when nothing is claimable.  The claim stamps a fresh
        ``lease_token`` — the fencing credential all of this attempt's
        subsequent writes must present — and a ``lease_expires_at``
        deadline the worker keeps pushing forward via :meth:`heartbeat`.

        The store lock serialises claims within this process; the
        ``state = queued`` guard on the UPDATE (with a rowcount check)
        additionally protects against other *processes* sharing the
        database file — worker processes and sibling replicas alike.
        """
        lease = self.lease_seconds if lease_seconds is None else lease_seconds
        now = time.time()
        token = uuid.uuid4().hex
        with self._lock:
            while True:
                row = self._connection.execute(
                    "SELECT id FROM jobs WHERE state = ?"
                    " AND (next_attempt_at IS NULL OR next_attempt_at <= ?)"
                    " ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                    (STATE_QUEUED, now),
                ).fetchone()
                if row is None:
                    return None
                job_id = row["id"]
                cursor = self._connection.execute(
                    "UPDATE jobs SET state = ?, worker = ?, started_at = ?,"
                    " updated_at = ?, attempts = attempts + 1,"
                    " lease_token = ?, lease_expires_at = ?, next_attempt_at = NULL"
                    " WHERE id = ? AND state = ?",
                    (
                        STATE_RUNNING,
                        worker,
                        now,
                        now,
                        token,
                        now + lease,
                        job_id,
                        STATE_QUEUED,
                    ),
                )
                if cursor.rowcount != 1:
                    # Lost the race to a foreign process; try the next
                    # queued job rather than double-running this one.
                    self._connection.commit()
                    continue
                enqueued = self._enqueue_monotonic.pop(job_id, None)
                if enqueued is not None:
                    claim_latency = time.monotonic() - enqueued
                else:
                    # Enqueued by another/previous process: wall-clock
                    # difference is the only measure available.
                    created = self._connection.execute(
                        "SELECT created_at FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()["created_at"]
                    claim_latency = max(0.0, now - created)
                attempt = self._connection.execute(
                    "SELECT attempts FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()["attempts"]
                self._append_event_locked(
                    job_id,
                    "started",
                    {
                        "worker": worker,
                        "attempt": attempt,
                        "claim_latency_seconds": round(claim_latency, 6),
                        "lease_expires_at": round(now + lease, 6),
                    },
                )
                self._connection.commit()
                break
        get_registry().histogram(
            "repro_claim_latency_seconds",
            "Seconds between a job entering the queue and a worker claiming it.",
        ).observe(claim_latency)
        return self.get(job_id)

    def heartbeat(
        self, job_id: str, token: str, lease_seconds: Optional[float] = None
    ) -> bool:
        """Renew the job's lease; False means the worker has been fenced.

        A False return is the signal a worker must obey *immediately*:
        its lease expired (or was reclaimed) and the job may already be
        running elsewhere — every further write it could make is
        rejected by the token guards anyway.
        """
        lease = self.lease_seconds if lease_seconds is None else lease_seconds
        now = time.time()
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE jobs SET lease_expires_at = ?, updated_at = ?"
                " WHERE id = ? AND state = ? AND lease_token = ?",
                (now + lease, now, job_id, STATE_RUNNING, token),
            )
            self._connection.commit()
            return cursor.rowcount == 1

    def finish_attempt(
        self,
        job_id: str,
        token: str,
        state: str,
        error: Optional[str] = None,
        result_dir: Optional[str] = None,
    ) -> bool:
        """Token-fenced terminal write for a *successful or cancelled* attempt.

        Returns False (writing nothing) when the caller's lease is no
        longer current — the fenced-zombie case; the reclaimed job's
        next attempt owns the row now.
        """
        now = time.time()
        with self._lock:
            cursor = self._connection.execute(
                "UPDATE jobs SET state = ?, error = ?, result_dir = ?,"
                " finished_at = ?, updated_at = ?,"
                " lease_token = NULL, lease_expires_at = NULL"
                " WHERE id = ? AND state = ? AND lease_token = ?",
                (state, error, result_dir, now, now, job_id, STATE_RUNNING, token),
            )
            if cursor.rowcount != 1:
                self._connection.commit()
                return False
            payload: Dict[str, Any] = {}
            if error:
                payload["error"] = error
            self._append_event_locked(job_id, state, payload)
            self._connection.commit()
            return True

    def fail_attempt(
        self,
        job_id: str,
        token: str,
        error: str,
        retryable: bool = True,
    ) -> Optional[str]:
        """Record a failed attempt; returns what happened to the job.

        ``retryable=False`` (permanent errors — bad input, missing
        files) goes straight to ``failed``.  Retryable failures requeue
        with backoff until ``max_attempts``, then quarantine as
        ``poisoned``.  Returns ``"failed"``, ``"requeued"``,
        ``"poisoned"``, or None when the token was fenced (another
        attempt owns the job; nothing was written).
        """
        now = time.time()
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise JobNotFoundError(job_id)
            if row["state"] != STATE_RUNNING or row["lease_token"] != token:
                return None
            if not retryable:
                # The token guard is repeated on the UPDATE itself: the
                # SELECT above runs outside the write transaction, so a
                # cross-process reclaim can commit in between — the
                # rowcount check is what actually refuses the late write.
                cursor = self._connection.execute(
                    "UPDATE jobs SET state = ?, error = ?, finished_at = ?,"
                    " updated_at = ?, lease_token = NULL, lease_expires_at = NULL"
                    " WHERE id = ? AND state = ? AND lease_token = ?",
                    (STATE_FAILED, error, now, now, job_id, STATE_RUNNING, token),
                )
                if cursor.rowcount != 1:
                    self._connection.commit()
                    return None
                self._append_event_locked(job_id, STATE_FAILED, {"error": error})
                self._connection.commit()
                return "failed"
            outcome = self._retry_or_quarantine_locked(
                row, error=error, event_type="retry-scheduled", now=now
            )
            self._connection.commit()
        if outcome == "requeued":
            get_registry().counter(
                "repro_job_retries_total",
                "Job attempts re-enqueued after a retryable failure or reclaim.",
            ).inc()
        return outcome

    # ------------------------------------------------------------------
    # lease reclamation
    # ------------------------------------------------------------------
    def reap_expired(
        self, now: Optional[float] = None, reason: str = "lease-expired"
    ) -> List[Reclaim]:
        """Take back every running job whose lease has lapsed.

        The scheduler's reaper loop calls this periodically — *not*
        just at startup — so a worker that died without a supervisor
        noticing (or a whole dead replica) leaks its jobs for at most
        one lease duration.  Rows with a NULL lease (written by an
        older service version) count as expired.
        """
        now = time.time() if now is None else now
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM jobs WHERE state = ?"
                " AND (lease_expires_at IS NULL OR lease_expires_at < ?)",
                (STATE_RUNNING, now),
            ).fetchall()
            reclaims = []
            for row in rows:
                outcome = self._retry_or_quarantine_locked(
                    row,
                    error=f"lease expired (held by {row['worker']}): {reason}",
                    event_type="recovered",
                    now=now,
                    reason=reason,
                )
                if outcome is None:
                    # The worker finished (token-fenced) between our
                    # SELECT and UPDATE; nothing was reclaimed.
                    continue
                reclaims.append(
                    Reclaim(
                        record=self.get(row["id"]),
                        previous_owner=row["worker"],
                        outcome=outcome,
                    )
                )
            self._connection.commit()
        for reclaim in reclaims:
            get_registry().counter(
                "repro_lease_reclaims_total",
                "Running jobs taken back from expired or dead lease holders.",
                labelnames=("reason",),
            ).labels(reason).inc()
        return reclaims

    def reclaim_worker(
        self, worker: str, reason: str = "worker-died"
    ) -> List[Reclaim]:
        """Take back every running job leased to ``worker``, immediately.

        The supervisor calls this the moment it observes a worker
        process die — no need to wait out the lease when the owner is
        known dead.
        """
        now = time.time()
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM jobs WHERE state = ? AND worker = ?",
                (STATE_RUNNING, worker),
            ).fetchall()
            reclaims = []
            for row in rows:
                outcome = self._retry_or_quarantine_locked(
                    row,
                    error=f"worker {worker} died mid-attempt",
                    event_type="recovered",
                    now=now,
                    reason=reason,
                )
                if outcome is None:
                    # The dying worker's last token-fenced write landed
                    # first; the job is already terminal. Leave it be.
                    continue
                reclaims.append(
                    Reclaim(
                        record=self.get(row["id"]),
                        previous_owner=worker,
                        outcome=outcome,
                    )
                )
            self._connection.commit()
        for reclaim in reclaims:
            get_registry().counter(
                "repro_lease_reclaims_total",
                "Running jobs taken back from expired or dead lease holders.",
                labelnames=("reason",),
            ).labels(reason).inc()
        return reclaims

    def _retry_or_quarantine_locked(
        self,
        row: sqlite3.Row,
        error: str,
        event_type: str,
        now: float,
        reason: Optional[str] = None,
    ) -> Optional[str]:
        """Requeue with backoff, or quarantine at the attempt limit.

        The shared tail of every non-permanent attempt failure: lease
        expiry, worker death, timeouts, and retryable exceptions all
        converge here.  Returns ``"requeued"``, ``"poisoned"``, or None
        when the row moved on under us — both UPDATEs are fenced on the
        (state, lease_token) read by the caller's SELECT, because that
        SELECT runs outside the write transaction: a worker process can
        commit its own token-guarded finish in the gap, and flipping a
        just-succeeded job back to queued would run it twice.  ``IS``
        (not ``=``) so NULL leases from a pre-lease schema still match.
        """
        job_id = row["id"]
        attempts = row["attempts"]
        token = row["lease_token"]
        limit = row["max_attempts"] or self.max_attempts
        if attempts >= limit:
            cursor = self._connection.execute(
                "UPDATE jobs SET state = ?, worker = NULL, error = ?,"
                " finished_at = ?, updated_at = ?,"
                " lease_token = NULL, lease_expires_at = NULL"
                " WHERE id = ? AND state = ? AND lease_token IS ?",
                (
                    STATE_POISONED,
                    f"poisoned after {attempts} attempts; last failure: {error}",
                    now,
                    now,
                    job_id,
                    STATE_RUNNING,
                    token,
                ),
            )
            if cursor.rowcount != 1:
                return None
            payload = {"attempts": attempts, "error": error}
            if reason:
                payload["reason"] = reason
            self._append_event_locked(job_id, STATE_POISONED, payload)
            get_registry().counter(
                "repro_jobs_poisoned_total",
                "Jobs quarantined after exhausting their retry budget.",
            ).inc()
            return "poisoned"
        retry = {}
        try:
            retry = json.loads(row["spec"]).get("retry", {})
        except (json.JSONDecodeError, AttributeError):
            pass
        backoff = retry_backoff(
            job_id,
            attempts,
            base=retry.get("backoff_seconds", self.backoff_seconds),
            cap=retry.get("backoff_cap_seconds", self.backoff_cap_seconds),
        )
        next_attempt_at = now + backoff
        cursor = self._connection.execute(
            "UPDATE jobs SET state = ?, worker = NULL, updated_at = ?,"
            " lease_token = NULL, lease_expires_at = NULL, next_attempt_at = ?"
            " WHERE id = ? AND state = ? AND lease_token IS ?",
            (STATE_QUEUED, now, next_attempt_at, job_id, STATE_RUNNING, token),
        )
        if cursor.rowcount != 1:
            return None
        payload = {
            "attempt": attempts,
            "error": error,
            "backoff_seconds": round(backoff, 6),
            "next_attempt_at": round(next_attempt_at, 6),
        }
        if reason:
            payload["reason"] = reason
        self._append_event_locked(job_id, event_type, payload)
        # Claim latency of the retry counts from when the job becomes
        # claimable again (after backoff), not from the failure instant.
        self._enqueue_monotonic[job_id] = time.monotonic() + backoff
        return "requeued"

    # ------------------------------------------------------------------
    # unfenced terminal writes (single-owner callers, e.g. tests)
    # ------------------------------------------------------------------
    def mark_succeeded(self, job_id: str, result_dir: Optional[str] = None) -> None:
        self._finish(job_id, STATE_SUCCEEDED, result_dir=result_dir)

    def mark_failed(self, job_id: str, error: str) -> None:
        self._finish(job_id, STATE_FAILED, error=error)

    def mark_cancelled(self, job_id: str) -> None:
        self._finish(job_id, STATE_CANCELLED)

    def _finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        result_dir: Optional[str] = None,
    ) -> None:
        now = time.time()
        with self._lock:
            record = self.get(job_id)
            if record.is_terminal:
                raise JobStateError(
                    f"job {job_id} is already terminal ({record.state}); "
                    f"cannot mark it {state}"
                )
            self._connection.execute(
                "UPDATE jobs SET state = ?, error = ?, result_dir = ?,"
                " finished_at = ?, updated_at = ?,"
                " lease_token = NULL, lease_expires_at = NULL"
                " WHERE id = ?",
                (state, error, result_dir, now, now, job_id),
            )
            payload: Dict[str, Any] = {}
            if error:
                payload["error"] = error
            self._append_event_locked(job_id, state, payload)
            self._connection.commit()

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs immediately, running ones cooperatively.

        A running job only sees the request at its next stage boundary
        (the worker's hook checks the flag), which is the documented
        granularity — stages are atomic units of work.
        """
        with self._lock:
            record = self.get(job_id)
            if record.state == STATE_QUEUED:
                now = time.time()
                self._connection.execute(
                    "UPDATE jobs SET state = ?, cancel_requested = 1,"
                    " finished_at = ?, updated_at = ?, next_attempt_at = NULL"
                    " WHERE id = ?",
                    (STATE_CANCELLED, now, now, job_id),
                )
                self._append_event_locked(job_id, STATE_CANCELLED, {})
                self._connection.commit()
                self._enqueue_monotonic.pop(job_id, None)
            elif record.state == STATE_RUNNING:
                self._connection.execute(
                    "UPDATE jobs SET cancel_requested = 1, updated_at = ?"
                    " WHERE id = ?",
                    (time.time(), job_id),
                )
                self._append_event_locked(job_id, "cancel-requested", {})
                self._connection.commit()
            # Terminal jobs: cancelling is a no-op, not an error — the
            # client's intent (job should not run further) already holds.
        return self.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(job_id)
        return bool(row["cancel_requested"])

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_interrupted(self) -> List[JobRecord]:
        """Startup-time sweep: reclaim jobs whose leases have lapsed.

        Called once at service start-up.  Jobs leased by a *live*
        sibling replica keep running untouched — their leases are
        current, and force-reclaiming them is exactly the double-run
        bug leases exist to prevent.  Jobs from the process this
        service is replacing (or from an older, lease-less schema) have
        expired or NULL leases and re-enqueue for resume; at the
        attempt limit they quarantine as ``poisoned``.
        """
        return [
            reclaim.record
            for reclaim in self.reap_expired(reason="service-restart")
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(job_id)
        return self._record(row)

    def list_jobs(
        self,
        state: Optional[str] = None,
        limit: int = 100,
    ) -> List[JobRecord]:
        """Most recent first; optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise JobStateError(
                f"unknown state filter {state!r}; states: {', '.join(JOB_STATES)}"
            )
        with self._lock:
            if state is None:
                rows = self._connection.execute(
                    "SELECT * FROM jobs ORDER BY created_at DESC, id DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = self._connection.execute(
                    "SELECT * FROM jobs WHERE state = ?"
                    " ORDER BY created_at DESC, id DESC LIMIT ?",
                    (state, limit),
                ).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job counts per state (zero-filled), for the health endpoint."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------
    # event log
    # ------------------------------------------------------------------
    def append_event(
        self, job_id: str, type: str, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        with self._lock:
            self._append_event_locked(job_id, type, payload or {})
            self._connection.commit()

    def _append_event_locked(
        self, job_id: str, type: str, payload: Dict[str, Any]
    ) -> None:
        if self._event_write_delay:
            time.sleep(self._event_write_delay)
        # Seq allocation and insert in ONE statement: atomic under
        # SQLite's write lock, so even two *processes* sharing the
        # database file (the scenario claim_next guards) cannot collide
        # on (job_id, seq).
        self._connection.execute(
            "INSERT INTO job_events (job_id, seq, created_at, type, payload)"
            " SELECT ?, COALESCE(MAX(seq), 0) + 1, ?, ?, ?"
            " FROM job_events WHERE job_id = ?",
            (job_id, time.time(), type, json.dumps(payload), job_id),
        )

    def events(self, job_id: str, after: int = 0) -> List[JobEvent]:
        """The job's events with ``seq > after``, oldest first."""
        with self._lock:
            # Existence probe only — a full get() would re-decode the
            # persisted spec (potentially megabytes of inline reads) on
            # every poll of the event log.
            exists = self._connection.execute(
                "SELECT 1 FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if exists is None:
                raise JobNotFoundError(job_id)
            rows = self._connection.execute(
                "SELECT * FROM job_events WHERE job_id = ? AND seq > ?"
                " ORDER BY seq ASC",
                (job_id, after),
            ).fetchall()
        return [
            JobEvent(
                job_id=row["job_id"],
                seq=row["seq"],
                created_at=row["created_at"],
                type=row["type"],
                payload=json.loads(row["payload"]),
            )
            for row in rows
        ]

    # ------------------------------------------------------------------
    # row decoding
    # ------------------------------------------------------------------
    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            state=row["state"],
            priority=row["priority"],
            idempotency_key=row["idempotency_key"],
            # Trusted decode: the spec was validated at submit time, and
            # re-validating on every row read would re-parse large
            # inline payloads on each status poll.
            spec=JobSpec.from_dict(json.loads(row["spec"]), validate=False),
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            cancel_requested=bool(row["cancel_requested"]),
            worker=row["worker"],
            error=row["error"],
            result_dir=row["result_dir"],
            lease_token=row["lease_token"],
            lease_expires_at=row["lease_expires_at"],
            next_attempt_at=row["next_attempt_at"],
            max_attempts=row["max_attempts"],
        )
