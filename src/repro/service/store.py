"""SQLite-backed durable job store.

One database file holds the whole serving state: a ``jobs`` table (the
queue *and* the archive — state transitions never delete rows) and an
append-only ``job_events`` table (per-job, monotonically numbered, the
substrate of live progress reporting).  SQLite via the stdlib keeps the
service dependency-free while giving the two properties a durable queue
actually needs: atomic claim (``queued`` → ``running`` under one
transaction, priority-ordered) and crash-safe persistence (WAL mode, so
a ``kill -9`` mid-transaction loses at most the uncommitted write).

States and transitions::

    queued ──claim──> running ──> succeeded
       │                 │  └───> failed
       │                 └──────> cancelled      (cooperative, between stages)
       └──cancel──> cancelled
    running ──recover_interrupted──> queued      (service restart)

Idempotency keys make submission retry-safe: re-submitting with a key
the store has seen returns the existing job instead of enqueueing a
duplicate — exactly what an HTTP client that lost a response needs.

Thread-safety: one connection guarded by an ``RLock``.  The service is
I/O-bound on assemblies, not on store metadata, so a single writer is
not a bottleneck; it *is* the simplest arrangement that cannot deadlock
or interleave claims.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import JobNotFoundError, JobStateError
from ..telemetry import get_registry
from .spec import JobSpec

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_SUCCEEDED = "succeeded"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: Every state a job can be in, in lifecycle order.
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUCCEEDED,
    STATE_FAILED,
    STATE_CANCELLED,
)

#: States a job never leaves.
TERMINAL_STATES = (STATE_SUCCEEDED, STATE_FAILED, STATE_CANCELLED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    state            TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    idempotency_key  TEXT UNIQUE,
    spec             TEXT NOT NULL,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    error            TEXT,
    result_dir       TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, created_at ASC);
CREATE TABLE IF NOT EXISTS job_events (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL,
    type       TEXT NOT NULL,
    payload    TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (job_id, seq)
);
"""


@dataclass
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    state: str
    priority: int
    idempotency_key: Optional[str]
    spec: JobSpec
    created_at: float
    updated_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cancel_requested: bool = False
    worker: Optional[str] = None
    error: Optional[str] = None
    result_dir: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """JSON shape of a job as the REST API reports it.

        Inline read payloads are summarised to counts: a status poll
        must not echo megabytes of sequence data back on every request
        (the worker reads the spec from the store, never from here).
        """
        spec_dict = self.spec.to_dict()
        input_block = spec_dict["input"]
        if input_block.get("mode") == "inline":
            for key in ("reads", "pairs"):
                if key in input_block:
                    input_block[f"num_{key}"] = len(input_block.pop(key))
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "idempotency_key": self.idempotency_key,
            "spec": spec_dict,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "worker": self.worker,
            "error": self.error,
        }


@dataclass
class JobEvent:
    """One row of the append-only per-job event log."""

    job_id: str
    seq: int
    created_at: float
    type: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "created_at": self.created_at,
            "type": self.type,
            "payload": self.payload,
        }


#: Default bound on how often a job may be (re)claimed.  Recovery after
#: a crash re-enqueues running jobs; without a cap, a job that *causes*
#: the crash (OOM, wedged backend) would crash-loop the service forever.
DEFAULT_MAX_ATTEMPTS = 3


class JobStore:
    """Durable queue + archive + event log over one SQLite file."""

    def __init__(self, path, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self.max_attempts = max_attempts
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # Monotonic enqueue stamps for queue-latency measurement.  The
        # row's created_at is wall-clock and can jump (NTP slew, DST on
        # naive hosts), so latency is derived from time.monotonic()
        # captured at enqueue whenever this process did the enqueueing;
        # jobs enqueued by a previous process fall back to wall-clock.
        self._enqueue_monotonic: Dict[str, float] = {}
        self._connection = sqlite3.connect(
            str(self.path), check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            # WAL survives kill -9 with at most the last uncommitted
            # write lost; NORMAL sync is the standard pairing for it.
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue a job; an already-seen idempotency key dedups.

        Returns the enqueued (or pre-existing) record; use
        :meth:`submit_detecting` when the caller needs to know which
        of the two happened.
        """
        record, _ = self.submit_detecting(
            spec, priority=priority, idempotency_key=idempotency_key
        )
        return record

    def submit_detecting(
        self,
        spec: JobSpec,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ):
        """Like :meth:`submit`, returning ``(record, created)``.

        The created flag is computed under the same lock as the
        insert, so concurrent submissions sharing a new idempotency
        key report exactly one creation between them.  Reusing a key
        with a *different* spec raises
        :class:`~repro.errors.JobStateError` — silently answering with
        the old job's results would hand the caller contigs computed
        from inputs they did not submit.
        """
        spec.validate()
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)
        now = time.time()
        job_id = uuid.uuid4().hex
        with self._lock:
            if idempotency_key is not None:
                row = self._connection.execute(
                    "SELECT * FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None:
                    if row["spec"] != spec_json:
                        raise JobStateError(
                            f"idempotency key {idempotency_key!r} was "
                            f"already used by job {row['id']} with a "
                            "different spec; pick a new key or resubmit "
                            "the original spec"
                        )
                    return self._record(row), False
            try:
                self._connection.execute(
                    "INSERT INTO jobs (id, state, priority, idempotency_key,"
                    " spec, created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        STATE_QUEUED,
                        priority,
                        idempotency_key,
                        spec_json,
                        now,
                        now,
                    ),
                )
            except sqlite3.IntegrityError:
                # Another *process* sharing the database file inserted
                # this key between our SELECT and INSERT (the in-process
                # lock cannot cover that window); dedup instead of 500.
                self._connection.rollback()
                row = self._connection.execute(
                    "SELECT * FROM jobs WHERE idempotency_key = ?",
                    (idempotency_key,),
                ).fetchone()
                if row is not None and row["spec"] == spec_json:
                    return self._record(row), False
                raise JobStateError(
                    f"idempotency key {idempotency_key!r} was concurrently "
                    "used with a different spec"
                ) from None
            self._append_event_locked(job_id, "submitted", {"priority": priority})
            self._connection.commit()
            self._enqueue_monotonic[job_id] = time.monotonic()
        get_registry().counter(
            "repro_jobs_submitted_total", "Jobs accepted into the queue."
        ).inc()
        return self.get(job_id), True

    def find_by_key(self, idempotency_key: str) -> Optional[JobRecord]:
        """The job previously submitted under this key, if any."""
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE idempotency_key = ?",
                (idempotency_key,),
            ).fetchone()
        return self._record(row) if row is not None else None

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim_next(self, worker: str) -> Optional[JobRecord]:
        """Atomically move the best queued job to ``running``.

        Best = highest priority, then oldest.  Returns None when the
        queue is empty.  The store lock serialises claims within this
        process; the ``state = queued`` guard on the UPDATE (with a
        rowcount check) additionally protects against another *process*
        sharing the database file — a job can only ever be claimed by
        whoever flips it first.
        """
        now = time.time()
        with self._lock:
            while True:
                row = self._connection.execute(
                    "SELECT id FROM jobs WHERE state = ? "
                    "ORDER BY priority DESC, created_at ASC, id ASC LIMIT 1",
                    (STATE_QUEUED,),
                ).fetchone()
                if row is None:
                    return None
                job_id = row["id"]
                cursor = self._connection.execute(
                    "UPDATE jobs SET state = ?, worker = ?, started_at = ?,"
                    " updated_at = ?, attempts = attempts + 1"
                    " WHERE id = ? AND state = ?",
                    (STATE_RUNNING, worker, now, now, job_id, STATE_QUEUED),
                )
                if cursor.rowcount != 1:
                    # Lost the race to a foreign process; try the next
                    # queued job rather than double-running this one.
                    self._connection.commit()
                    continue
                enqueued = self._enqueue_monotonic.pop(job_id, None)
                if enqueued is not None:
                    claim_latency = time.monotonic() - enqueued
                else:
                    # Enqueued by another/previous process: wall-clock
                    # difference is the only measure available.
                    created = self._connection.execute(
                        "SELECT created_at FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()["created_at"]
                    claim_latency = max(0.0, now - created)
                self._append_event_locked(
                    job_id,
                    "started",
                    {
                        "worker": worker,
                        "claim_latency_seconds": round(claim_latency, 6),
                    },
                )
                self._connection.commit()
                break
        get_registry().histogram(
            "repro_claim_latency_seconds",
            "Seconds between a job entering the queue and a worker claiming it.",
        ).observe(claim_latency)
        return self.get(job_id)

    def mark_succeeded(self, job_id: str, result_dir: Optional[str] = None) -> None:
        self._finish(job_id, STATE_SUCCEEDED, result_dir=result_dir)

    def mark_failed(self, job_id: str, error: str) -> None:
        self._finish(job_id, STATE_FAILED, error=error)

    def mark_cancelled(self, job_id: str) -> None:
        self._finish(job_id, STATE_CANCELLED)

    def _finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        result_dir: Optional[str] = None,
    ) -> None:
        now = time.time()
        with self._lock:
            record = self.get(job_id)
            if record.is_terminal:
                raise JobStateError(
                    f"job {job_id} is already terminal ({record.state}); "
                    f"cannot mark it {state}"
                )
            self._connection.execute(
                "UPDATE jobs SET state = ?, error = ?, result_dir = ?,"
                " finished_at = ?, updated_at = ? WHERE id = ?",
                (state, error, result_dir, now, now, job_id),
            )
            payload: Dict[str, Any] = {}
            if error:
                payload["error"] = error
            self._append_event_locked(job_id, state, payload)
            self._connection.commit()

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs immediately, running ones cooperatively.

        A running job only sees the request at its next stage boundary
        (the worker's hook checks the flag), which is the documented
        granularity — stages are atomic units of work.
        """
        with self._lock:
            record = self.get(job_id)
            if record.state == STATE_QUEUED:
                now = time.time()
                self._connection.execute(
                    "UPDATE jobs SET state = ?, cancel_requested = 1,"
                    " finished_at = ?, updated_at = ? WHERE id = ?",
                    (STATE_CANCELLED, now, now, job_id),
                )
                self._append_event_locked(job_id, STATE_CANCELLED, {})
                self._connection.commit()
                self._enqueue_monotonic.pop(job_id, None)
            elif record.state == STATE_RUNNING:
                self._connection.execute(
                    "UPDATE jobs SET cancel_requested = 1, updated_at = ?"
                    " WHERE id = ?",
                    (time.time(), job_id),
                )
                self._append_event_locked(job_id, "cancel-requested", {})
                self._connection.commit()
            # Terminal jobs: cancelling is a no-op, not an error — the
            # client's intent (job should not run further) already holds.
        return self.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(job_id)
        return bool(row["cancel_requested"])

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_interrupted(self) -> List[JobRecord]:
        """Re-enqueue every ``running`` job; returns the recovered records.

        Called once at service start-up: any job still marked running
        belonged to a process that died mid-assembly.  Its per-job
        checkpoint directory survives, so re-running it resumes from
        the last completed stage bit-identically.  A job already
        claimed ``max_attempts`` times is marked failed instead — if it
        took the process down that often, handing it to a worker again
        would crash-loop the service with no operator escape.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT id, attempts FROM jobs WHERE state = ?", (STATE_RUNNING,)
            ).fetchall()
            now = time.time()
            recovered_ids = []
            for row in rows:
                if row["attempts"] >= self.max_attempts:
                    self._connection.execute(
                        "UPDATE jobs SET state = ?, worker = NULL, error = ?,"
                        " finished_at = ?, updated_at = ? WHERE id = ?",
                        (
                            STATE_FAILED,
                            f"gave up after {row['attempts']} interrupted "
                            "attempts (the job may be crashing the service)",
                            now,
                            now,
                            row["id"],
                        ),
                    )
                    self._append_event_locked(
                        row["id"],
                        STATE_FAILED,
                        {"reason": "attempt limit reached during recovery"},
                    )
                    continue
                self._connection.execute(
                    "UPDATE jobs SET state = ?, worker = NULL, updated_at = ?"
                    " WHERE id = ?",
                    (STATE_QUEUED, now, row["id"]),
                )
                self._append_event_locked(
                    row["id"], "recovered", {"reason": "service restart"}
                )
                # Recovery re-enqueues: claim latency counts from here,
                # not from the original (pre-crash) submission.
                self._enqueue_monotonic[row["id"]] = time.monotonic()
                recovered_ids.append(row["id"])
            self._connection.commit()
            return [self.get(job_id) for job_id in recovered_ids]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobNotFoundError(job_id)
        return self._record(row)

    def list_jobs(
        self,
        state: Optional[str] = None,
        limit: int = 100,
    ) -> List[JobRecord]:
        """Most recent first; optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise JobStateError(
                f"unknown state filter {state!r}; states: {', '.join(JOB_STATES)}"
            )
        with self._lock:
            if state is None:
                rows = self._connection.execute(
                    "SELECT * FROM jobs ORDER BY created_at DESC, id DESC LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = self._connection.execute(
                    "SELECT * FROM jobs WHERE state = ?"
                    " ORDER BY created_at DESC, id DESC LIMIT ?",
                    (state, limit),
                ).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job counts per state (zero-filled), for the health endpoint."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------
    # event log
    # ------------------------------------------------------------------
    def append_event(
        self, job_id: str, type: str, payload: Optional[Dict[str, Any]] = None
    ) -> None:
        with self._lock:
            self._append_event_locked(job_id, type, payload or {})
            self._connection.commit()

    def _append_event_locked(
        self, job_id: str, type: str, payload: Dict[str, Any]
    ) -> None:
        # Seq allocation and insert in ONE statement: atomic under
        # SQLite's write lock, so even two *processes* sharing the
        # database file (the scenario claim_next guards) cannot collide
        # on (job_id, seq).
        self._connection.execute(
            "INSERT INTO job_events (job_id, seq, created_at, type, payload)"
            " SELECT ?, COALESCE(MAX(seq), 0) + 1, ?, ?, ?"
            " FROM job_events WHERE job_id = ?",
            (job_id, time.time(), type, json.dumps(payload), job_id),
        )

    def events(self, job_id: str, after: int = 0) -> List[JobEvent]:
        """The job's events with ``seq > after``, oldest first."""
        with self._lock:
            # Existence probe only — a full get() would re-decode the
            # persisted spec (potentially megabytes of inline reads) on
            # every poll of the event log.
            exists = self._connection.execute(
                "SELECT 1 FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if exists is None:
                raise JobNotFoundError(job_id)
            rows = self._connection.execute(
                "SELECT * FROM job_events WHERE job_id = ? AND seq > ?"
                " ORDER BY seq ASC",
                (job_id, after),
            ).fetchall()
        return [
            JobEvent(
                job_id=row["job_id"],
                seq=row["seq"],
                created_at=row["created_at"],
                type=row["type"],
                payload=json.loads(row["payload"]),
            )
            for row in rows
        ]

    # ------------------------------------------------------------------
    # row decoding
    # ------------------------------------------------------------------
    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            state=row["state"],
            priority=row["priority"],
            idempotency_key=row["idempotency_key"],
            # Trusted decode: the spec was validated at submit time, and
            # re-validating on every row read would re-parse large
            # inline payloads on each status poll.
            spec=JobSpec.from_dict(json.loads(row["spec"]), validate=False),
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            cancel_requested=bool(row["cancel_requested"]),
            worker=row["worker"],
            error=row["error"],
            result_dir=row["result_dir"],
        )
