"""Job-attempt execution: the code a worker runs, on either plane.

:func:`execute_attempt` is the single implementation of "run one
claimed job attempt" shared by the thread-backed pool (workers inside
the service process) and the process-backed pool (spawned worker
processes, :func:`worker_main`).  Around the actual assembly it wires
the fault model:

* a **heartbeat ticker** renews the job's lease every
  ``lease_seconds / 3``; a failed renewal means the worker has been
  fenced — the reaper gave the job away — and a worker *process*
  hard-exits immediately (:data:`EXIT_LEASE_LOST`) so it cannot write
  a fenced job's artifacts;
* a **watchdog** enforces the spec's per-job and per-stage deadlines;
  on expiry it records the failure (retry accounting included) and
  kills the worker process (:data:`EXIT_STAGE_TIMEOUT` /
  :data:`EXIT_JOB_TIMEOUT`) — the only reliable way to stop a wedged
  native call.  The thread plane cannot kill a thread, so there a
  timeout aborts at the next stage boundary (hard kills need the
  process plane);
* an **orphan check**: a worker process whose parent died re-parents;
  it exits (:data:`EXIT_ORPHANED`) rather than keep computing for a
  service that no longer exists;
* the :class:`~repro.service.faults.FaultPlan` fault points, which is
  how chaos tests make all of the above actually happen on demand.

Error taxonomy: :class:`~repro.errors.ReproError` is a *permanent*
failure (bad input, missing file — retrying cannot help) and goes
straight to ``failed``; any other exception is presumed transient and
goes through the store's retry/quarantine accounting.

Worker processes also carry their telemetry home: each child owns a
private :class:`~repro.telemetry.MetricsRegistry` and ships metric
*deltas* through a :class:`MetricsSpool` (pickle files under
``data_dir/metrics-spool/``, written atomically) that the service
merges into its own registry at ``/metrics`` scrape time; traces are
written directly to the job directory, same as the thread plane.
"""

from __future__ import annotations

import os
import pickle
import shutil
import signal
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import ReproError
from ..telemetry import (
    MetricsRegistry,
    ResourceSampler,
    TimelineRecorder,
    Tracer,
    get_registry,
    get_tracer,
    peak_rss_bytes,
    set_registry,
    set_tracer,
    span,
    use_timeline,
    write_timeline,
    write_trace,
)
from ..telemetry.sampler import TIMELINE_FILENAME
from ..telemetry.trace import Span
from ..workflow import WorkflowHooks
from .faults import FaultPlan
from .store import (
    STATE_CANCELLED,
    STATE_SUCCEEDED,
    JobRecord,
    JobStore,
)

#: Exit codes a worker process uses to tell its supervisor *why* it
#: died deliberately (anything else — -9, 1, … — is an unplanned death).
EXIT_ORPHANED = 85
EXIT_LEASE_LOST = 86
EXIT_STAGE_TIMEOUT = 87
EXIT_JOB_TIMEOUT = 88

#: Supervisor-facing names for the deliberate exit codes.
EXIT_REASONS = {
    EXIT_ORPHANED: "orphaned",
    EXIT_LEASE_LOST: "lease-lost",
    EXIT_STAGE_TIMEOUT: "stage-timeout",
    EXIT_JOB_TIMEOUT: "job-timeout",
}


class _JobCancelled(Exception):
    """Internal control-flow signal: a cancel request reached a stage boundary."""


class _AttemptAborted(Exception):
    """Thread-plane control flow: lease lost or timeout hit mid-attempt."""

    def __init__(self, outcome: str) -> None:
        super().__init__(outcome)
        self.outcome = outcome


def job_dir(data_dir, job_id: str) -> Path:
    return Path(data_dir) / "jobs" / job_id


def checkpoint_dir(data_dir, job_id: str) -> Path:
    return job_dir(data_dir, job_id) / "checkpoints"


class MetricsSpool:
    """Cross-process metric transport: atomic pickle files in a directory.

    A worker process cannot reach the service's in-memory registry, so
    it drains its own registry's counters/histograms to a uniquely
    named file (tmp + rename, so the reader never sees a torn write)
    after claiming and after finishing each job.  The service merges
    and deletes the files at scrape time — deltas add, so nothing is
    lost or double-counted regardless of interleaving.
    """

    def __init__(self, data_dir) -> None:
        self.directory = Path(data_dir) / "metrics-spool"
        self._counter = 0

    def push(self, registry) -> None:
        state = registry.drain_state()
        if not state:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._counter += 1
            name = f"{os.getpid()}-{self._counter:06d}.pkl"
            tmp = self.directory / f".{name}.tmp"
            with open(tmp, "wb") as handle:
                pickle.dump(state, handle)
            os.replace(tmp, self.directory / name)
        except OSError:
            pass  # metrics are best-effort; never fail the job for them

    def drain_into(self, registry) -> None:
        try:
            paths = sorted(self.directory.glob("*.pkl"))
        except OSError:
            return
        for path in paths:
            # Claim by rename before reading: the API server is a
            # ThreadingHTTPServer, so two concurrent /metrics scrapes
            # can see the same file — whoever renames first owns it,
            # the loser's rename fails, and no delta merges twice.
            # (Leading dot keeps claimed files out of the glob above.)
            claimed = path.with_name(
                f".{path.name}.{os.getpid()}-{threading.get_ident()}.claim"
            )
            try:
                os.rename(path, claimed)
            except OSError:
                continue  # another scraper owns this file
            try:
                with open(claimed, "rb") as handle:
                    state = pickle.load(handle)
                registry.merge_state(state)
            except Exception:  # noqa: BLE001 — a torn/stale file must not 500 /metrics
                pass
            try:
                claimed.unlink()
            except OSError:
                pass


def execute_attempt(
    store: JobStore,
    data_dir,
    record: JobRecord,
    token: str,
    lease_seconds: float,
    hard_exit: bool,
    plan: Optional[FaultPlan] = None,
    parent_pid: Optional[int] = None,
) -> str:
    """Run one claimed attempt end to end; returns its outcome.

    Outcomes: ``succeeded``, ``failed``, ``cancelled``, ``requeued``
    (retryable failure, will run again), ``poisoned`` (retry budget
    exhausted), ``lease-lost`` (fenced; the job's fate belongs to a
    newer attempt).  ``hard_exit`` is True in a worker process, where
    fencing and timeouts end the *process*; False on the thread plane,
    where they abort at the next stage boundary instead.
    """
    plan = FaultPlan.from_env() if plan is None else plan
    job_id = record.id
    attempt = record.attempts
    retry = record.spec.retry or {}
    job_timeout = retry.get("job_timeout_seconds")
    stage_timeout = retry.get("stage_timeout_seconds")

    stop_ticker = threading.Event()
    lease_lost = threading.Event()
    timed_out: Dict[str, Optional[str]] = {"outcome": None}
    watch = {
        "stage": None,
        "stage_deadline": None,
        "job_deadline": (
            time.monotonic() + job_timeout if job_timeout else None
        ),
    }

    def _die(exit_code: int, event_type: str, payload: Dict[str, Any]) -> None:
        try:
            store.append_event(job_id, event_type, payload)
        except Exception:  # noqa: BLE001 — dying anyway
            pass
        os._exit(exit_code)

    def _heartbeat_loop() -> None:
        interval = max(0.05, lease_seconds / 3.0)
        while not stop_ticker.wait(interval):
            if hard_exit and parent_pid is not None and os.getppid() != parent_pid:
                os._exit(EXIT_ORPHANED)
            if plan.stall_heartbeat(attempt):
                continue
            try:
                renewed = store.heartbeat(job_id, token, lease_seconds)
            except Exception:  # noqa: BLE001 — transient store errors: retry next tick
                continue
            if not renewed:
                lease_lost.set()
                if hard_exit:
                    _die(
                        EXIT_LEASE_LOST,
                        "lease-lost",
                        {"worker": record.worker, "attempt": attempt},
                    )
                return

    def _watchdog_loop() -> None:
        while not stop_ticker.wait(0.05):
            now = time.monotonic()
            deadline = watch["stage_deadline"]
            if deadline is not None and now > deadline:
                _on_timeout(
                    "stage",
                    f"stage {watch['stage']!r} exceeded its "
                    f"{stage_timeout}s timeout",
                    EXIT_STAGE_TIMEOUT,
                )
                return
            deadline = watch["job_deadline"]
            if deadline is not None and now > deadline:
                _on_timeout(
                    "job",
                    f"job exceeded its {job_timeout}s timeout",
                    EXIT_JOB_TIMEOUT,
                )
                return

    def _on_timeout(scope: str, error: str, exit_code: int) -> None:
        # Record the failure (with retry accounting) *before* killing
        # the process — the supervisor then only has to respawn, and
        # the thread plane gets identical bookkeeping for free.
        try:
            store.append_event(
                job_id, "timeout", {"scope": scope, "attempt": attempt, "error": error}
            )
        except Exception:  # noqa: BLE001
            pass
        try:
            outcome = store.fail_attempt(job_id, token, error, retryable=True)
        except Exception:  # noqa: BLE001
            outcome = None
        timed_out["outcome"] = outcome or "lease-lost"
        if hard_exit:
            os._exit(exit_code)

    def _abort_if_signalled() -> None:
        if lease_lost.is_set():
            raise _AttemptAborted("lease-lost")
        if timed_out["outcome"] is not None:
            raise _AttemptAborted(timed_out["outcome"])

    stage_seconds: Dict[str, float] = {}

    def on_stage_start(stage, index, total):
        _abort_if_signalled()
        # The cooperative cancellation point: checked once per stage,
        # so a cancel lands between stages, never inside one.
        if store.cancel_requested(job_id):
            raise _JobCancelled()
        watch["stage"] = stage.name
        if stage_timeout:
            watch["stage_deadline"] = time.monotonic() + stage_timeout
        store.append_event(
            job_id,
            "stage-start",
            {"stage": stage.name, "index": index, "total": total, "attempt": attempt},
        )
        plan.on_stage_start(stage.name, index, attempt, hard_exit)

    def on_stage_end(stage, index, total, seconds):
        watch["stage_deadline"] = None
        stage_seconds[stage.name] = stage_seconds.get(stage.name, 0.0) + seconds
        store.append_event(
            job_id,
            "stage-end",
            {
                "stage": stage.name,
                "index": index,
                "total": total,
                "seconds": round(seconds, 6),
            },
        )

    def on_stage_skipped(stage, index, total):
        watch["stage_deadline"] = None
        store.append_event(
            job_id,
            "stage-skipped",
            {"stage": stage.name, "index": index, "total": total},
        )

    def on_checkpoint(stage, path):
        store.append_event(
            job_id, "checkpoint", {"stage": stage.name, "path": str(path)}
        )
        plan.on_checkpoint(path, stage.name, attempt)

    hooks = WorkflowHooks(
        on_stage_start=on_stage_start,
        on_stage_end=on_stage_end,
        on_stage_skipped=on_stage_skipped,
        on_checkpoint=on_checkpoint,
    )

    ticker = threading.Thread(
        target=_heartbeat_loop, name=f"repro-heartbeat-{job_id[:8]}", daemon=True
    )
    ticker.start()
    watchdog = None
    if job_timeout or stage_timeout:
        watchdog = threading.Thread(
            target=_watchdog_loop, name=f"repro-watchdog-{job_id[:8]}", daemon=True
        )
        watchdog.start()

    # Every attempt records a run timeline (superstep/stage boundary
    # events + periodic resource samples) — like traces, it is part of
    # the service's observability API (GET /jobs/<id>/timeline), so it
    # is always on.  The slot is thread-local, so concurrent thread
    # -plane jobs each keep their own.
    from ..store.spill import process_spill_stats

    timeline = TimelineRecorder()
    sampler = ResourceSampler(
        timeline, source=record.worker or f"attempt-{attempt}"
    ).start()
    spill_base = process_spill_stats().snapshot()
    started = time.perf_counter()
    outcome = "failed"
    job_span = None
    try:
        with use_timeline(timeline), span(
            f"job:{job_id}", job_id=job_id, attempt=attempt
        ) as job_span:
            try:
                from ..assembler import PPAAssembler

                spec = record.spec
                config = spec.assembly_config()
                material = spec.materialize()
                result = PPAAssembler(config).assemble(
                    material.reads,
                    pairs=material.pairs,
                    checkpoint_dir=checkpoint_dir(data_dir, job_id),
                    resume=True,
                    hooks=hooks,
                )
                _abort_if_signalled()
                wall_seconds = time.perf_counter() - started
                spill = process_spill_stats().delta_since(spill_base)
                memory = {
                    "memory_budget_mb": config.memory_budget_mb,
                    "spill_events_total": spill["spill_events"],
                    "spill_bytes_total": spill["spill_bytes"],
                    "load_events_total": spill["load_events"],
                    "load_bytes_total": spill["load_bytes"],
                    "ledger_peak_bytes": spill["ledger_peak_bytes"],
                    "peak_rss_bytes": peak_rss_bytes(),
                }
                # Stage artifacts in a per-attempt directory and publish
                # only after the token-fenced finish commits: a fenced
                # zombie whose lease lapsed after the last
                # _abort_if_signalled must not overwrite files the retry
                # attempt is writing (open-ended window on the thread
                # plane, where a timed-out attempt keeps running until
                # its next stage boundary).
                result_dir = job_dir(data_dir, job_id)
                staging = result_dir / (
                    f".staging-attempt{attempt:03d}"
                    f"-{os.getpid()}-{threading.get_ident()}"
                )
                _write_artifacts(
                    staging, job_id, record, result, material,
                    stage_seconds, wall_seconds, memory,
                )
                if store.finish_attempt(
                    job_id, token, STATE_SUCCEEDED, result_dir=str(result_dir)
                ):
                    # The job is terminal and this attempt owns it: no
                    # concurrent attempt can exist past this point, so
                    # the per-file renames race with nobody.
                    _publish_artifacts(staging, result_dir)
                    outcome = "succeeded"
                else:
                    shutil.rmtree(staging, ignore_errors=True)
                    outcome = "lease-lost"
            except _JobCancelled:
                finished = _finish_quietly(
                    store.finish_attempt, job_id, token, STATE_CANCELLED
                )
                outcome = "cancelled" if finished else "lease-lost"
            except _AttemptAborted as exc:
                outcome = exc.outcome
            except ReproError as exc:
                # Permanent by definition: the spec cannot materialise,
                # the config is invalid, an input file is gone.  A
                # retry would fail identically; fail the job outright.
                _finish_quietly(
                    store.fail_attempt, job_id, token, str(exc), False
                )
                outcome = "failed"
            except Exception as exc:  # noqa: BLE001 — a worker must survive any job
                _finish_quietly(
                    store.append_event,
                    job_id,
                    "error-detail",
                    {"traceback": traceback.format_exc(limit=20)},
                )
                recorded = _finish_quietly(
                    store.fail_attempt,
                    job_id,
                    token,
                    f"{type(exc).__name__}: {exc}",
                    True,
                )
                outcome = recorded or "lease-lost"
            job_span.set(outcome=outcome)
    finally:
        stop_ticker.set()
        sampler.stop()
    _write_trace(data_dir, job_id, job_span)
    _write_timeline_file(data_dir, job_id, timeline)
    if outcome in ("succeeded", "failed", "cancelled"):
        get_registry().counter(
            "repro_jobs_completed_total",
            "Jobs finished by the worker pool, by terminal state.",
            labelnames=("state",),
        ).labels(outcome).inc()
    return outcome


def _finish_quietly(operation, *args) -> Any:
    """Run a terminal store write, swallowing shutdown-time failures.

    A non-waiting service shutdown can close resources while a worker
    is still finishing its job; the worker's last store writes must not
    take it down with an unhandled exception.
    """
    try:
        return operation(*args)
    except Exception:  # noqa: BLE001 — best-effort by design
        return None


def _write_trace(data_dir, job_id: str, job_span) -> None:
    """Persist the job's span tree next to its artifacts.

    Only when tracing is enabled (the span is real); written for every
    outcome, so failed jobs can be profiled too.  Best-effort by design
    — a trace-write failure must not fail the job.
    """
    if not get_tracer().enabled or not isinstance(job_span, Span):
        return
    try:
        directory = job_dir(data_dir, job_id)
        directory.mkdir(parents=True, exist_ok=True)
        write_trace(job_span.finish(), directory / "trace.json")
    except Exception:  # noqa: BLE001 — observability must not break jobs
        pass


def _write_timeline_file(data_dir, job_id: str, timeline) -> None:
    """Persist the attempt's run timeline next to its artifacts.

    Written for every outcome (like the trace), so failed and timed-out
    jobs can be diagnosed from their timelines too.  Best-effort by
    design — a timeline-write failure must not fail the job.
    """
    if not len(timeline):
        return
    try:
        directory = job_dir(data_dir, job_id)
        directory.mkdir(parents=True, exist_ok=True)
        write_timeline(timeline, directory / TIMELINE_FILENAME)
    except Exception:  # noqa: BLE001 — observability must not break jobs
        pass


def _write_artifacts(
    directory: Path,
    job_id: str,
    record: JobRecord,
    result,
    material,
    stage_seconds: Dict[str, float],
    wall_seconds: float,
    memory: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the job's deliverables into ``directory`` (a staging dir)."""
    import json

    directory.mkdir(parents=True, exist_ok=True)
    result.write_fasta(directory / "contigs.fasta")
    if result.scaffolding is not None:
        result.write_scaffold_fasta(directory / "scaffolds.fasta")
    payload = result.metrics_payload(
        min_contig=record.spec.min_contig,
        stage_seconds=stage_seconds,
        wall_seconds=wall_seconds,
        reference_length=material.reference_length,
    )
    payload["job_id"] = job_id
    if memory is not None:
        payload["memory"] = memory
    (directory / "metrics.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return directory


def _publish_artifacts(staging: Path, directory: Path) -> None:
    """Atomically move each staged artifact into the job directory."""
    directory.mkdir(parents=True, exist_ok=True)
    for path in staging.iterdir():
        os.replace(path, directory / path.name)
    try:
        staging.rmdir()
    except OSError:
        pass


# ----------------------------------------------------------------------
# worker process entry point
# ----------------------------------------------------------------------
def worker_main(
    store_path: str,
    data_dir: str,
    worker_name: str,
    stop_event,
    options: Dict[str, Any],
) -> None:
    """Run a persistent claim loop in a spawned worker process.

    The child owns everything it needs: its own SQLite connection
    (SQLite coordinates cross-process via the file), its own telemetry
    registry/tracer (spooled home through :class:`MetricsSpool`), and
    its own fault plan re-read from the inherited environment.  Its
    identity — ``worker-N@pid`` — is what it writes into each claim's
    ``worker`` column, which is what lets the supervisor reclaim
    exactly this incarnation's jobs the moment it dies.
    """
    # Ctrl-C goes to the foreground process group; the *service*
    # decides how to drain — a child interrupting mid-write would turn
    # every interactive shutdown into a fault-injection run.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    set_registry(MetricsRegistry())
    set_tracer(Tracer())
    plan = FaultPlan.from_env()
    lease_seconds = float(options.get("lease_seconds", 15.0))
    poll_interval = float(options.get("poll_interval", 0.2))
    store = JobStore(
        store_path,
        max_attempts=int(options.get("max_attempts", 3)),
        lease_seconds=lease_seconds,
        backoff_seconds=float(options.get("backoff_seconds", 1.0)),
        backoff_cap_seconds=float(options.get("backoff_cap_seconds", 30.0)),
    )
    spool = MetricsSpool(data_dir)
    parent_pid = os.getppid()
    incarnation = f"{worker_name}@{os.getpid()}"
    try:
        while not stop_event.is_set():
            if os.getppid() != parent_pid:
                os._exit(EXIT_ORPHANED)
            try:
                record = store.claim_next(incarnation, lease_seconds=lease_seconds)
            except Exception:  # noqa: BLE001 — e.g. transient lock contention
                time.sleep(poll_interval)
                continue
            if record is None:
                stop_event.wait(poll_interval)
                continue
            # Ship the claim-latency observation home immediately: the
            # service's /metrics must show it while the job still runs.
            spool.push(get_registry())
            execute_attempt(
                store,
                data_dir,
                record,
                token=record.lease_token or "",
                lease_seconds=lease_seconds,
                hard_exit=True,
                plan=plan,
                parent_pid=parent_pid,
            )
            spool.push(get_registry())
    finally:
        spool.push(get_registry())
        store.close()
