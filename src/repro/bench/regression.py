"""Bench regression gate: compare fresh bench JSON against a baseline.

The committed ``BENCH_*.json`` files are the repo's performance
contract; this module is the comparator that CI runs against a fresh
measurement (``python -m repro.bench.regression <baseline> <fresh>``)
so a perf regression fails the build instead of silently rotting the
baselines.

Only *rule-matched* numeric keys are compared — a bench payload is
full of environment-dependent values (counts, sizes, metadata) that
must not gate anything.  Each :class:`Rule` names a key pattern, a
direction (is lower or higher better?) and a tolerance.  Tolerances
are deliberately loose: CI runners are noisy shared machines, so the
gate is tuned to catch *algorithmic* regressions (a 2x slowdown),
not 10% jitter.

Exit codes: 0 when every matched metric is within tolerance, 1 when
at least one regressed, 2 on usage errors (missing/unparseable files).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Rule:
    """One gating rule: which keys, which direction, how much slack.

    ``pattern`` is an :mod:`fnmatch` glob matched against the metric's
    *leaf key name* (not its path).  ``direction`` is ``"lower"`` or
    ``"higher"`` (which way is better).  Exactly one tolerance is set:
    ``rel_tol`` allows ``baseline * (1 + rel_tol)`` worth of drift in
    the bad direction; ``abs_tol`` allows ``baseline + abs_tol``.
    """

    pattern: str
    direction: str
    rel_tol: Optional[float] = None
    abs_tol: Optional[float] = None

    def matches(self, key: str) -> bool:
        return fnmatch.fnmatchcase(key, self.pattern)

    def limit(self, baseline: float) -> float:
        """The worst acceptable fresh value for ``baseline``."""
        if self.abs_tol is not None:
            slack = self.abs_tol
        else:
            slack = abs(baseline) * (self.rel_tol or 0.0)
        if self.direction == "lower":
            return baseline + slack
        return baseline - slack

    def regressed(self, baseline: float, fresh: float) -> bool:
        if self.direction == "lower":
            return fresh > self.limit(baseline)
        return fresh < self.limit(baseline)


#: The default gate.  Key-name globs, deliberately coarse:
#: * wall-clock style metrics (``*_seconds``) may drift up to +75%
#:   before failing — loose enough for shared CI runners, tight
#:   enough that a 2x algorithmic slowdown always trips it;
#: * telemetry overhead is an absolute contract (< 3 percentage
#:   points of drift) because it is a ratio, already noise-normalised;
#: * throughput-style metrics (higher is better) may lose up to half.
DEFAULT_RULES: Tuple[Rule, ...] = (
    Rule("overhead_fraction", "lower", abs_tol=0.03),
    Rule("*_overhead_fraction", "lower", abs_tol=0.03),
    Rule("*_seconds", "lower", rel_tol=0.75),
    Rule("jobs_per_sec*", "higher", rel_tol=0.5),
    Rule("*speedup*", "higher", rel_tol=0.5),
)

#: Leaf keys never gated even when a rule pattern matches: per-stage
#: timing breakdowns vary too much run to run to gate individually
#: (the total they sum to is gated instead).
SKIP_KEYS = ("created_at", "recorded_seconds")

#: Top-level keys that identify the measured *workload*.  When a
#: baseline and a fresh run disagree on any of these (e.g. the
#: baseline was recorded at ``REPRO_BENCH_SCALE=1.0`` but CI runs at
#: 0.3), their numbers measure different problems and comparing them
#: would produce spurious verdicts in both directions — the gate
#: skips with exit 0 instead.
CONTEXT_KEYS = ("benchmark", "dataset", "scale", "k")


def numeric_leaves(payload: Any, prefix: str = "") -> Iterator[Tuple[str, str, float]]:
    """Yield ``(path, leaf_key, value)`` for every numeric leaf.

    Booleans are excluded (they are ints to ``isinstance``); lists are
    walked with their index in the path but the leaf key of their
    parent, so ``worker_seconds: [1.2, 1.3]`` gates each element under
    the ``worker_seconds`` rules.
    """
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            value = payload[key]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield path, str(key), float(value)
            else:
                yield from numeric_leaves(value, path)
    elif isinstance(payload, (list, tuple)):
        leaf = prefix.rsplit(".", 1)[-1] if prefix else ""
        for index, value in enumerate(payload):
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield f"{prefix}[{index}]", leaf, float(value)
            else:
                yield from numeric_leaves(value, f"{prefix}[{index}]")


def rule_for(key: str, rules: Tuple[Rule, ...] = DEFAULT_RULES) -> Optional[Rule]:
    """The first rule whose pattern matches ``key`` (first match wins,
    so specific patterns must precede broad ones in the tuple)."""
    if key in SKIP_KEYS:
        return None
    for rule in rules:
        if rule.matches(key):
            return rule
    return None


@dataclass(frozen=True)
class Comparison:
    """One gated metric's verdict."""

    path: str
    baseline: float
    fresh: float
    rule: Rule
    regressed: bool

    def describe(self) -> str:
        arrow = "<=" if self.rule.direction == "lower" else ">="
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.path}: baseline={self.baseline:g} fresh={self.fresh:g} "
            f"(need {arrow} {self.rule.limit(self.baseline):g}) {verdict}"
        )


def context_mismatches(
    baseline: Dict[str, Any], fresh: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Workload-identity keys present in both payloads but unequal."""
    return [
        (key, baseline[key], fresh[key])
        for key in CONTEXT_KEYS
        if key in baseline and key in fresh and baseline[key] != fresh[key]
    ]


def compare(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    rules: Tuple[Rule, ...] = DEFAULT_RULES,
) -> List[Comparison]:
    """Gate every rule-matched metric present in *both* payloads.

    Metrics present on only one side are ignored — a bench gaining or
    losing a field is a schema change reviewed in the diff, not a
    runtime regression.
    """
    fresh_values = {path: value for path, _key, value in numeric_leaves(fresh)}
    results: List[Comparison] = []
    for path, key, base_value in numeric_leaves(baseline):
        rule = rule_for(key, rules)
        if rule is None or path not in fresh_values:
            continue
        fresh_value = fresh_values[path]
        results.append(
            Comparison(
                path=path,
                baseline=base_value,
                fresh=fresh_value,
                rule=rule,
                regressed=rule.regressed(base_value, fresh_value),
            )
        )
    return results


def load_payload(path) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench payload must be a JSON object")
    return data


def gate(baseline_path, fresh_path, out=sys.stdout) -> int:
    """Compare two bench JSON files; print verdicts; return exit code."""
    try:
        baseline = load_payload(baseline_path)
        fresh = load_payload(fresh_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"regression gate: cannot load payloads: {exc}", file=sys.stderr)
        return 2
    name = baseline.get("benchmark", Path(str(baseline_path)).name)
    mismatches = context_mismatches(baseline, fresh)
    if mismatches:
        detail = ", ".join(f"{key}: {base!r} vs {new!r}" for key, base, new in mismatches)
        print(f"{name}: workload context differs ({detail}); not comparable, skipping", file=out)
        return 0
    results = compare(baseline, fresh)
    if not results:
        print(f"{name}: no gated metrics in common; nothing to compare", file=out)
        return 0
    failures = [result for result in results if result.regressed]
    for result in results:
        print(f"  {result.describe()}", file=out)
    if failures:
        print(
            f"{name}: {len(failures)}/{len(results)} gated metrics regressed",
            file=out,
        )
        return 1
    print(f"{name}: {len(results)} gated metrics within tolerance", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description=(
            "Gate a fresh bench JSON against a committed baseline; exits "
            "1 when a gated metric regressed beyond tolerance."
        ),
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("fresh", help="freshly measured bench JSON")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code else 0
    return gate(args.baseline, args.fresh)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
