"""Benchmark harness shared by the scripts under ``benchmarks/``."""

from .harness import (
    BENCH_K,
    BENCH_MIN_CONTIG,
    FIGURE12_WORKERS,
    PreparedDataset,
    all_assembler_contigs,
    bench_cluster_profile,
    bench_scale,
    ppa_config,
    prepare_dataset,
    run_baselines,
    run_ppa,
    run_ppa_timed,
)
from .reporting import format_comparison, format_scaling_series, format_table

__all__ = [
    "BENCH_K",
    "BENCH_MIN_CONTIG",
    "FIGURE12_WORKERS",
    "PreparedDataset",
    "all_assembler_contigs",
    "bench_cluster_profile",
    "bench_scale",
    "ppa_config",
    "prepare_dataset",
    "run_baselines",
    "run_ppa",
    "run_ppa_timed",
    "format_comparison",
    "format_scaling_series",
    "format_table",
]
