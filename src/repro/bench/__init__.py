"""Benchmark harness shared by the scripts under ``benchmarks/``."""

from .harness import (
    BENCH_K,
    BENCH_MIN_CONTIG,
    FIGURE12_WORKERS,
    PreparedDataset,
    PreparedPairedDataset,
    all_assembler_contigs,
    bench_cluster_profile,
    bench_scale,
    ppa_config,
    prepare_dataset,
    prepare_paired_dataset,
    run_baselines,
    run_ppa,
    run_ppa_scaffolded,
    run_ppa_timed,
)
from .reporting import format_comparison, format_scaling_series, format_table
from .schema import BENCH_SCHEMA_VERSION, bench_report, scaffold_metrics

__all__ = [
    "BENCH_K",
    "BENCH_MIN_CONTIG",
    "FIGURE12_WORKERS",
    "PreparedDataset",
    "PreparedPairedDataset",
    "all_assembler_contigs",
    "bench_cluster_profile",
    "bench_scale",
    "ppa_config",
    "prepare_dataset",
    "prepare_paired_dataset",
    "run_baselines",
    "run_ppa",
    "run_ppa_scaffolded",
    "run_ppa_timed",
    "format_comparison",
    "format_scaling_series",
    "format_table",
    "BENCH_SCHEMA_VERSION",
    "bench_report",
    "scaffold_metrics",
    "Comparison",
    "DEFAULT_RULES",
    "Rule",
    "compare",
    "gate",
]

#: Regression-gate names resolved lazily (PEP 562) so that running
#: ``python -m repro.bench.regression`` does not import the module
#: twice (once via the package, once as ``__main__``'s target) and
#: warn about it.
_REGRESSION_EXPORTS = ("Comparison", "DEFAULT_RULES", "Rule", "compare", "gate")


def __getattr__(name):
    if name in _REGRESSION_EXPORTS:
        from . import regression

        return getattr(regression, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
