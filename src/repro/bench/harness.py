"""Shared benchmark harness.

The benchmark scripts under ``benchmarks/`` all need the same plumbing:
materialise a (scaled) dataset profile, run PPA-assembler and the
baselines over it, and format the outcome the way the paper's tables
and figures present it.  Keeping that plumbing here keeps each
benchmark file focused on the one table or figure it regenerates.

Scaling: the environment variable ``REPRO_BENCH_SCALE`` multiplies the
genome length of every dataset profile (default 0.25 so the whole
benchmark suite finishes in minutes on a laptop).  Set it to 1.0 to run
the full scaled profiles described in DESIGN.md.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..assembler import AssemblyConfig, PPAAssembler
from ..assembler.results import AssemblyResult
from ..baselines import (
    AbyssLikeAssembler,
    BaselineResult,
    RayLikeAssembler,
    SwapLikeAssembler,
)
from ..dna.datasets import DatasetProfile, get_profile
from ..dna.io_fastq import Read, ReadPair, reads_from_pairs
from ..pregel.cost_model import ClusterProfile
from ..store.content import ContentStore

#: k-mer size used by every benchmark (the paper uses 31; the scaled
#: datasets use 21 so that repeats still create ambiguous vertices).
BENCH_K = 21

#: Contig length cutoff used by the quality benchmarks.  QUAST uses
#: 500 bp on full-size genomes; the scaled datasets use 100 bp, which
#: plays the same role (roughly 0.4% of the scaled genome length).
BENCH_MIN_CONTIG = 100

#: Worker counts of Figure 12.
FIGURE12_WORKERS = (16, 32, 48, 64)


def bench_scale(default: float = 0.25) -> float:
    """Dataset scale factor taken from ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def bench_cluster_profile() -> ClusterProfile:
    """Cost-model constants used by the Figure 12 benchmark.

    The per-operation costs are scaled up relative to the default
    gigabit profile so that, at the reduced dataset sizes the benchmark
    uses, the compute/communication terms dominate the fixed per-job
    overhead the same way they do at the paper's full data size — this
    keeps the *shape* of the worker-scaling curves comparable.
    """
    return ClusterProfile(
        seconds_per_compute_op=4.0e-5,
        seconds_per_byte=2.0e-5,
        barrier_seconds=0.1,
        job_overhead_seconds=1.0,
        loading_seconds_per_op=2.0e-4,
    )


@dataclass
class PreparedDataset:
    """A materialised dataset ready for the assemblers."""

    profile: DatasetProfile
    reference: Optional[str]
    reads: List[Read]

    @property
    def name(self) -> str:
        return self.profile.name


#: Bump when the cached payload layout changes; stale entries are
#: simply regenerated.
_DATASET_CACHE_VERSION = 1


def dataset_cache_dir() -> Optional[Path]:
    """Directory for on-disk dataset caching, or None when disabled.

    ``REPRO_BENCH_CACHE_DIR`` overrides the location; setting it to
    ``0``/``off``/``none`` disables disk caching entirely (the in-memory
    LRU still applies).
    """
    raw = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if raw is not None:
        if raw.strip().lower() in ("", "0", "off", "none"):
            return None
        return Path(raw)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "ppa-assembler-repro" / "datasets"


def _dataset_cache_name(profile: DatasetProfile) -> str:
    # The frozen profile's repr covers every generation input (name,
    # genome length after scaling, read length, coverage, error rate,
    # repeat fraction, seed), so any change invalidates the key.
    digest = hashlib.sha256(
        repr((_DATASET_CACHE_VERSION, profile)).encode("utf-8")
    ).hexdigest()[:16]
    return f"{profile.name}-{digest}"


def _dataset_cache_store() -> Optional[ContentStore]:
    """The content store backing the dataset cache, or None when disabled.

    Cached datasets live as named blobs (the name is the profile
    digest, acting as a GC root); identical payloads dedup across
    profiles for free.  The pre-content-store layout kept one
    ``<name>-<digest>.pkl`` per profile at the directory top level —
    any such leftovers are swept on first use.
    """
    directory = dataset_cache_dir()
    if directory is None:
        return None
    store = ContentStore(directory)
    try:
        for stale in directory.glob("*.pkl"):
            stale.unlink()
    except OSError:
        pass
    return store


def _load_dataset_cache(profile: DatasetProfile):
    """Return ``(reference, reads)`` from disk, or None on any miss."""
    store = _dataset_cache_store()
    if store is None:
        return None
    payload = store.get_named(_dataset_cache_name(profile))
    if payload is None:
        return None
    try:
        stored_profile, reference, reads = pickle.loads(payload)
    except (
        pickle.UnpicklingError,
        EOFError,
        ValueError,
        AttributeError,
        ImportError,  # stale entry pickled against a moved/renamed class
    ):
        return None
    if stored_profile != profile:  # hash collision or stale format
        return None
    return reference, reads


def _store_dataset_cache(profile: DatasetProfile, reference, reads) -> None:
    """Best-effort atomic publish; caching must never break a benchmark."""
    store = _dataset_cache_store()
    if store is None:
        return
    try:
        store.put_named(
            _dataset_cache_name(profile),
            pickle.dumps(
                (profile, reference, reads), protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
    except OSError:
        pass


@lru_cache(maxsize=8)
def _prepare_cached(name: str, scale: float) -> PreparedDataset:
    profile = get_profile(name, scale=scale)
    cached = _load_dataset_cache(profile)
    if cached is not None:
        reference, reads = cached
    else:
        # Read simulation dominates benchmark start-up at larger
        # scales, so materialised datasets are cached on disk keyed by
        # every generation parameter (profile + scale + seed).
        reference, reads = profile.generate()
        _store_dataset_cache(profile, reference, reads)
    return PreparedDataset(profile=profile, reference=reference, reads=reads)


def prepare_dataset(name: str, scale: Optional[float] = None) -> PreparedDataset:
    """Materialise one of the Table I profiles (cached per scale).

    Caching is two-level: an in-memory LRU for the current process and
    a pickle cache on disk (see :func:`dataset_cache_dir`) so repeated
    benchmark runs skip read re-simulation entirely.
    """
    return _prepare_cached(name, bench_scale() if scale is None else scale)


def ppa_config(
    num_workers: int = 16,
    labeling_method: str = "list_ranking",
    backend: str = "serial",
    message_plane: str = "shm",
    partitioner: str = "hash",
) -> AssemblyConfig:
    """The PPA-assembler configuration used by every benchmark."""
    return AssemblyConfig(
        k=BENCH_K,
        coverage_threshold=1,
        tip_length_threshold=80,
        bubble_edit_distance=5,
        labeling_method=labeling_method,
        num_workers=num_workers,
        backend=backend,
        message_plane=message_plane,
        partitioner=partitioner,
    )


def run_ppa(
    dataset: PreparedDataset,
    num_workers: int = 16,
    labeling_method: str = "list_ranking",
    backend: str = "serial",
    checkpoint_dir=None,
    resume: bool = False,
    message_plane: str = "shm",
    partitioner: str = "hash",
) -> AssemblyResult:
    """Run PPA-assembler over a prepared dataset.

    The assembly executes as the declared workflow
    (:func:`repro.assembler.pipeline.build_assembly_workflow`), so the
    returned result's :class:`~repro.pregel.metrics.PipelineMetrics`
    prices the whole workflow for the cost model exactly as before.
    ``checkpoint_dir``/``resume`` let long benchmark runs at large
    scales survive interruption (checkpoints are per-stage pickles).
    """
    config = ppa_config(
        num_workers, labeling_method, backend, message_plane, partitioner
    )
    return PPAAssembler(config).assemble(
        dataset.reads, checkpoint_dir=checkpoint_dir, resume=resume
    )


def run_ppa_timed(
    dataset: PreparedDataset,
    num_workers: int = 16,
    labeling_method: str = "list_ranking",
    backend: str = "serial",
    message_plane: str = "shm",
    partitioner: str = "hash",
) -> Tuple[AssemblyResult, float]:
    """Run PPA-assembler and measure real wall-clock seconds.

    The cost model estimates what a *simulated* cluster would take;
    this measures what the chosen execution backend actually took on
    the current host, so backends — and the multiprocess backend's data
    planes/partitioners — can be compared side by side
    (``benchmarks/bench_backend_speedup.py``).
    """
    started = time.perf_counter()
    result = run_ppa(
        dataset,
        num_workers,
        labeling_method,
        backend,
        message_plane=message_plane,
        partitioner=partitioner,
    )
    return result, time.perf_counter() - started


@dataclass
class PreparedPairedDataset:
    """A materialised paired-end dataset ready for scaffolding runs."""

    profile: DatasetProfile
    reference: Optional[str]
    pairs: List[ReadPair]

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def reads(self) -> List[Read]:
        """Both mates flattened, the way the DBG stages consume them."""
        return reads_from_pairs(self.pairs)


def prepare_paired_dataset(
    name: str,
    scale: Optional[float] = None,
    insert_size_mean: float = 500.0,
    insert_size_std: float = 50.0,
) -> PreparedPairedDataset:
    """Materialise a Table I profile as a paired-end library.

    Unlike :func:`prepare_dataset` this is not disk-cached: paired
    generation is only used by the scaffolding benchmark, which runs at
    small scales.
    """
    profile = get_profile(name, scale=bench_scale() if scale is None else scale)
    reference, pairs = profile.generate_paired(
        insert_size_mean=insert_size_mean, insert_size_std=insert_size_std
    )
    return PreparedPairedDataset(profile=profile, reference=reference, pairs=pairs)


def run_ppa_scaffolded(
    dataset: PreparedPairedDataset,
    num_workers: int = 16,
    backend: str = "serial",
    min_links: int = 2,
) -> AssemblyResult:
    """Run PPA-assembler plus the scaffolding stage over read pairs."""
    config = ppa_config(num_workers=num_workers, backend=backend).with_scaffolding(
        min_links=min_links
    )
    return PPAAssembler(config).assemble_paired(dataset.pairs)


def run_baselines(
    dataset: PreparedDataset,
    num_workers: int = 16,
    backend: str = "serial",
) -> Dict[str, BaselineResult]:
    """Run the three baselines the paper compares against (Figure 12, Tables IV/V)."""
    baselines = {
        "ABySS": AbyssLikeAssembler(k=BENCH_K, num_workers=num_workers, backend=backend),
        "Ray": RayLikeAssembler(k=BENCH_K, num_workers=num_workers, backend=backend),
        "SWAP-Assembler": SwapLikeAssembler(k=BENCH_K, num_workers=num_workers, backend=backend),
    }
    return {name: assembler.assemble(dataset.reads) for name, assembler in baselines.items()}


def all_assembler_contigs(
    dataset: PreparedDataset,
    num_workers: int = 16,
) -> Dict[str, List[str]]:
    """Contig sets of all four assemblers (keys match the paper's tables)."""
    ppa = run_ppa(dataset, num_workers=num_workers)
    contigs = {"PPA": ppa.contigs}
    for name, result in run_baselines(dataset, num_workers=num_workers).items():
        contigs[name] = result.contigs
    return contigs
