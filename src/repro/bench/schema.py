"""The JSON schema shared by the ``BENCH_*.json`` artifacts.

Benchmarks that CI tracks over time (``bench_kmer_pipeline.py``,
``bench_scaffolding.py``) write their results as JSON files in the
repository root.  This module pins the common envelope so downstream
tooling can consume every artifact the same way:

* ``schema_version`` — bumped whenever a field changes meaning;
* ``benchmark`` — which script produced the file;
* ``dataset`` / ``scale`` / ``k`` — what was measured;
* benchmark-specific payload fields next to the envelope.

For scaffolding runs, :func:`scaffold_metrics` standardises the
contig-vs-scaffold contiguity fields (N50/NG50 and friends) so any
future benchmark reporting scaffolds emits the same keys.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..quality.stats import n50_value, ng50_value

#: Version of the shared ``BENCH_*.json`` envelope.  History:
#: 1 — implicit (PR 2's ``BENCH_kmer_pipeline.json``, no version field);
#: 2 — envelope formalised, scaffold metrics fields added.
BENCH_SCHEMA_VERSION = 2


def bench_report(
    benchmark: str,
    dataset: str,
    scale: float,
    k: int,
    **payload: object,
) -> Dict[str, object]:
    """Assemble a ``BENCH_*.json`` document with the shared envelope."""
    report: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "dataset": dataset,
        "scale": scale,
        "k": k,
    }
    report.update(payload)
    return report


def scaffold_metrics(
    contig_lengths: List[int],
    scaffold_lengths: List[int],
    reference_length: Optional[int] = None,
) -> Dict[str, object]:
    """The standard contig-vs-scaffold contiguity fields.

    ``*_ng50`` fields are only present when the reference length is
    known (reference-free datasets mirror Table V and omit them).
    """
    metrics: Dict[str, object] = {
        "num_contigs": len(contig_lengths),
        "num_scaffolds": len(scaffold_lengths),
        "contig_total_bp": sum(contig_lengths),
        "scaffold_total_bp": sum(scaffold_lengths),
        "contig_n50": n50_value(contig_lengths),
        "scaffold_n50": n50_value(scaffold_lengths),
        "largest_contig": max(contig_lengths, default=0),
        "largest_scaffold": max(scaffold_lengths, default=0),
    }
    if reference_length is not None:
        metrics["reference_length"] = reference_length
        metrics["contig_ng50"] = ng50_value(contig_lengths, reference_length)
        metrics["scaffold_ng50"] = ng50_value(scaffold_lengths, reference_length)
    return metrics
