"""Formatting helpers for paper-style tables.

The benchmarks print their results in the same row/column layout as the
paper's tables so that EXPERIMENTS.md can show paper-vs-measured side
by side.  The helpers here are intentionally plain-text (no external
table libraries) and return the rendered string so tests can assert on
structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_comparison(
    metric_names: Sequence[str],
    per_assembler: Mapping[str, Mapping[str, object]],
    title: str = "",
) -> str:
    """Render a Table IV/V-style comparison: metrics as rows, assemblers as columns."""
    assemblers = list(per_assembler)
    headers = ["Metric"] + assemblers
    rows = []
    for metric in metric_names:
        row = [metric]
        for assembler in assemblers:
            row.append(per_assembler[assembler].get(metric, "-"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_scaling_series(
    series: Mapping[str, Mapping[int, float]],
    title: str = "",
    unit: str = "s",
) -> str:
    """Render a Figure 12-style series: workers as rows, assemblers as columns."""
    assemblers = list(series)
    workers = sorted({worker for values in series.values() for worker in values})
    headers = ["Workers"] + assemblers
    rows = []
    for worker in workers:
        row: List[object] = [worker]
        for assembler in assemblers:
            value = series[assembler].get(worker)
            row.append(f"{value:.1f}{unit}" if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
