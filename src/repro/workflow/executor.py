"""The stage executor: shared plumbing every workflow stage runs on.

The paper's first extension to the Pregel+ API is in-memory job
chaining: job *j'* obtains its input directly from job *j*'s in-memory
output through a user-defined ``convert(v)`` function, instead of a
round-trip through HDFS (Section II).  :class:`StageExecutor` is the
execution substrate for that idea — it owns a single
:class:`~repro.pregel.engine.PregelEngine` so every stage sees the same
worker count and execution backend, runs the three primitive stage
kinds (Pregel job, mini-MapReduce job, in-memory conversion), and
accumulates every stage's :class:`~repro.pregel.metrics.JobMetrics`
into one :class:`~repro.pregel.metrics.PipelineMetrics` so the cost
model can price the whole workflow (what Figure 12 measures).

Workflows (:mod:`repro.workflow.builder`) declare *which* stages run in
*what* order; the executor is the service they all share.  The old
imperative :class:`~repro.pregel.job.JobChain` is now a deprecated
alias of this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from ..pregel.engine import JobResult, PregelEngine, PregelJob
from ..pregel.mapreduce import MapReduceResult, MiniMapReduce
from ..pregel.metrics import JobMetrics, PipelineMetrics, SuperstepMetrics
from ..pregel.partitioner import HashPartitioner
from ..pregel.vertex import Vertex, _estimate_size

ConvertFunction = Callable[[Vertex], Iterable[Any]]


@dataclass
class ConversionResult:
    """Output of an in-memory conversion stage."""

    outputs: List[Any]
    metrics: JobMetrics


class StageExecutor:
    """Runs Pregel / mini-MapReduce / convert stages and meters them.

    ``backend`` selects the runtime for the Pregel stages (``"serial"``
    or ``"multiprocess"``); mini-MapReduce and convert stages model the
    distributed data movement in-process either way, because their cost
    is charged through the metrics rather than measured.

    ``pipeline_metrics`` may be shared between executors: a
    :class:`~repro.workflow.runner.WorkflowRunner` that honours
    per-stage backend/worker overrides creates one executor per
    distinct override but funnels every stage's metrics into the same
    pipeline account.
    """

    def __init__(
        self,
        num_workers: int = 4,
        backend: str = "serial",
        columnar_messages: Optional[bool] = None,
        pipeline_metrics: Optional[PipelineMetrics] = None,
        partitioner: Optional[str] = None,
        message_plane: Optional[str] = None,
        memory_budget_mb: Optional[float] = None,
    ) -> None:
        self.num_workers = num_workers
        self.backend = backend
        self.columnar_messages = columnar_messages
        self.partitioner_name = partitioner
        self.message_plane = message_plane
        self.memory_budget_mb = memory_budget_mb
        self.engine = PregelEngine(
            num_workers=num_workers,
            backend=backend,
            columnar_messages=columnar_messages,
            partitioner=partitioner,
            message_plane=message_plane,
            memory_budget_mb=memory_budget_mb,
        )
        self.pipeline_metrics = pipeline_metrics or PipelineMetrics()
        # Shuffle keys (mini-MapReduce, conversions) are labels rather
        # than dense k-mer IDs, so the shuffle partitioner stays the
        # hash strategy regardless of the Pregel vertex partitioner.
        self._partitioner = HashPartitioner(num_workers)

    @property
    def partitioner(self) -> HashPartitioner:
        """The shuffle partitioner every stage of this executor uses."""
        return self._partitioner

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def run_pregel(self, job: PregelJob) -> JobResult:
        """Run a Pregel job and record its metrics."""
        result = self.engine.run(job)
        self.pipeline_metrics.add(result.metrics)
        return result

    def run_mapreduce(
        self,
        name: str,
        records: Iterable[Any],
        map_fn,
        reduce_fn,
    ) -> MapReduceResult:
        """Run a mini-MapReduce stage and record its metrics."""
        job = MiniMapReduce(num_workers=self.num_workers, name=name)
        result = job.run(records, map_fn, reduce_fn)
        self.pipeline_metrics.add(result.metrics)
        return result

    def convert(
        self,
        name: str,
        vertices: Iterable[Vertex],
        convert_fn: ConvertFunction,
    ) -> ConversionResult:
        """Apply ``convert_fn`` to each vertex and shuffle outputs by ID.

        The converted objects are expected to either be
        :class:`~repro.pregel.vertex.Vertex` instances or expose a
        ``vertex_id`` attribute; the shuffle volume charged to the cost
        model is the byte size of objects that change worker, exactly
        the traffic a distributed implementation would incur.
        """
        metrics = JobMetrics(job_name=name, num_workers=self.num_workers)
        step = SuperstepMetrics(superstep=0)
        step.worker_compute_ops = [0] * self.num_workers
        step.worker_bytes_sent = [0] * self.num_workers
        step.worker_bytes_received = [0] * self.num_workers

        outputs: List[Any] = []
        for vertex in vertices:
            source_worker = self._partitioner.worker_for(vertex.vertex_id)
            produced = list(convert_fn(vertex))
            step.worker_compute_ops[source_worker] += 1 + len(produced)
            step.compute_ops += 1 + len(produced)
            for item in produced:
                outputs.append(item)
                target_id = getattr(item, "vertex_id", None)
                if target_id is None:
                    continue
                destination = self._partitioner.worker_for(target_id)
                if destination != source_worker:
                    size = _estimate_size(getattr(item, "value", None)) + 16
                    step.worker_bytes_sent[source_worker] += size
                    step.worker_bytes_received[destination] += size
                    step.bytes_sent += size
                    step.messages_sent += 1

        metrics.add(step)
        metrics.loading_ops = step.compute_ops
        self.pipeline_metrics.add(metrics)
        return ConversionResult(outputs=outputs, metrics=metrics)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def add_metrics(self, metrics: JobMetrics) -> None:
        """Record a stage executed outside the executor's own runners.

        Used by batch-kernel stages (e.g. the vectorized DBG
        construction) that compute a whole mini-MapReduce round as
        array operations but still charge the cost model the exact
        per-worker counters the scalar runner would have produced.
        """
        self.pipeline_metrics.add(metrics)

    def metrics(self) -> PipelineMetrics:
        return self.pipeline_metrics

    def reset_metrics(self) -> None:
        self.pipeline_metrics = PipelineMetrics()
