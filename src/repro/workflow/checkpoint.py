"""Pickle-based workflow checkpoints.

After every completed stage, the runner persists the workflow's whole
progress — the state dictionary the stages communicate through, the
accumulated :class:`~repro.pregel.metrics.PipelineMetrics`, and the
position in the stage schedule — as one pickle file.  Pickling state
and metrics *together* is deliberate: objects referenced from both
(e.g. an :class:`~repro.assembler.results.AssemblyResult` holding the
pipeline metrics) keep their shared identity across the round-trip, so
a resumed run is bit-identical to an uninterrupted one.

Files are written atomically (temp file + ``os.replace``) so a crash
mid-checkpoint leaves the previous checkpoint intact; stale or foreign
files in the directory are skipped, not fatal, but a checkpoint that
*claims* to belong to the workflow being resumed and does not match its
stage schedule raises :class:`~repro.errors.CheckpointError` instead of
silently producing a hybrid run.
"""

from __future__ import annotations

import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError
from ..pregel.metrics import PipelineMetrics
from ..store.atomic import ORPHAN_TMP_AGE_SECONDS, atomic_writer, sweep_orphan_tmps

#: Bump when the checkpoint payload layout changes; old checkpoints are
#: then refused (a format mismatch is a mismatch, not a silent skip).
CHECKPOINT_FORMAT = 1

#: ``checkpoint-NNN-<workflow slug>-<stage slug>.pkl``.  The completed
#: count comes first so it parses unambiguously (slugs may themselves
#: contain dash-digit runs); the workflow slug namespaces files so
#: workflows sharing a directory never overwrite each other.
_FILE_PATTERN = re.compile(r"^checkpoint-(\d{3,})-(.+)\.pkl$")

#: Prefix of in-flight checkpoint temp files.  Distinguishes this
#: module's own temporaries from any other ``*.tmp`` a shared directory
#: might contain, so the orphan sweep never deletes a foreign file.
#: (``ORPHAN_TMP_AGE_SECONDS`` is re-exported from
#: :mod:`repro.store.atomic`, where the shared sweep now lives.)
_TMP_PREFIX = ".ckpt-"

__all__ = [
    "CHECKPOINT_FORMAT",
    "ORPHAN_TMP_AGE_SECONDS",
    "Checkpoint",
    "CheckpointStore",
    "state_fingerprint",
]


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", name).strip("-") or "stage"


def state_fingerprint(state: Dict[str, Any]) -> Optional[str]:
    """Content hash of a workflow's *seed* state, or None if unhashable.

    Stage names alone cannot tell two runs of the same workflow apart —
    assembling a different read set or a different ``k`` yields the
    exact same schedule.  The runner therefore fingerprints the initial
    state and refuses to resume checkpoints written from different
    inputs/parameters.  States pickle deterministically for identical
    content here (dicts are insertion-ordered, the library's inputs are
    lists/dataclasses); a state that cannot be pickled at all simply
    gets no fingerprint, which disables the comparison rather than the
    run.
    """
    try:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    import hashlib

    return hashlib.sha256(payload).hexdigest()


@dataclass
class Checkpoint:
    """Everything needed to continue a workflow after stage ``completed - 1``."""

    workflow: str
    stage_names: List[str]  # the full planned schedule, in execution order
    completed: int  # how many leading stages of the schedule have finished
    state: Dict[str, Any]
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    seed_fingerprint: Optional[str] = None  # hash of the run's initial state

    def payload(self) -> Dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "workflow": self.workflow,
            "stage_names": list(self.stage_names),
            "completed": self.completed,
            "state": self.state,
            "metrics": self.metrics,
            "seed_fingerprint": self.seed_fingerprint,
        }


class CheckpointStore:
    """One directory of checkpoints for one workflow run."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self._swept_orphans = False

    def _sweep_orphans(self) -> None:
        """Remove stale ``.ckpt-*.tmp`` leftovers of hard-killed writes.

        A crash between ``mkstemp`` and ``os.replace`` (exactly the
        failure mode checkpoints exist for) orphans the temp file;
        nothing ever reads those, so the first write of a new store
        instance sweeps them before they accumulate.  The prefix and
        age guards that keep the sweep safe in a shared directory live
        in :func:`repro.store.atomic.sweep_orphan_tmps`.
        """
        if self._swept_orphans or not self.directory.is_dir():
            return
        self._swept_orphans = True
        sweep_orphan_tmps(self.directory, _TMP_PREFIX, ORPHAN_TMP_AGE_SECONDS)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist a checkpoint; returns the file written.

        The file name carries the workflow slug, so workflows sharing a
        directory never overwrite each other's checkpoints even when
        their stage names coincide.
        """
        stage = checkpoint.stage_names[checkpoint.completed - 1]
        path = self.directory / (
            f"checkpoint-{checkpoint.completed:03d}"
            f"-{_slug(checkpoint.workflow)}-{_slug(stage)}.pkl"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sweep_orphans()
            with atomic_writer(path, tmp_prefix=_TMP_PREFIX) as handle:
                pickle.dump(
                    checkpoint.payload(), handle, protocol=pickle.HIGHEST_PROTOCOL
                )
        except (OSError, pickle.PicklingError) as exc:
            raise CheckpointError(
                f"could not write checkpoint after stage {stage!r} "
                f"to {self.directory}: {exc}"
            ) from exc
        return path

    def clear(self, workflow_name: str) -> int:
        """Delete ``workflow_name``'s checkpoints; returns the count removed.

        The runner calls this when a run starts from stage 0 into a
        directory that already holds checkpoints: without it, a
        higher-numbered file from a *previous* run would survive the
        new run's lower-numbered overwrites and shadow it on resume —
        ``latest()`` would silently hand back the old run's state.
        Candidates are pre-filtered by the file name's workflow slug,
        then payload-verified before deletion (a slug prefix alone
        cannot distinguish workflow ``one`` from ``one-two``);
        unreadable slug-matching files go too — nobody can ever resume
        them.  Other workflows' checkpoints are kept.
        """
        if not self.directory.is_dir():
            return 0
        removed = 0
        for _, entry in self._candidates(workflow_name):
            payload = self._load(entry)
            if payload is not None and payload.get("workflow") != workflow_name:
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def latest(self, workflow_name: str) -> Optional[Checkpoint]:
        """The most advanced checkpoint of ``workflow_name``, or None.

        Candidates are ordered by the completed count in the file name,
        most advanced first, and only unpickled until one's payload
        confirms the workflow — so a resume costs one checkpoint load,
        not the whole directory, and a truncated latest file degrades
        to the previous one.
        """
        for _, entry in sorted(self._candidates(workflow_name), reverse=True):
            payload = self._load(entry)
            if payload is None or payload.get("workflow") != workflow_name:
                continue
            if payload.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"checkpoint {entry.name} uses format "
                    f"{payload.get('format')!r}, expected {CHECKPOINT_FORMAT} "
                    "(re-run without --resume to start fresh)"
                )
            return Checkpoint(
                workflow=payload["workflow"],
                stage_names=list(payload["stage_names"]),
                completed=int(payload["completed"]),
                state=payload["state"],
                metrics=payload["metrics"],
                seed_fingerprint=payload.get("seed_fingerprint"),
            )
        return None

    def _candidates(self, workflow_name: str):
        """``(completed, path)`` pairs whose file name matches the workflow."""
        if not self.directory.is_dir():
            return []
        prefix = _slug(workflow_name) + "-"
        candidates = []
        for entry in self.directory.iterdir():
            match = _FILE_PATTERN.match(entry.name)
            if match and match.group(2).startswith(prefix):
                candidates.append((int(match.group(1)), entry))
        return candidates

    @staticmethod
    def _load(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload
