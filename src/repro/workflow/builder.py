"""The declarative workflow builder: a named, validated DAG of stages.

A :class:`Workflow` is the introspectable description of a multi-job
computation — the five assembly operations of the paper's Figure 10,
the scaffolding pipeline, or any user-composed strategy.  It says
*what* runs after *what*; the
:class:`~repro.workflow.runner.WorkflowRunner` decides *how* (backend,
workers, checkpointing).

Stages are added with :meth:`Workflow.add`; by default each stage
depends on the previously added one, so a plain sequence of ``add``
calls builds the linear chains that dominate assembly practice, while
``after=[...]`` expresses real fan-in/fan-out.  :meth:`validate`
rejects duplicate names, unknown dependencies, and cycles;
:meth:`execution_order` is the deterministic topological order every
run (and therefore every checkpoint sequence) uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import WorkflowError
from .stage import Stage

StageRef = Union[str, Stage]


def _ref_name(ref: StageRef) -> str:
    return ref.name if isinstance(ref, Stage) else ref


class Workflow:
    """A named DAG of :class:`~repro.workflow.stage.Stage` descriptors."""

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise WorkflowError("a workflow needs a non-empty name")
        self.name = name
        self.description = description
        self._stages: Dict[str, Stage] = {}
        self._deps: Dict[str, List[str]] = {}
        self._last_added: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self,
        stage: Stage,
        after: Optional[Union[StageRef, Sequence[StageRef]]] = None,
    ) -> Stage:
        """Add a stage; returns it so calls can be chained into locals.

        ``after`` lists the stages this one depends on (names or stage
        objects).  When omitted, the stage depends on the most recently
        added one — so sequential ``add`` calls build a linear chain.
        Pass ``after=()`` to make a stage an independent root.
        """
        if stage.name in self._stages:
            raise WorkflowError(
                f"workflow {self.name!r} already has a stage named {stage.name!r}"
            )
        if after is None:
            deps = [self._last_added] if self._last_added is not None else []
        elif isinstance(after, (str, Stage)):
            deps = [_ref_name(after)]
        else:
            deps = [_ref_name(ref) for ref in after]
        self._stages[stage.name] = stage
        self._deps[stage.name] = deps
        self._last_added = stage.name
        return stage

    def extend(self, stages: Iterable[Stage]) -> None:
        """Add stages as a linear chain continuing from the last one."""
        for stage in stages:
            self.add(stage)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stage(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise WorkflowError(
                f"workflow {self.name!r} has no stage named {name!r}"
            ) from None

    def stage_names(self) -> List[str]:
        """Stage names in execution order."""
        return [stage.name for stage in self.execution_order()]

    def dependencies(self, name: str) -> List[str]:
        self.stage(name)  # raises on unknown names
        return list(self._deps[name])

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    # ------------------------------------------------------------------
    # validation + ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`~repro.errors.WorkflowError` on a malformed DAG."""
        if not self._stages:
            raise WorkflowError(f"workflow {self.name!r} has no stages")
        for name, deps in self._deps.items():
            for dep in deps:
                if dep not in self._stages:
                    raise WorkflowError(
                        f"stage {name!r} depends on unknown stage {dep!r}"
                    )
                if dep == name:
                    raise WorkflowError(f"stage {name!r} depends on itself")
        self.execution_order()  # raises on cycles

    def execution_order(self) -> List[Stage]:
        """Deterministic topological order (Kahn; insertion order breaks ties).

        This order is part of the workflow's contract: checkpoints
        record their position in it, so it must not depend on dict
        iteration accidents — insertion order is the tiebreak, making
        the schedule reproducible across processes and versions.
        """
        insertion = {name: index for index, name in enumerate(self._stages)}
        pending = {
            name: {dep for dep in deps if dep in self._stages}
            for name, deps in self._deps.items()
        }
        ordered: List[Stage] = []
        while pending:
            ready = sorted(
                (name for name, deps in pending.items() if not deps),
                key=insertion.__getitem__,
            )
            if not ready:
                cycle = ", ".join(sorted(pending))
                raise WorkflowError(
                    f"workflow {self.name!r} has a dependency cycle among: {cycle}"
                )
            for name in ready:
                ordered.append(self._stages[name])
                del pending[name]
            for deps in pending.values():
                deps.difference_update(ready)
        return ordered

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line listing of the DAG (what ``--list-stages`` prints)."""
        lines = [f"workflow {self.name} ({len(self._stages)} stages)"]
        if self.description:
            lines.append(f"  {self.description}")
        for index, stage in enumerate(self.execution_order()):
            deps = self._deps[stage.name]
            arrow = f"  after {', '.join(deps)}" if deps else ""
            lines.append(f"  {index + 1:2d}. {stage.name} [{stage.describe()}]{arrow}")
        return "\n".join(lines)
