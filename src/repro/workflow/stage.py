"""Typed stage descriptors: the vocabulary workflows are declared in.

A :class:`Stage` is a *description* of one step of a workflow — it
carries a name, optional per-stage backend/worker overrides, and the
logic to execute against a
:class:`~repro.workflow.runner.WorkflowContext`.  Stages do not hold
data: everything they read and write lives in the context's ``state``
dictionary, which is what makes a workflow checkpointable (the state is
pickled between stages, the stages themselves never are).

Four built-in kinds mirror the paper's job taxonomy:

* :class:`PregelStage` — one Pregel job, built from the current state;
* :class:`MapReduceStage` — one mini-MapReduce job;
* :class:`ConvertStage` — arbitrary in-memory computation between jobs
  (the generalisation of the paper's ``convert(v)`` handoff: anything
  from a pure vertex conversion to a composite assembly operation that
  itself launches several jobs through the context);
* :class:`BranchStage` — a conditional sub-path, e.g. the contig
  labeling cycle fallback or the "any links found?" decision in
  scaffolding.

Composite operations that need richer behaviour can subclass
:class:`Stage` directly and implement :meth:`Stage.run`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from ..errors import WorkflowError
from ..pregel.engine import JobResult, PregelJob
from ..pregel.mapreduce import MapReduceResult


class Stage:
    """One named step of a workflow.

    Parameters
    ----------
    name:
        Unique (within a workflow) stage name; also the label used by
        progress hooks, checkpoints, and ``--list-stages``.
    backend:
        Execution-backend override for this stage only (``None`` = use
        the runner's backend).
    num_workers:
        Worker-count override for this stage only.
    """

    #: Short type tag shown by :meth:`describe` / ``--list-stages``.
    kind = "stage"

    def __init__(
        self,
        name: str,
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        if not name:
            raise WorkflowError("a stage needs a non-empty name")
        self.name = name
        self.backend = backend
        self.num_workers = num_workers

    def run(self, ctx: "WorkflowContext") -> None:  # noqa: F821
        """Execute the stage against the workflow context."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (stage type + overrides)."""
        parts = [self.kind]
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.num_workers is not None:
            parts.append(f"workers={self.num_workers}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def _store(ctx, output: Optional[str], value: Any) -> None:
    if output is not None:
        ctx.state[output] = value


class ConvertStage(Stage):
    """In-memory computation between jobs.

    ``fn(ctx)`` runs with full access to the context: it can read and
    write ``ctx.state``, and launch metered sub-jobs through
    ``ctx.run_pregel`` / ``ctx.run_mapreduce`` / ``ctx.convert`` — that
    is how composite operations (e.g. contig labeling, which runs end
    recognition plus list ranking plus an optional fallback) appear as
    a single named stage.  When ``output`` is given, the return value
    is stored under that state key.
    """

    kind = "convert"

    def __init__(
        self,
        name: str,
        fn: Callable[["WorkflowContext"], Any],  # noqa: F821
        output: Optional[str] = None,
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__(name, backend=backend, num_workers=num_workers)
        self.fn = fn
        self.output = output

    def run(self, ctx) -> None:
        _store(ctx, self.output, self.fn(ctx))


class PregelStage(Stage):
    """One Pregel job.

    ``job_factory(ctx)`` builds the :class:`~repro.pregel.engine.PregelJob`
    from the current state (vertices typically come from an upstream
    stage's output).  The :class:`~repro.pregel.engine.JobResult` is
    handed to ``collect(ctx, result)`` when given, and/or stored under
    the ``output`` state key.
    """

    kind = "pregel"

    def __init__(
        self,
        name: str,
        job_factory: Callable[["WorkflowContext"], PregelJob],  # noqa: F821
        collect: Optional[Callable[["WorkflowContext", JobResult], Any]] = None,  # noqa: F821
        output: Optional[str] = None,
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__(name, backend=backend, num_workers=num_workers)
        self.job_factory = job_factory
        self.collect = collect
        self.output = output

    def run(self, ctx) -> None:
        job = self.job_factory(ctx)
        if not isinstance(job, PregelJob):
            raise WorkflowError(
                f"stage {self.name!r}: job_factory must return a PregelJob, "
                f"got {type(job).__name__}"
            )
        result = ctx.run_pregel(job)
        value: Any = result
        if self.collect is not None:
            value = self.collect(ctx, result)
        _store(ctx, self.output, value)


class MapReduceStage(Stage):
    """One mini-MapReduce job.

    ``records`` is either a state key naming an iterable produced by an
    upstream stage, or a callable ``records(ctx)`` returning the
    iterable.  ``map_fn``/``reduce_fn`` follow the
    :class:`~repro.pregel.mapreduce.MiniMapReduce` contract.
    """

    kind = "mapreduce"

    def __init__(
        self,
        name: str,
        records: Union[str, Callable[["WorkflowContext"], Iterable[Any]]],  # noqa: F821
        map_fn: Callable[..., Any],
        reduce_fn: Callable[..., Any],
        collect: Optional[Callable[["WorkflowContext", MapReduceResult], Any]] = None,  # noqa: F821
        output: Optional[str] = None,
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__(name, backend=backend, num_workers=num_workers)
        self.records = records
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.collect = collect
        self.output = output

    def run(self, ctx) -> None:
        if callable(self.records):
            records = self.records(ctx)
        else:
            records = ctx.require(self.records)
        result = ctx.run_mapreduce(self.name, records, self.map_fn, self.reduce_fn)
        value: Any = result
        if self.collect is not None:
            value = self.collect(ctx, result)
        _store(ctx, self.output, value)


class BranchStage(Stage):
    """A conditional sub-path inside a workflow.

    ``condition(ctx)`` is evaluated at run time; the matching list of
    inner stages then executes in order, sharing the outer context.
    The whole branch is one unit as far as checkpointing is concerned —
    a resume never restarts in the middle of a branch — but inner
    stages still fire the runner's progress hooks.  The decision is
    recorded under ``state["<name>/taken"]`` so reports and tests can
    see which path ran.
    """

    kind = "branch"

    def __init__(
        self,
        name: str,
        condition: Callable[["WorkflowContext"], bool],  # noqa: F821
        then_stages: Sequence[Stage] = (),
        else_stages: Sequence[Stage] = (),
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        super().__init__(name, backend=backend, num_workers=num_workers)
        self.condition = condition
        self.then_stages: List[Stage] = list(then_stages)
        self.else_stages: List[Stage] = list(else_stages)
        seen = set()
        for stage in self.then_stages + self.else_stages:
            if stage.name in seen:
                raise WorkflowError(
                    f"branch {name!r} contains duplicate inner stage {stage.name!r}"
                )
            seen.add(stage.name)

    def run(self, ctx) -> None:
        taken = bool(self.condition(ctx))
        ctx.state[f"{self.name}/taken"] = taken
        for stage in self.then_stages if taken else self.else_stages:
            ctx.run_substage(stage)

    def describe(self) -> str:
        then_names = ", ".join(stage.name for stage in self.then_stages) or "—"
        else_names = ", ".join(stage.name for stage in self.else_stages) or "—"
        base = super().describe()
        return f"{base} then [{then_names}] else [{else_names}]"
