"""Declarative workflow graphs over the Pregel+ substrate.

The paper's systems contribution is treating assembly as a *chain of
Pregel/MapReduce jobs with in-memory handoff* (Section II).  This
package is the public API for that idea: describe a computation as a
named DAG of typed stages, then execute it on any execution backend
with metering, lifecycle hooks, and checkpoint/resume.

* :class:`~repro.workflow.builder.Workflow` — the validated DAG;
* :mod:`~repro.workflow.stage` — typed stage descriptors
  (:class:`PregelStage`, :class:`MapReduceStage`, :class:`ConvertStage`,
  :class:`BranchStage`, or your own :class:`Stage` subclass);
* :class:`~repro.workflow.runner.WorkflowRunner` — execution with
  hooks, per-stage backend/worker overrides, and pickle checkpoints;
* :class:`~repro.workflow.executor.StageExecutor` — the shared engine
  + metrics substrate every stage runs on (the successor of the
  deprecated :class:`~repro.pregel.job.JobChain`).

The assembler (:func:`repro.assembler.pipeline.build_assembly_workflow`)
and the scaffolder
(:func:`repro.scaffold.scaffolder.build_scaffolding_workflow`) are the
two in-tree workflows; every new scenario is expected to plug in here.
"""

from .builder import Workflow
from .checkpoint import CHECKPOINT_FORMAT, Checkpoint, CheckpointStore
from .executor import ConversionResult, ConvertFunction, StageExecutor
from .runner import (
    EventSubscriber,
    WorkflowContext,
    WorkflowEvent,
    WorkflowHooks,
    WorkflowRunner,
)
from .stage import BranchStage, ConvertStage, MapReduceStage, PregelStage, Stage

__all__ = [
    "Workflow",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointStore",
    "ConversionResult",
    "ConvertFunction",
    "EventSubscriber",
    "StageExecutor",
    "WorkflowContext",
    "WorkflowEvent",
    "WorkflowHooks",
    "WorkflowRunner",
    "BranchStage",
    "ConvertStage",
    "MapReduceStage",
    "PregelStage",
    "Stage",
]
